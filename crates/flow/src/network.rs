//! A compact directed flow network with paired residual arcs.

/// Identifier of a node in a [`FlowNetwork`].
pub type NodeId = u32;

/// Identifier of an arc in a [`FlowNetwork`].
///
/// Arcs are created in pairs: arc `a` and its reverse arc `a ^ 1` always refer
/// to each other, so pushing flow along `a` is `cap[a] -= f; cap[a ^ 1] += f`.
pub type ArcId = u32;

/// Capacity value treated as unbounded.
///
/// Large enough that no realistic flow (bounded by `k <= n`) can saturate the
/// arc, small enough that additions cannot overflow a `u32`.
pub const INFINITE_CAPACITY: u32 = u32::MAX / 4;

/// A directed flow network in residual-arc form.
///
/// Designed for the access pattern of the k-VCC enumeration: the network is
/// built once per `GLOBAL-CUT` invocation and then queried many times
/// (`LOC-CUT` for many vertex pairs), so [`FlowNetwork::reset`] restores the
/// initial capacities in a single `memcpy`-style pass instead of rebuilding.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// Target node of each arc.
    head: Vec<NodeId>,
    /// Current residual capacity of each arc.
    cap: Vec<u32>,
    /// Initial capacity of each arc (used by [`reset`](FlowNetwork::reset)).
    initial_cap: Vec<u32>,
    /// Outgoing arc ids per node (both forward and residual arcs). The
    /// vector never shrinks — only the first `num_nodes` entries are live —
    /// so per-node buffers survive arena reuse across differently sized
    /// graphs (see [`FlowNetwork::clear`]).
    adj: Vec<Vec<ArcId>>,
    /// Number of live nodes (`adj.len()` may be larger after a shrink).
    num_nodes: usize,
}

impl FlowNetwork {
    /// Creates a network with `num_nodes` nodes and no arcs.
    pub fn new(num_nodes: usize) -> Self {
        FlowNetwork {
            head: Vec::new(),
            cap: Vec::new(),
            initial_cap: Vec::new(),
            adj: vec![Vec::new(); num_nodes],
            num_nodes,
        }
    }

    /// Creates a network reserving space for `num_arcs` directed arcs.
    pub fn with_capacity(num_nodes: usize, num_arcs: usize) -> Self {
        FlowNetwork {
            head: Vec::with_capacity(2 * num_arcs),
            cap: Vec::with_capacity(2 * num_arcs),
            initial_cap: Vec::with_capacity(2 * num_arcs),
            adj: vec![Vec::new(); num_nodes],
            num_nodes,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of arcs **including** the automatically created reverse arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.head.len()
    }

    /// Adds a directed arc `from → to` with capacity `capacity` and its
    /// residual twin `to → from` with capacity 0. Returns the id of the
    /// forward arc; the twin is always `id ^ 1`.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, capacity: u32) -> ArcId {
        debug_assert!((from as usize) < self.num_nodes());
        debug_assert!((to as usize) < self.num_nodes());
        let id = self.head.len() as ArcId;
        self.head.push(to);
        self.cap.push(capacity);
        self.initial_cap.push(capacity);
        self.adj[from as usize].push(id);

        self.head.push(from);
        self.cap.push(0);
        self.initial_cap.push(0);
        self.adj[to as usize].push(id + 1);
        id
    }

    /// Target node of arc `a`.
    #[inline]
    pub fn arc_head(&self, a: ArcId) -> NodeId {
        self.head[a as usize]
    }

    /// Current residual capacity of arc `a`.
    #[inline]
    pub fn residual(&self, a: ArcId) -> u32 {
        self.cap[a as usize]
    }

    /// Initial (design) capacity of arc `a`.
    #[inline]
    pub fn initial_capacity(&self, a: ArcId) -> u32 {
        self.initial_cap[a as usize]
    }

    /// Flow currently routed through arc `a` (initial capacity minus residual,
    /// clamped at zero for reverse arcs).
    #[inline]
    pub fn flow(&self, a: ArcId) -> u32 {
        self.initial_cap[a as usize].saturating_sub(self.cap[a as usize])
    }

    /// Outgoing arc ids of node `v`.
    #[inline]
    pub fn arcs_from(&self, v: NodeId) -> &[ArcId] {
        &self.adj[v as usize]
    }

    /// Pushes `amount` units of flow along arc `a` (decreasing its residual and
    /// increasing the residual of its twin).
    #[inline]
    pub fn push(&mut self, a: ArcId, amount: u32) {
        debug_assert!(self.cap[a as usize] >= amount);
        self.cap[a as usize] -= amount;
        self.cap[(a ^ 1) as usize] += amount;
    }

    /// Restores every arc to its initial capacity, erasing all flow.
    pub fn reset(&mut self) {
        self.cap.copy_from_slice(&self.initial_cap);
    }

    /// Empties the network and re-sizes it to `num_nodes` nodes, **keeping
    /// every buffer allocation** (the arc arrays and the per-node adjacency
    /// vectors). This is the scratch-arena reset used between `GLOBAL-CUT`
    /// probes: rebuilding a similarly sized network after `clear` performs no
    /// heap allocation in steady state.
    pub fn clear(&mut self, num_nodes: usize) {
        self.head.clear();
        self.cap.clear();
        self.initial_cap.clear();
        // Clear the previously live adjacency lists without freeing them;
        // `adj` never shrinks, so oscillating between small and large graphs
        // still reuses every per-node buffer.
        for list in self.adj.iter_mut().take(self.num_nodes) {
            list.clear();
        }
        if self.adj.len() < num_nodes {
            self.adj.resize_with(num_nodes, Vec::new);
        }
        self.num_nodes = num_nodes;
    }

    /// Reserves space for `num_arcs` further directed arcs (plus their
    /// residual twins).
    pub fn reserve_arcs(&mut self, num_arcs: usize) {
        self.head.reserve(2 * num_arcs);
        self.cap.reserve(2 * num_arcs);
        self.initial_cap.reserve(2 * num_arcs);
    }

    /// Approximate heap usage in bytes (used by the memory tracker of Fig. 12).
    pub fn memory_bytes(&self) -> usize {
        self.head.capacity() * std::mem::size_of::<NodeId>()
            + self.cap.capacity() * std::mem::size_of::<u32>() * 2
            + self
                .adj
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<ArcId>())
                .sum::<usize>()
            + self.adj.capacity() * std::mem::size_of::<Vec<ArcId>>()
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_are_paired_with_their_twin() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_arc(0, 1, 5);
        let b = net.add_arc(1, 2, 7);
        assert_eq!(a, 0);
        assert_eq!(b, 2);
        assert_eq!(net.arc_head(a), 1);
        assert_eq!(net.arc_head(a ^ 1), 0);
        assert_eq!(net.residual(a), 5);
        assert_eq!(net.residual(a ^ 1), 0);
        assert_eq!(net.num_arcs(), 4);
        assert_eq!(net.num_nodes(), 3);
    }

    #[test]
    fn push_and_reset() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 3);
        net.push(a, 2);
        assert_eq!(net.residual(a), 1);
        assert_eq!(net.residual(a ^ 1), 2);
        assert_eq!(net.flow(a), 2);
        assert_eq!(net.flow(a ^ 1), 0);
        net.reset();
        assert_eq!(net.residual(a), 3);
        assert_eq!(net.residual(a ^ 1), 0);
    }

    #[test]
    fn clear_keeps_capacity_and_resizes() {
        let mut net = FlowNetwork::with_capacity(3, 4);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 1);
        let arc_capacity = net.head.capacity();
        net.clear(5);
        assert_eq!(net.num_nodes(), 5);
        assert_eq!(net.num_arcs(), 0);
        assert!(
            net.head.capacity() >= arc_capacity,
            "clear must keep the arc buffers"
        );
        let a = net.add_arc(4, 0, 2);
        assert_eq!(net.arc_head(a), 0);
        net.clear(2);
        assert_eq!(net.num_nodes(), 2);
    }

    #[test]
    fn adjacency_contains_residual_arcs() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 1);
        assert_eq!(net.arcs_from(0), &[a]);
        assert_eq!(net.arcs_from(1), &[a ^ 1]);
        assert!(net.memory_bytes() > 0);
        assert_eq!(net.initial_capacity(a), 1);
    }
}
