//! The vertex-splitting transformation and local vertex-connectivity queries.
//!
//! Following §4.1 (Fig. 3), every vertex `v` of the undirected graph becomes
//! two flow nodes `v_in` and `v_out` joined by a unit-capacity *vertex arc*
//! `v_in → v_out`; every undirected edge `(u, v)` becomes two *adjacency arcs*
//! `u_out → v_in` and `v_out → u_in`.
//!
//! Unlike the paper's description (which gives every arc capacity 1) the
//! adjacency arcs here get an effectively infinite capacity. This changes
//! nothing about the max-flow value — each unit of flow must still traverse
//! one vertex arc per internal vertex — but it guarantees that every minimum
//! edge cut consists of vertex arcs only, so the cut maps directly to a vertex
//! cut of the original graph without the "locate the corresponding vertex"
//! step being ambiguous.

use kvcc_graph::{GraphView, VertexId};

use crate::budget::{Budget, Interrupted};
use crate::dinic::{max_flow_budgeted, max_flow_with_scratch, DinicScratch};
use crate::mincut::residual_reachable;
use crate::network::{ArcId, FlowNetwork, NodeId, INFINITE_CAPACITY};

/// Outcome of a local-connectivity test between two vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LocalConnectivity {
    /// The local connectivity is at least the requested threshold `k`
    /// (`u ≡ₖ v` in the paper's notation). The payload is the threshold that
    /// was certified, not the exact connectivity.
    AtLeast(u32),
    /// The local connectivity is below the threshold; the payload is a
    /// minimum `u`-`v` vertex cut (vertices of the *original* graph, excluding
    /// `u` and `v` themselves).
    Cut(Vec<VertexId>),
}

impl LocalConnectivity {
    /// Convenience: `true` when the result certifies `u ≡ₖ v`.
    pub fn is_at_least_k(&self) -> bool {
        matches!(self, LocalConnectivity::AtLeast(_))
    }
}

/// The directed flow graph of an undirected graph, reusable across many
/// source/sink pairs **and** — through [`VertexFlowGraph::rebuild`] — across
/// many graphs.
///
/// # Scratch-arena contract
///
/// All buffers (the arc arrays, the per-node adjacency lists and the Dinic
/// level/iterator/queue scratch) survive a [`rebuild`](Self::rebuild): the
/// structure is emptied and refilled for the new graph without freeing. A
/// `GLOBAL-CUT` caller that keeps one `VertexFlowGraph` per worker thread
/// therefore performs no per-probe allocation once the buffers have grown to
/// the size of the largest subgraph seen, which removes the dominant
/// allocation cost of the seed implementation (a fresh network per probe).
#[derive(Clone, Debug, Default)]
pub struct VertexFlowGraph {
    net: FlowNetwork,
    /// `vertex_arc[v]` is the arc id of `v_in → v_out`.
    vertex_arc: Vec<ArcId>,
    scratch: DinicScratch,
    num_vertices: usize,
}

impl VertexFlowGraph {
    /// An empty arena with no graph loaded; call
    /// [`rebuild`](Self::rebuild) before issuing queries.
    pub fn empty() -> Self {
        VertexFlowGraph {
            net: FlowNetwork::new(0),
            vertex_arc: Vec::new(),
            scratch: DinicScratch::default(),
            num_vertices: 0,
        }
    }

    /// Builds the flow graph of `g` (2n nodes, n vertex arcs + 2m adjacency
    /// arcs).
    pub fn build<G: GraphView>(g: &G) -> Self {
        let mut this = Self::empty();
        this.rebuild(g);
        this
    }

    /// Re-targets the arena at a new graph, reusing every buffer (see the
    /// scratch-arena contract in the type docs).
    pub fn rebuild<G: GraphView>(&mut self, g: &G) {
        let n = g.num_vertices();
        self.net.clear(2 * n);
        self.net.reserve_arcs(n + 2 * g.num_edges());
        self.vertex_arc.clear();
        self.vertex_arc.reserve(n);
        for v in 0..n as NodeId {
            let arc = self.net.add_arc(Self::node_in(v), Self::node_out(v), 1);
            self.vertex_arc.push(arc);
        }
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                // Each undirected edge is visited twice (once per direction),
                // creating exactly the two adjacency arcs of Fig. 3.
                self.net
                    .add_arc(Self::node_out(u), Self::node_in(v), INFINITE_CAPACITY);
            }
        }
        // Pre-size the Dinic scratch from the node bound once, so the probes
        // that follow never grow a buffer mid-flow.
        self.scratch.ensure(2 * n);
        self.num_vertices = n;
    }

    /// k-bounded boolean connectivity probe: `true` iff `κ(u, v) >= k`
    /// (`u ≡ₖ v`), for any `u != v` — adjacent pairs route through their
    /// infinite-capacity adjacency arc and therefore always certify (Lemma
    /// 5), so no separate adjacency test is needed.
    ///
    /// This is the cheapest probe the arena offers: Dinic stops at the k-th
    /// augmenting path, the level BFS is never rebuilt once the bound is met,
    /// and — unlike [`VertexFlowGraph::local_connectivity`] — no residual
    /// reachability pass or cut vector is ever materialised on the negative
    /// side. Verification workloads (`is_k_vertex_connected` over every
    /// reported component) only need the boolean, which is why they run here.
    pub fn has_connectivity_at_least(&mut self, u: VertexId, v: VertexId, k: u32) -> bool {
        if u == v {
            return true;
        }
        let flow = max_flow_with_scratch(
            &mut self.net,
            Self::node_out(u),
            Self::node_in(v),
            k,
            &mut self.scratch,
        );
        self.net.reset();
        flow >= k
    }

    /// Flow node representing the "entry" side of vertex `v`.
    #[inline]
    pub fn node_in(v: VertexId) -> NodeId {
        2 * v
    }

    /// Flow node representing the "exit" side of vertex `v`.
    #[inline]
    pub fn node_out(v: VertexId) -> NodeId {
        2 * v + 1
    }

    /// Number of vertices of the underlying undirected graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Approximate heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.net.memory_bytes() + self.vertex_arc.capacity() * std::mem::size_of::<ArcId>()
    }

    /// Raw max-flow value from `u` to `v`, early-terminated at `limit`.
    ///
    /// This is the value `λ = κ(u, v)` capped at `limit`, valid only for
    /// non-adjacent `u != v` (for adjacent vertices the vertex connectivity is
    /// defined via Lemma 5 instead). The network is reset afterwards.
    pub fn max_flow_value(&mut self, u: VertexId, v: VertexId, limit: u32) -> u32 {
        let flow = max_flow_with_scratch(
            &mut self.net,
            Self::node_out(u),
            Self::node_in(v),
            limit,
            &mut self.scratch,
        );
        self.net.reset();
        flow
    }

    /// `LOC-CUT(u, v)` from Algorithm 2: tests whether `κ(u, v) >= k`.
    ///
    /// * Returns [`LocalConnectivity::AtLeast`]`(k)` when `u == v`, when the
    ///   two vertices are adjacent in `g` (Lemma 5), or when `k` units of
    ///   flow can be routed.
    /// * Otherwise returns the minimum `u`-`v` vertex cut (size `< k`).
    pub fn local_connectivity<G: GraphView>(
        &mut self,
        g: &G,
        u: VertexId,
        v: VertexId,
        k: u32,
    ) -> LocalConnectivity {
        if u == v || g.has_edge(u, v) {
            return LocalConnectivity::AtLeast(k);
        }
        self.local_connectivity_nonadjacent(u, v, k)
    }

    /// [`local_connectivity`](Self::local_connectivity) for callers that have
    /// already ruled out `u == v` and adjacency (e.g. `GLOBAL-CUT`, which
    /// checks adjacency on the *current subgraph* while the flow arena holds
    /// the sparse certificate — a subgraph of it).
    pub fn local_connectivity_nonadjacent(
        &mut self,
        u: VertexId,
        v: VertexId,
        k: u32,
    ) -> LocalConnectivity {
        self.local_connectivity_budgeted(u, v, k, &Budget::unlimited())
            .expect("an unlimited budget never interrupts")
    }

    /// [`local_connectivity_nonadjacent`](Self::local_connectivity_nonadjacent)
    /// under a cooperative [`Budget`], polled once per Dinic BFS phase.
    ///
    /// On [`Interrupted`] the arena is reset before returning, so the very
    /// next probe on this `VertexFlowGraph` — budgeted or not — starts from
    /// a clean residual state; cancellation can never poison the scratch.
    pub fn local_connectivity_budgeted(
        &mut self,
        u: VertexId,
        v: VertexId,
        k: u32,
        budget: &Budget,
    ) -> Result<LocalConnectivity, Interrupted> {
        let source = Self::node_out(u);
        let sink = Self::node_in(v);
        let flow =
            match max_flow_budgeted(&mut self.net, source, sink, k, &mut self.scratch, budget) {
                Ok(flow) => flow,
                Err(interrupted) => {
                    // Clear the partial flow: the arena must stay reusable.
                    self.net.reset();
                    return Err(interrupted);
                }
            };
        if flow >= k {
            self.net.reset();
            return Ok(LocalConnectivity::AtLeast(k));
        }
        // No augmenting path remains: extract the vertex cut from the
        // saturated vertex arcs crossing the residual reachability frontier.
        let reachable = residual_reachable(&self.net, source);
        let mut cut = Vec::with_capacity(flow as usize);
        for (vertex, &arc) in self.vertex_arc.iter().enumerate() {
            let tail_in = Self::node_in(vertex as VertexId);
            let head_out = Self::node_out(vertex as VertexId);
            if reachable.contains(tail_in as usize) && !reachable.contains(head_out as usize) {
                debug_assert_eq!(
                    self.net.residual(arc),
                    0,
                    "cut vertex arc must be saturated"
                );
                cut.push(vertex as VertexId);
            }
        }
        self.net.reset();
        debug_assert_eq!(
            cut.len() as u32,
            flow,
            "cut size must equal the max-flow value"
        );
        Ok(LocalConnectivity::Cut(cut))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    /// Two 4-cliques {0..3} and {4..7} sharing the two "portal" vertices 8, 9.
    fn two_cliques_with_two_cut_vertices() -> UndirectedGraph {
        let mut edges = Vec::new();
        for block in [[0u32, 1, 2, 3], [4u32, 5, 6, 7]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((block[i], block[j]));
                }
                edges.push((block[i], 8));
                edges.push((block[i], 9));
            }
        }
        edges.push((8, 9));
        UndirectedGraph::from_edges(10, edges).unwrap()
    }

    #[test]
    fn path_graph_has_unit_connectivity() {
        let g = UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut flow = VertexFlowGraph::build(&g);
        assert_eq!(flow.max_flow_value(0, 3, 10), 1);
        match flow.local_connectivity(&g, 0, 3, 2) {
            LocalConnectivity::Cut(cut) => {
                assert_eq!(cut.len(), 1);
                assert!(cut[0] == 1 || cut[0] == 2);
            }
            other => panic!("expected a cut, got {other:?}"),
        }
    }

    #[test]
    fn clique_pairs_are_highly_connected() {
        let g = complete(6);
        let mut flow = VertexFlowGraph::build(&g);
        // All pairs are adjacent, so Lemma 5 applies.
        assert!(flow.local_connectivity(&g, 0, 5, 5).is_at_least_k());
        // Raw flow between adjacent vertices counts disjoint paths; in K6 the
        // flow between two vertices is 1 (direct adjacency arc is not counted
        // here because max_flow_value assumes non-adjacent queries), so only
        // test the adjacency fast path above.
    }

    #[test]
    fn cycle_has_connectivity_two() {
        let g = UndirectedGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6))).unwrap();
        let mut flow = VertexFlowGraph::build(&g);
        assert_eq!(flow.max_flow_value(0, 3, 10), 2);
        assert!(flow.local_connectivity(&g, 0, 3, 2).is_at_least_k());
        match flow.local_connectivity(&g, 0, 3, 3) {
            LocalConnectivity::Cut(cut) => assert_eq!(cut.len(), 2),
            other => panic!("expected a 2-cut, got {other:?}"),
        }
    }

    #[test]
    fn portal_vertices_form_the_cut() {
        let g = two_cliques_with_two_cut_vertices();
        let mut flow = VertexFlowGraph::build(&g);
        match flow.local_connectivity(&g, 0, 4, 3) {
            LocalConnectivity::Cut(mut cut) => {
                cut.sort_unstable();
                assert_eq!(cut, vec![8, 9]);
            }
            other => panic!("expected the portal cut, got {other:?}"),
        }
        // With k = 2 the pair is 2-local-connected (through the two portals).
        assert!(flow.local_connectivity(&g, 0, 4, 2).is_at_least_k());
    }

    #[test]
    fn rebuild_reuses_the_arena_across_graphs() {
        let path = UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let cycle = UndirectedGraph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6))).unwrap();
        let mut flow = VertexFlowGraph::empty();
        for _ in 0..3 {
            flow.rebuild(&path);
            assert_eq!(flow.num_vertices(), 4);
            assert_eq!(flow.max_flow_value(0, 3, 10), 1);
            flow.rebuild(&cycle);
            assert_eq!(flow.num_vertices(), 6);
            assert_eq!(flow.max_flow_value(0, 3, 10), 2);
        }
        // A CSR graph works through the same generic interface.
        let csr = kvcc_graph::CsrGraph::from_view(&cycle);
        flow.rebuild(&csr);
        assert_eq!(flow.max_flow_value(0, 3, 10), 2);
        match flow.local_connectivity_nonadjacent(0, 3, 3) {
            LocalConnectivity::Cut(cut) => assert_eq!(cut.len(), 2),
            other => panic!("expected a 2-cut, got {other:?}"),
        }
    }

    #[test]
    fn boolean_probe_matches_the_cut_probe() {
        let g = two_cliques_with_two_cut_vertices();
        let mut flow = VertexFlowGraph::build(&g);
        // Across the portals: connectivity is exactly 2.
        assert!(flow.has_connectivity_at_least(0, 4, 2));
        assert!(!flow.has_connectivity_at_least(0, 4, 3));
        // Adjacent vertices certify any k through the infinite adjacency arc.
        assert!(flow.has_connectivity_at_least(0, 1, 100));
        // Same vertex is trivially connected.
        assert!(flow.has_connectivity_at_least(5, 5, 7));
        // The arena stays reusable after boolean probes.
        assert_eq!(flow.max_flow_value(0, 4, 100), 2);
        match flow.local_connectivity(&g, 0, 4, 3) {
            LocalConnectivity::Cut(mut cut) => {
                cut.sort_unstable();
                assert_eq!(cut, vec![8, 9]);
            }
            other => panic!("expected the portal cut, got {other:?}"),
        }
    }

    #[test]
    fn interrupted_probe_leaves_the_arena_reusable() {
        let g = two_cliques_with_two_cut_vertices();
        let mut flow = VertexFlowGraph::build(&g);
        let expired = Budget::with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            flow.local_connectivity_budgeted(0, 4, 3, &expired),
            Err(Interrupted)
        );
        // The interrupted probe reset the residual state: the same arena
        // answers the identical query correctly right after.
        match flow.local_connectivity_budgeted(0, 4, 3, &Budget::unlimited()) {
            Ok(LocalConnectivity::Cut(mut cut)) => {
                cut.sort_unstable();
                assert_eq!(cut, vec![8, 9]);
            }
            other => panic!("expected the portal cut, got {other:?}"),
        }
        assert!(flow
            .local_connectivity_budgeted(0, 4, 2, &Budget::unlimited())
            .unwrap()
            .is_at_least_k());
    }

    #[test]
    fn repeated_queries_are_consistent() {
        let g = two_cliques_with_two_cut_vertices();
        let mut flow = VertexFlowGraph::build(&g);
        for _ in 0..5 {
            assert_eq!(flow.max_flow_value(0, 4, 100), 2);
        }
        assert!(flow.memory_bytes() > 0);
        assert_eq!(flow.num_vertices(), 10);
    }
}
