//! Max-flow / min-cut substrate for the k-VCC enumeration library.
//!
//! The paper reduces *local vertex connectivity* testing (`LOC-CUT`, §4.1) to
//! max-flow on a **directed flow graph** obtained by splitting every vertex
//! `v` into `v_in → v_out` (Fig. 3). This crate provides:
//!
//! * [`FlowNetwork`] — a compact residual-arc representation with paired
//!   forward/backward arcs and cheap reset between queries.
//! * [`dinic::max_flow`] — Dinic's algorithm with an early-termination limit
//!   (the enumeration never needs more than `k` units of flow; Lemma 6).
//! * [`mincut`] — residual reachability and saturated-cut extraction.
//! * [`VertexFlowGraph`] — the vertex-splitting transformation plus
//!   [`VertexFlowGraph::local_connectivity`], which returns either
//!   "connectivity at least `k`" or an explicit vertex cut smaller than `k`.
//! * [`connectivity`] — whole-graph helpers: `is_k_vertex_connected`,
//!   `global_vertex_connectivity` and an uncertified `find_vertex_cut` used as
//!   a test oracle for the optimised enumerator.
//! * [`budget`] — the cooperative [`Budget`] cancellation token polled by the
//!   Dinic phase loop (and, above this crate, by the `GLOBAL-CUT` and
//!   `KVCC-ENUM` loops), which is what makes deadlines interrupt a running
//!   flow computation instead of merely gating its start.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod connectivity;
pub mod dinic;
pub mod mincut;
pub mod network;
pub mod vertex_flow;

pub use budget::{Budget, Interrupted};
pub use connectivity::{
    global_vertex_connectivity, is_k_vertex_connected, local_vertex_connectivity,
};
pub use network::{ArcId, FlowNetwork, NodeId, INFINITE_CAPACITY};
pub use vertex_flow::{LocalConnectivity, VertexFlowGraph};
