//! Whole-graph vertex-connectivity queries built on top of the flow substrate.
//!
//! These helpers implement the classical two-phase scheme of Even /
//! Esfahanian–Hakimi that `GLOBAL-CUT` (Algorithm 2) is based on, *without*
//! the sparse certificate or the sweep optimisations. They serve two roles:
//!
//! 1. test oracles for the optimised enumerator in the `kvcc` crate, and
//! 2. verification utilities (`is_k_vertex_connected`) used to check that
//!    every reported k-VCC really is k-vertex connected.

use kvcc_graph::{GraphView, VertexId};

use crate::vertex_flow::{LocalConnectivity, VertexFlowGraph};

/// Local vertex connectivity `κ(u, v)` capped at `limit`.
///
/// For adjacent vertices the value `limit` is returned (Lemma 5: adjacent
/// vertices can never be separated by removing other vertices).
pub fn local_vertex_connectivity<G: GraphView>(g: &G, u: VertexId, v: VertexId, limit: u32) -> u32 {
    if u == v {
        return limit;
    }
    if g.has_edge(u, v) {
        return limit;
    }
    let mut flow = VertexFlowGraph::build(g);
    flow.max_flow_value(u, v, limit)
}

/// Finds a vertex cut of size `< k`, or `None` when the graph is k-vertex
/// connected (assuming the graph is connected and has more than `k` vertices —
/// the full definition is checked by [`is_k_vertex_connected`]).
///
/// This is the *basic, uncertified* version of `GLOBAL-CUT`: pick a source `u`
/// of minimum degree, test `u` against every other vertex, then test every
/// pair of neighbours of `u` (covering the case `u ∈ S`, Lemma 4).
pub fn find_vertex_cut<G: GraphView>(g: &G, k: u32) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    let source = g
        .min_degree_vertex()
        .expect("non-empty graph has a min-degree vertex");
    // A vertex of degree < k is itself separated from the rest by its
    // neighbourhood (when anything else exists).
    if (g.degree(source) as u32) < k && n as u32 > g.degree(source) as u32 + 1 {
        return Some(g.neighbors(source).to_vec());
    }
    let mut flow = VertexFlowGraph::build(g);

    // Phase 1: u against every other vertex.
    for v in g.vertices() {
        if v == source {
            continue;
        }
        if let LocalConnectivity::Cut(cut) = flow.local_connectivity(g, source, v, k) {
            return Some(cut);
        }
    }
    // Phase 2: every pair of neighbours of u (u may belong to the cut).
    let neighbors = g.neighbors(source).to_vec();
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if let LocalConnectivity::Cut(cut) = flow.local_connectivity(g, a, b, k) {
                return Some(cut);
            }
        }
    }
    None
}

/// Whether `g` is k-vertex connected per Definition 2: more than `k` vertices
/// and no vertex cut of size `< k`.
///
/// Runs the two-phase scheme through the **k-bounded boolean probe**
/// ([`VertexFlowGraph::has_connectivity_at_least`]) rather than
/// [`find_vertex_cut`]: verification only needs existence, so no residual
/// min-cut is ever extracted and every probe stops at the k-th augmenting
/// path.
pub fn is_k_vertex_connected<G: GraphView>(g: &G, k: u32) -> bool {
    let n = g.num_vertices();
    if n as u64 <= k as u64 {
        return false;
    }
    if k == 0 {
        return true;
    }
    if k == 1 {
        return kvcc_graph::traversal::is_connected(g) && n >= 2;
    }
    if (g.min_degree() as u32) < k {
        return false;
    }
    if !kvcc_graph::traversal::is_connected(g) {
        return false;
    }
    let source = g
        .min_degree_vertex()
        .expect("non-empty graph has a min-degree vertex");
    let mut flow = VertexFlowGraph::build(g);
    // Phase 1: the source against every other non-adjacent vertex (adjacent
    // pairs certify by Lemma 5 — the O(log deg) edge test is far cheaper
    // than even a saturating one-phase flow, which still BFSes the network).
    for v in g.vertices() {
        if v == source || g.has_edge(source, v) {
            continue;
        }
        if !flow.has_connectivity_at_least(source, v, k) {
            return false;
        }
    }
    // Phase 2: every non-adjacent pair of neighbours of the source (Lemma 4).
    let neighbors = g.neighbors(source).to_vec();
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if !g.has_edge(a, b) && !flow.has_connectivity_at_least(a, b, k) {
                return false;
            }
        }
    }
    true
}

/// Exact global vertex connectivity `κ(G)`.
///
/// Defined as 0 for disconnected or trivial graphs and `n − 1` for complete
/// graphs. Runs the two-phase scheme with an uncapped flow limit, so it is
/// intended for the moderately sized graphs used in tests and verification.
pub fn global_vertex_connectivity<G: GraphView>(g: &G) -> u32 {
    let n = g.num_vertices();
    if n <= 1 {
        return 0;
    }
    if !kvcc_graph::traversal::is_connected(g) {
        return 0;
    }
    let source = g.min_degree_vertex().expect("non-empty graph");
    let limit = n as u32; // larger than any possible connectivity
    let mut best = u32::MAX;
    let mut flow = VertexFlowGraph::build(g);

    for v in g.vertices() {
        if v == source || g.has_edge(source, v) {
            continue;
        }
        best = best.min(flow.max_flow_value(source, v, limit));
        if best == 0 {
            return 0;
        }
    }
    let neighbors = g.neighbors(source).to_vec();
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if g.has_edge(a, b) {
                continue;
            }
            best = best.min(flow.max_flow_value(a, b, limit));
        }
    }
    if best == u32::MAX {
        // Every tested pair was adjacent: the graph is complete.
        (n - 1) as u32
    } else {
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    fn cycle(n: usize) -> UndirectedGraph {
        UndirectedGraph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32))).unwrap()
    }

    #[test]
    fn connectivity_of_classic_graphs() {
        assert_eq!(global_vertex_connectivity(&complete(5)), 4);
        assert_eq!(global_vertex_connectivity(&cycle(7)), 2);
        let path = UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(global_vertex_connectivity(&path), 1);
        let disconnected = UndirectedGraph::from_edges(4, vec![(0, 1), (2, 3)]).unwrap();
        assert_eq!(global_vertex_connectivity(&disconnected), 0);
        assert_eq!(global_vertex_connectivity(&UndirectedGraph::new(1)), 0);
    }

    #[test]
    fn petersen_graph_is_three_connected() {
        // The Petersen graph: outer 5-cycle, inner 5-star, spokes.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            edges.push((i, (i + 1) % 5)); // outer cycle
            edges.push((5 + i, 5 + (i + 2) % 5)); // inner pentagram
            edges.push((i, 5 + i)); // spokes
        }
        let g = UndirectedGraph::from_edges(10, edges).unwrap();
        assert_eq!(global_vertex_connectivity(&g), 3);
        assert!(is_k_vertex_connected(&g, 3));
        assert!(!is_k_vertex_connected(&g, 4));
    }

    #[test]
    fn k_vertex_connected_checks_size_requirement() {
        // K4 is 3-connected but has only 4 vertices, so it is not 4-connected.
        let g = complete(4);
        assert!(is_k_vertex_connected(&g, 3));
        assert!(!is_k_vertex_connected(&g, 4));
        assert!(is_k_vertex_connected(&g, 1));
        assert!(is_k_vertex_connected(&g, 0));
    }

    #[test]
    fn find_cut_returns_an_actual_separator() {
        // Two triangles sharing the single vertex 2.
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                .unwrap();
        let cut = find_vertex_cut(&g, 2).expect("graph is only 1-connected");
        assert_eq!(cut, vec![2]);
        // Removing the cut must disconnect the graph.
        let remaining = g.without_vertices(&cut);
        let mut alive = kvcc_graph::bitset::BitSet::filled(g.num_vertices());
        for &v in &cut {
            alive.remove(v as usize);
        }
        let comps = kvcc_graph::traversal::connected_components_filtered(&remaining, &alive);
        assert!(comps.len() >= 2);
        assert!(find_vertex_cut(&g, 1).is_none());
    }

    #[test]
    fn local_connectivity_matches_structure() {
        let g = cycle(8);
        assert_eq!(local_vertex_connectivity(&g, 0, 4, 10), 2);
        assert_eq!(local_vertex_connectivity(&g, 0, 1, 10), 10); // adjacent
        assert_eq!(local_vertex_connectivity(&g, 3, 3, 10), 10); // same vertex
    }

    #[test]
    fn low_degree_source_shortcut() {
        // Star graph: centre 0, leaves 1..=4. Minimum degree vertex is a leaf.
        let g = UndirectedGraph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let cut = find_vertex_cut(&g, 2).expect("star is 1-connected");
        assert_eq!(cut, vec![0]);
    }
}
