//! Cooperative cancellation: the [`Budget`] token and the [`Interrupted`]
//! error.
//!
//! Long-running enumerations need to be *interruptible*: a serving process
//! that promised a deadline cannot wait for a giant component's cut loop to
//! run to completion. A [`Budget`] bundles the two interruption sources —
//! a wall-clock deadline and an explicit cancellation flag — behind one
//! cheap [`expired`](Budget::expired) poll. The convention throughout the
//! workspace is **cooperative, coarse-grained checking**: hot loops poll at
//! natural phase boundaries (one Dinic BFS phase, one `GLOBAL-CUT` probe,
//! one work item), never per edge, so the cost of being interruptible is a
//! handful of nanoseconds per phase while the interrupt latency stays
//! bounded by the largest single phase.
//!
//! An unlimited budget ([`Budget::unlimited`], also the `Default`) carries
//! neither a deadline nor a flag and allocates nothing, so code paths that
//! never cancel pay nothing for the plumbing. Clones share the cancellation
//! flag: cancelling any clone interrupts every computation polling one of
//! them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A computation was cut short by its [`Budget`] (deadline passed or the
/// token was cancelled). The partially mutated scratch state is safe to
/// reuse; only the *answer* of the interrupted computation is missing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interrupted;

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "computation interrupted by its budget (deadline or cancellation)"
        )
    }
}

impl std::error::Error for Interrupted {}

/// A cooperative cancellation token: an optional wall-clock deadline plus an
/// optional shared cancellation flag (see the [module docs](self)).
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget that never expires and cannot be cancelled. Allocation-free,
    /// so it is the zero-cost default for un-deadlined work.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring at `deadline`. Also carries a cancellation flag so
    /// the caller can additionally [`cancel`](Budget::cancel) early.
    pub fn with_deadline(deadline: Instant) -> Self {
        Budget {
            deadline: Some(deadline),
            flag: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// A budget expiring `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// A budget with no deadline that can only expire through an explicit
    /// [`cancel`](Budget::cancel) on this token or any of its clones.
    pub fn cancellable() -> Self {
        Budget {
            deadline: None,
            flag: Some(Arc::new(AtomicBool::new(false))),
        }
    }

    /// The deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether this budget can never expire (no deadline, no flag).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.flag.is_none()
    }

    /// Raises the cancellation flag, interrupting every computation polling
    /// this budget or one of its clones at its next check. No-op on a budget
    /// without a flag ([`Budget::unlimited`]).
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether [`cancel`](Budget::cancel) has been called (ignores the
    /// deadline).
    pub fn is_cancelled(&self) -> bool {
        self.flag
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    /// Polls the token: `true` once the deadline has passed or the flag was
    /// raised. This is the check hot loops place at phase boundaries.
    #[inline]
    pub fn expired(&self) -> bool {
        self.is_cancelled()
            || self
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// [`expired`](Budget::expired) as a `Result`, for `?`-style
    /// propagation out of interruptible loops.
    #[inline]
    pub fn check(&self) -> Result<(), Interrupted> {
        if self.expired() {
            Err(Interrupted)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_expires_and_allocates_no_flag() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.expired());
        assert!(b.check().is_ok());
        b.cancel(); // no flag: documented no-op
        assert!(!b.is_cancelled());
        assert!(!b.expired());
    }

    #[test]
    fn deadline_in_the_past_expires_immediately() {
        let b = Budget::with_timeout(Duration::ZERO);
        assert!(!b.is_unlimited());
        assert!(b.expired());
        assert_eq!(b.check(), Err(Interrupted));
        assert!(b.deadline().is_some());
    }

    #[test]
    fn generous_deadline_does_not_expire_yet() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        assert!(!b.expired());
        // Cancellation overrides the deadline.
        b.cancel();
        assert!(b.is_cancelled());
        assert!(b.expired());
    }

    #[test]
    fn clones_share_the_cancellation_flag() {
        let a = Budget::cancellable();
        let b = a.clone();
        assert!(!b.expired());
        a.cancel();
        assert!(b.expired());
        assert!(b.is_cancelled());
    }
}
