//! Dinic's max-flow algorithm with early termination.
//!
//! The k-VCC enumeration never needs to know a local connectivity value beyond
//! `k`: as soon as `k` units of flow have been routed the pair is known to be
//! "k-local-connected" (`u ≡ₖ v`) and the computation stops. On the
//! vertex-split flow graph every augmenting path carries exactly one unit, so
//! the cost per `LOC-CUT` call is `O(min(√n, k) · m)` (Lemma 6 of the paper).

use kvcc_graph::bitset::EpochBitSet;

use crate::budget::{Budget, Interrupted};
use crate::network::{FlowNetwork, NodeId};

/// Level assigned to nodes that the residual BFS did not reach.
const UNREACHED: u32 = u32::MAX;

/// Reusable scratch space for repeated max-flow computations on the same
/// network, avoiding per-query allocations (the enumeration issues thousands
/// of `LOC-CUT` calls per `GLOBAL-CUT`).
///
/// Level validity is tracked with an epoch-stamped bitset
/// ([`EpochBitSet`]) instead of re-clearing the whole `level` array before
/// every BFS phase: starting a phase is a single counter increment, and only
/// the words the BFS actually touches are ever written. On k-bounded probes —
/// which touch a small residual neighbourhood of the source — this removes
/// the `O(n)`-per-phase clearing cost that used to dominate small-cut probes
/// on large subgraphs, and packs the reached marks 64 nodes per word. The
/// buffers themselves only ever grow (the internal `ensure` never shrinks),
/// so one scratch reused across differently sized networks allocates nothing
/// in steady state.
#[derive(Clone, Debug, Default)]
pub struct DinicScratch {
    /// BFS level per node; only meaningful where `reached` contains the node.
    level: Vec<u32>,
    /// Epoch-stamped membership of `level`: cleared per phase with one
    /// counter bump ([`DinicScratch::begin_phase`]).
    reached: EpochBitSet,
    /// Current-arc DFS cursors (reset per phase for reached nodes only).
    iter: Vec<usize>,
    queue: Vec<NodeId>,
    path: Vec<u32>,
}

impl DinicScratch {
    /// Creates scratch space pre-sized for `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        let mut scratch = DinicScratch::default();
        scratch.ensure(num_nodes);
        scratch
    }

    /// Grows every buffer to cover `num_nodes` nodes. Buffers never shrink,
    /// so a caller that sizes the scratch from its vertex bound once (e.g.
    /// [`crate::VertexFlowGraph::rebuild`]) pays no per-probe reallocation.
    pub(crate) fn ensure(&mut self, num_nodes: usize) {
        if self.level.len() < num_nodes {
            self.level.resize(num_nodes, UNREACHED);
            self.iter.resize(num_nodes, 0);
            self.queue
                .reserve(num_nodes.saturating_sub(self.queue.capacity()));
        }
        self.reached.ensure(num_nodes);
    }

    /// Starts a new BFS phase by clearing the reached set (an epoch bump;
    /// all previously assigned levels become invalid without touching them).
    fn begin_phase(&mut self) {
        self.reached.clear_all();
    }

    /// The level of `v` in the current phase ([`UNREACHED`] if the BFS did
    /// not reach it or a DFS retreat invalidated it).
    #[inline]
    fn level_of(&self, v: NodeId) -> u32 {
        if self.reached.contains(v as usize) {
            self.level[v as usize]
        } else {
            UNREACHED
        }
    }

    /// Assigns `v` its level for the current phase.
    #[inline]
    fn set_level(&mut self, v: NodeId, level: u32) {
        self.reached.insert(v as usize);
        self.level[v as usize] = level;
    }
}

/// Computes a maximum flow from `source` to `sink`, stopping early once
/// `limit` units have been routed. Returns the amount of flow found
/// (`<= limit`).
///
/// The network is left in its residual state so that the caller can extract a
/// minimum cut (see [`crate::mincut`]); call [`FlowNetwork::reset`] before the
/// next query.
pub fn max_flow(net: &mut FlowNetwork, source: NodeId, sink: NodeId, limit: u32) -> u32 {
    let mut scratch = DinicScratch::new(net.num_nodes());
    max_flow_with_scratch(net, source, sink, limit, &mut scratch)
}

/// [`max_flow`] variant that reuses caller-provided scratch buffers.
pub fn max_flow_with_scratch(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
    limit: u32,
    scratch: &mut DinicScratch,
) -> u32 {
    max_flow_budgeted(net, source, sink, limit, scratch, &Budget::unlimited())
        .expect("an unlimited budget never interrupts")
}

/// [`max_flow_with_scratch`] under a cooperative [`Budget`].
///
/// The budget is polled **once per BFS phase** (the paper-granular
/// checkpoint: a phase is the unit after which the level graph is rebuilt),
/// never per edge, so the check costs one `Instant::now` per phase while
/// the interrupt latency stays bounded by a single phase. On
/// [`Interrupted`] the network holds a *partial* flow; callers must
/// [`FlowNetwork::reset`] before the next query exactly as they would after
/// a completed one — the scratch arena itself is never poisoned.
pub fn max_flow_budgeted(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
    limit: u32,
    scratch: &mut DinicScratch,
    budget: &Budget,
) -> Result<u32, Interrupted> {
    if source == sink || limit == 0 {
        return Ok(0);
    }
    scratch.ensure(net.num_nodes());
    let mut flow = 0u32;
    // Once `flow == limit` the outer condition fails immediately, so a probe
    // that meets its bound never pays a final no-progress BFS phase.
    while flow < limit {
        budget.check()?;
        if !build_levels(net, source, sink, scratch) {
            break;
        }
        loop {
            let pushed = blocking_path(net, source, sink, limit - flow, scratch);
            if pushed == 0 {
                break;
            }
            flow += pushed;
            if flow >= limit {
                break;
            }
        }
    }
    Ok(flow)
}

/// Residual BFS from `source`; returns `true` when `sink` is reachable.
///
/// Starts a fresh scratch epoch instead of clearing the level array, and
/// resets the DFS cursors only for the nodes actually reached (the queue
/// contents) — the per-phase cost is proportional to the explored region,
/// not to the network size.
fn build_levels(
    net: &FlowNetwork,
    source: NodeId,
    sink: NodeId,
    scratch: &mut DinicScratch,
) -> bool {
    scratch.begin_phase();
    scratch.queue.clear();
    scratch.set_level(source, 0);
    scratch.queue.push(source);
    let mut head = 0;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        // Dequeued nodes are reached by construction: read the level directly
        // instead of going through the bitset check in `level_of`.
        let lu = scratch.level[u as usize];
        for &a in net.arcs_from(u) {
            if net.residual(a) == 0 {
                continue;
            }
            let v = net.arc_head(a);
            // `insert` returns whether the bit was newly set, so discovery
            // tests and marks `v` with a single bitset access.
            if scratch.reached.insert(v as usize) {
                scratch.level[v as usize] = lu + 1;
                scratch.queue.push(v);
            }
        }
    }
    for i in 0..scratch.queue.len() {
        scratch.iter[scratch.queue[i] as usize] = 0;
    }
    // No retreat has happened yet this phase, so reached == has a BFS level.
    scratch.reached.contains(sink as usize)
}

/// Finds one augmenting path in the level graph (iterative DFS with the
/// current-arc optimisation) and pushes its bottleneck flow. Returns the
/// amount pushed (0 when the level graph is exhausted).
fn blocking_path(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
    limit: u32,
    scratch: &mut DinicScratch,
) -> u32 {
    scratch.path.clear();
    let mut current = source;
    loop {
        if current == sink {
            // Bottleneck along the path.
            let mut bottleneck = limit;
            for &a in &scratch.path {
                bottleneck = bottleneck.min(net.residual(a));
            }
            for &a in &scratch.path {
                net.push(a, bottleneck);
            }
            return bottleneck;
        }
        let mut advanced = false;
        while scratch.iter[current as usize] < net.arcs_from(current).len() {
            let a = net.arcs_from(current)[scratch.iter[current as usize]];
            let v = net.arc_head(a);
            // `current` is always on the path (or the source) and thus holds
            // a valid level; only `v` needs the reached check.
            if net.residual(a) > 0 && scratch.level_of(v) == scratch.level[current as usize] + 1 {
                scratch.path.push(a);
                current = v;
                advanced = true;
                break;
            }
            scratch.iter[current as usize] += 1;
        }
        if advanced {
            continue;
        }
        // Dead end: retreat. `current` is already reached, so storing
        // `UNREACHED` into its level slot invalidates it without touching the
        // bitset.
        scratch.level[current as usize] = UNREACHED;
        match scratch.path.pop() {
            Some(last) => {
                // The tail of `last` is where we retreat to; advance its
                // current-arc pointer past the dead arc.
                let tail = net.arc_head(last ^ 1);
                scratch.iter[tail as usize] += 1;
                current = tail;
            }
            None => return 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::INFINITE_CAPACITY;

    /// Classic small network with max flow 23 (CLRS-style example).
    fn clrs_network() -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 16);
        net.add_arc(0, 2, 13);
        net.add_arc(1, 2, 10);
        net.add_arc(2, 1, 4);
        net.add_arc(1, 3, 12);
        net.add_arc(3, 2, 9);
        net.add_arc(2, 4, 14);
        net.add_arc(4, 3, 7);
        net.add_arc(3, 5, 20);
        net.add_arc(4, 5, 4);
        (net, 0, 5)
    }

    #[test]
    fn clrs_max_flow_is_23() {
        let (mut net, s, t) = clrs_network();
        assert_eq!(max_flow(&mut net, s, t, u32::MAX / 2), 23);
    }

    #[test]
    fn early_termination_respects_limit() {
        let (mut net, s, t) = clrs_network();
        assert_eq!(max_flow(&mut net, s, t, 5), 5);
        net.reset();
        assert_eq!(max_flow(&mut net, s, t, 23), 23);
        net.reset();
        assert_eq!(max_flow(&mut net, s, t, 0), 0);
    }

    #[test]
    fn reset_allows_repeated_queries() {
        let (mut net, s, t) = clrs_network();
        let mut scratch = DinicScratch::new(net.num_nodes());
        for _ in 0..3 {
            assert_eq!(
                max_flow_with_scratch(&mut net, s, t, 1000, &mut scratch),
                23
            );
            net.reset();
        }
    }

    #[test]
    fn expired_budget_interrupts_before_any_phase() {
        let (mut net, s, t) = clrs_network();
        let mut scratch = DinicScratch::new(net.num_nodes());
        let expired = Budget::with_timeout(std::time::Duration::ZERO);
        assert_eq!(
            max_flow_budgeted(&mut net, s, t, 1000, &mut scratch, &expired),
            Err(Interrupted)
        );
        // The arena stays reusable: the same buffers answer correctly under
        // an unlimited budget afterwards.
        net.reset();
        assert_eq!(
            max_flow_budgeted(&mut net, s, t, 1000, &mut scratch, &Budget::unlimited()),
            Ok(23)
        );
        // A cancelled flag interrupts just like a deadline.
        net.reset();
        let cancelled = Budget::cancellable();
        cancelled.cancel();
        assert_eq!(
            max_flow_budgeted(&mut net, s, t, 1000, &mut scratch, &cancelled),
            Err(Interrupted)
        );
    }

    #[test]
    fn parallel_unit_paths() {
        // Source 0, sink 5, three internally disjoint 2-hop paths.
        let mut net = FlowNetwork::new(6);
        for mid in 1..=3 {
            net.add_arc(0, mid, 1);
            net.add_arc(mid, 5, 1);
        }
        assert_eq!(max_flow(&mut net, 0, 5, 100), 3);
    }

    #[test]
    fn disconnected_sink_gives_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, INFINITE_CAPACITY);
        // Node 3 is unreachable.
        assert_eq!(max_flow(&mut net, 0, 3, 10), 0);
        assert_eq!(max_flow(&mut net, 0, 0, 10), 0);
    }

    #[test]
    fn flow_conservation_holds() {
        let (mut net, s, t) = clrs_network();
        let value = max_flow(&mut net, s, t, u32::MAX / 2);
        // For every internal node, inflow equals outflow.
        for v in 0..net.num_nodes() as NodeId {
            if v == s || v == t {
                continue;
            }
            let mut balance: i64 = 0;
            for a in 0..net.num_arcs() as u32 {
                if net.initial_capacity(a) == 0 {
                    continue; // skip residual twins
                }
                let from = net.arc_head(a ^ 1);
                let to = net.arc_head(a);
                if to == v {
                    balance += net.flow(a) as i64;
                }
                if from == v {
                    balance -= net.flow(a) as i64;
                }
            }
            assert_eq!(balance, 0, "conservation violated at node {v}");
        }
        // Net flow out of the source equals the flow value.
        let mut out: i64 = 0;
        for a in 0..net.num_arcs() as u32 {
            if net.initial_capacity(a) == 0 {
                continue;
            }
            if net.arc_head(a ^ 1) == s {
                out += net.flow(a) as i64;
            }
            if net.arc_head(a) == s {
                out -= net.flow(a) as i64;
            }
        }
        assert_eq!(out, value as i64);
    }
}
