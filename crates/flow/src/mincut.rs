//! Minimum-cut extraction from a residual network.
//!
//! After a max-flow computation terminates with value `< k` (i.e. no
//! augmenting path remains), the set of nodes reachable from the source in the
//! residual network defines a minimum s-t cut; the saturated forward arcs
//! leaving that set are the cut arcs. `LOC-CUT` (Algorithm 2, lines 16–17)
//! maps those arcs back to vertices of the original graph.

use kvcc_graph::bitset::BitSet;

use crate::network::{ArcId, FlowNetwork, NodeId};

/// Returns the set of nodes reachable from `source` in the residual network
/// (arcs with positive residual capacity only), as a word-packed [`BitSet`]
/// over the node ids.
pub fn residual_reachable(net: &FlowNetwork, source: NodeId) -> BitSet {
    let mut seen = BitSet::new(net.num_nodes());
    let mut stack = vec![source];
    seen.insert(source as usize);
    while let Some(u) = stack.pop() {
        for &a in net.arcs_from(u) {
            if net.residual(a) == 0 {
                continue;
            }
            let v = net.arc_head(a);
            if seen.insert(v as usize) {
                stack.push(v);
            }
        }
    }
    seen
}

/// Returns the ids of the forward arcs that cross the minimum cut induced by
/// the current residual state: arcs with positive initial capacity whose tail
/// is reachable from `source` and whose head is not.
///
/// Must be called after a completed (or early-terminated *and* exhausted)
/// max-flow computation; otherwise the returned arcs form a valid but not
/// necessarily minimum cut.
pub fn min_cut_arcs(net: &FlowNetwork, source: NodeId) -> Vec<ArcId> {
    let reachable = residual_reachable(net, source);
    let mut cut = Vec::new();
    for a in (0..net.num_arcs() as ArcId).step_by(2) {
        // Even ids are the forward arcs created by `add_arc`.
        if net.initial_capacity(a) == 0 {
            continue;
        }
        let tail = net.arc_head(a ^ 1);
        let head = net.arc_head(a);
        if reachable.contains(tail as usize) && !reachable.contains(head as usize) {
            cut.push(a);
        }
    }
    cut
}

/// Total initial capacity of the arcs returned by [`min_cut_arcs`].
pub fn min_cut_value(net: &FlowNetwork, source: NodeId) -> u64 {
    min_cut_arcs(net, source)
        .into_iter()
        .map(|a| net.initial_capacity(a) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::max_flow;

    #[test]
    fn cut_value_equals_flow_value() {
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 16);
        net.add_arc(0, 2, 13);
        net.add_arc(1, 2, 10);
        net.add_arc(2, 1, 4);
        net.add_arc(1, 3, 12);
        net.add_arc(3, 2, 9);
        net.add_arc(2, 4, 14);
        net.add_arc(4, 3, 7);
        net.add_arc(3, 5, 20);
        net.add_arc(4, 5, 4);
        let value = max_flow(&mut net, 0, 5, u32::MAX / 2);
        assert_eq!(value, 23);
        assert_eq!(min_cut_value(&net, 0), 23);
        let reach = residual_reachable(&net, 0);
        assert!(reach.contains(0));
        assert!(!reach.contains(5));
    }

    #[test]
    fn unit_path_cut_is_single_arc() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_arc(0, 1, 1);
        let b = net.add_arc(1, 2, 1);
        let value = max_flow(&mut net, 0, 2, 10);
        assert_eq!(value, 1);
        let cut = min_cut_arcs(&net, 0);
        assert_eq!(cut.len(), 1);
        assert!(cut[0] == a || cut[0] == b);
    }

    #[test]
    fn disconnected_sink_has_empty_cut() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5);
        let value = max_flow(&mut net, 0, 2, 10);
        assert_eq!(value, 0);
        // Node 2 is unreachable even with no flow, so the "cut" contains no
        // arcs (the source side simply never reaches the sink side).
        assert!(min_cut_arcs(&net, 0).is_empty());
    }
}
