//! Offline compatibility shim for the parts of the `criterion` API that the
//! workspace benches use.
//!
//! The build container has no network access, so the real crates.io
//! `criterion` cannot be fetched. This shim keeps the bench sources unchanged
//! and provides a small, honest timing harness instead of criterion's full
//! statistical machinery: each benchmark is warmed up for `warm_up_time`, then
//! run for up to `measurement_time` (at least `sample_size` iterations), and
//! the mean wall-clock time per iteration is printed as
//! `group/id ... <mean> ns/iter (<iters> iters)`.
//!
//! Results are also collected in-process so harnesses (like the `pr1-bench`
//! binary) can post-process them into JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id consisting of the parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One measured benchmark: its full name and the mean nanoseconds taken by a
/// single iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/id` name of the benchmark.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of measured iterations.
    pub iterations: u64,
}

/// The top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(800),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_with_input(BenchmarkId::from_parameter(id), &(), |b, _| f(b));
        group.finish();
        self
    }

    /// All measurements recorded so far (used by JSON-emitting harnesses).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Hook called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {
        eprintln!(
            "(criterion shim: {} benchmarks measured)",
            self.measurements.len()
        );
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher, input);
        self.record(id, &bencher);
        self
    }

    /// Benchmarks `f` without an explicit input.
    pub fn bench_function(
        &mut self,
        id: BenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.bench_with_input(id, &(), |b, _| f(b))
    }

    fn record(&mut self, id: BenchmarkId, bencher: &Bencher) {
        let name = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        let mean_ns = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iterations as f64
        };
        println!(
            "{name:<48} {mean_ns:>14.1} ns/iter ({} iters)",
            bencher.iterations
        );
        self.parent.measurements.push(Measurement {
            name,
            mean_ns,
            iterations: bencher.iterations,
        });
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

/// Runs the benchmark closure and accumulates timing (shim for
/// `criterion::Bencher`).
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up phase: run without recording.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement phase: at least `sample_size` iterations, stop adding
        // more once the time budget is exhausted.
        let mut total = Duration::ZERO;
        let mut iterations = 0u64;
        loop {
            let t = Instant::now();
            black_box(routine());
            total += t.elapsed();
            iterations += 1;
            if iterations >= self.sample_size as u64 && total >= self.measurement_time {
                break;
            }
            if iterations >= self.sample_size as u64 * 64 {
                break; // very fast routines: cap the iteration count
            }
        }
        self.total = total;
        self.iterations = iterations;
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_measurements() {
        let mut c = Criterion::new();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(5)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.finish();
        }
        assert_eq!(c.measurements().len(), 1);
        let m = &c.measurements()[0];
        assert_eq!(m.name, "demo/3");
        assert!(m.iterations >= 5);
        assert!(m.mean_ns >= 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
