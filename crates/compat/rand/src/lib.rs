//! Offline compatibility shim for the parts of the `rand` 0.8 API that this
//! workspace uses.
//!
//! The build container has no network access, so the real crates.io `rand`
//! cannot be fetched. The workload generators in `kvcc-datasets` only need a
//! *deterministic, seedable, reasonably well mixed* source of pseudo-random
//! numbers — cryptographic quality is irrelevant — so this crate provides a
//! tiny drop-in replacement:
//!
//! * [`rngs::StdRng`] — xoshiro256\*\* seeded through SplitMix64;
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer ranges),
//!   `gen_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The generated streams do **not** match crates.io `rand`; they only promise
//! determinism for a fixed seed, which is all the dataset generators rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// A deterministic xoshiro256\*\* generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro
            // authors; guarantees a non-zero state for any seed.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Advances the generator and returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut rngs::StdRng) -> f64 {
        // 53 random mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as $t as u64 && start == 0 {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u32, u64, usize, i64);

/// Uniform value in `0..span` by widening multiplication (Lemire's method,
/// without the rejection step — the tiny modulo bias is irrelevant for
/// synthetic graph generation).
fn uniform_u64(rng: &mut rngs::StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// The subset of rand's `Rng` extension trait used by the workspace.
pub trait Rng {
    /// Draws a uniform value of type `T` (only `f64`, `u32`, `u64`).
    fn gen<T: Standard>(&mut self) -> T;
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::draw(self) < p.clamp(0.0, 1.0)
    }
}

/// Sequence helpers.
pub mod seq {
    use super::rngs::StdRng;
    use super::Rng;

    /// Slice shuffling (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }
}
