//! Workload generators for the k-VCC enumeration library.
//!
//! The paper evaluates on seven SNAP graphs that cannot be redistributed with
//! this repository, so every experiment harness accepts either a real SNAP
//! edge list (via `kvcc-graph::io`) or one of the deterministic synthetic
//! stand-ins generated here. The generators are chosen to reproduce the
//! structural features the algorithms are sensitive to — heavy-tailed degree
//! distributions, locally dense overlapping communities, and large sparse
//! peripheries that the k-core pruning removes.
//!
//! * [`er`] / [`ba`] / [`webgraph`] — classic random-graph models
//!   (Erdős–Rényi, Barabási–Albert, copying model).
//! * [`harary`] — minimal k-connected circulant graphs, the building block
//!   that guarantees planted communities really are k-vertex connected.
//! * [`planted`] — overlapping dense communities embedded in a sparse
//!   background, with ground truth.
//! * [`collaboration`] — DBLP-style co-authorship graphs for the §6.4 case
//!   study.
//! * [`figure1`] — the free-rider example of Fig. 1.
//! * [`suite`] — the seven named dataset stand-ins of Table 1.
//! * [`sampling`] — vertex / edge sampling used by the scalability study
//!   (§6.3).
//! * [`stream`] — deterministic SNAP-scale edge lists written to disk in
//!   O(1) memory, the workload of the streaming-ingestion bench.
//! * [`diffs`] — replay-aware batched edge-update streams (every delete hits
//!   a present edge, every insert an absent pair), the workload of the
//!   mutable-graph / incremental-index-maintenance bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod collaboration;
pub mod diffs;
pub mod er;
pub mod figure1;
pub mod harary;
pub mod planted;
pub mod sampling;
pub mod stream;
pub mod suite;
pub mod webgraph;

pub use diffs::{diff_stream, DiffStreamConfig};
pub use figure1::{figure1_graph, Figure1};
pub use planted::{PlantedConfig, PlantedGraph};
pub use stream::StreamConfig;
pub use suite::{SuiteDataset, SuiteScale};
