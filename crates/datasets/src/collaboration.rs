//! DBLP-style collaboration graphs for the case study of §6.4.
//!
//! The paper's case study builds a co-authorship graph (an edge between two
//! authors who share at least three publications), picks the ego network of a
//! prolific author ("Jiawei Han") and shows that the 4-VCCs separate his
//! research groups while the 4-ECC / 4-core merge them. This generator
//! reproduces that structure: a set of research groups (dense co-author
//! blocks), a small number of hub authors who belong to several groups, and a
//! long tail of occasional collaborators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

use crate::harary::harary;

/// Configuration of the collaboration-graph generator.
#[derive(Clone, Debug)]
pub struct CollaborationConfig {
    /// Number of research groups collaborating with the hub author.
    pub num_groups: usize,
    /// Members per group (excluding the hub).
    pub group_size: (usize, usize),
    /// Internal cohesion of each group: the group is at least this
    /// vertex-connected.
    pub group_connectivity: usize,
    /// Number of "core" authors (besides the hub) that belong to two adjacent
    /// groups, like the multi-group authors of Fig. 14.
    pub shared_authors: usize,
    /// Occasional collaborators attached to the hub by a single edge.
    pub pendant_collaborators: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CollaborationConfig {
    fn default() -> Self {
        CollaborationConfig {
            num_groups: 6,
            group_size: (6, 10),
            group_connectivity: 4,
            shared_authors: 3,
            pendant_collaborators: 12,
            seed: 2019,
        }
    }
}

/// A generated collaboration graph.
#[derive(Clone, Debug)]
pub struct CollaborationGraph {
    /// The co-authorship graph.
    pub graph: UndirectedGraph,
    /// The hub author every group collaborates with (vertex 0).
    pub hub: VertexId,
    /// The research groups; each list contains the member authors **and** the
    /// hub.
    pub groups: Vec<Vec<VertexId>>,
}

/// Generates a collaboration graph according to `config`.
pub fn collaboration_graph(config: &CollaborationConfig) -> CollaborationGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let hub: VertexId = 0;
    let mut builder = GraphBuilder::new().with_vertices(1);
    let mut next: VertexId = 1;
    let mut groups: Vec<Vec<VertexId>> = Vec::with_capacity(config.num_groups);
    let k = config.group_connectivity.max(1);

    let mut previous_tail: Vec<VertexId> = Vec::new();
    for gi in 0..config.num_groups {
        let size = rng
            .gen_range(config.group_size.0..=config.group_size.1)
            .max(k + 1);
        // A few authors are shared with the previous group (research moves
        // between groups); always fewer than k so the k-VCCs stay distinct.
        let shared: Vec<VertexId> = if gi == 0 {
            Vec::new()
        } else {
            previous_tail
                .iter()
                .copied()
                .take(config.shared_authors.min(k.saturating_sub(2)))
                .collect()
        };
        let fresh = size - shared.len();
        let mut members: Vec<VertexId> = shared;
        members.extend((0..fresh).map(|i| next + i as VertexId));
        next += fresh as VertexId;

        // The group plus the hub forms one densely collaborating block. Using
        // a Harary skeleton over (members + hub) guarantees the block is
        // k-vertex connected, so it is recovered as (part of) a k-VCC.
        let mut block: Vec<VertexId> = members.clone();
        block.push(hub);
        let skeleton = harary(k, block.len());
        for (a, b) in skeleton.edges() {
            builder.add_edge(block[a as usize], block[b as usize]);
        }
        // The hub co-authors with every member of every group (that is what
        // makes them *their* groups), so the whole group is inside the hub's
        // ego network — exactly the situation of the paper's case study.
        for &member in &members {
            builder.add_edge(hub, member);
        }
        // Extra co-authorships inside the group.
        for _ in 0..block.len() {
            let a = rng.gen_range(0..block.len());
            let b = rng.gen_range(0..block.len());
            if a != b {
                builder.add_edge(block[a], block[b]);
            }
        }

        previous_tail = members[members.len().saturating_sub(k)..].to_vec();
        let mut sorted = block;
        sorted.sort_unstable();
        sorted.dedup();
        groups.push(sorted);
    }

    // Occasional collaborators: single joint paper with the hub.
    for _ in 0..config.pendant_collaborators {
        builder.add_edge(hub, next);
        next += 1;
    }

    CollaborationGraph {
        graph: builder.build(),
        hub,
        groups,
    }
}

/// The ego network of `center`: the subgraph induced by the vertex and its
/// neighbours (the paper's case study operates on exactly this subgraph).
pub fn ego_subgraph(g: &UndirectedGraph, center: VertexId) -> kvcc_graph::InducedSubgraph {
    let mut members: Vec<VertexId> = vec![center];
    members.extend_from_slice(g.neighbors(center));
    g.induced_subgraph(&members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_flow::is_k_vertex_connected;

    #[test]
    fn groups_are_k_connected_blocks_containing_the_hub() {
        let config = CollaborationConfig::default();
        let collab = collaboration_graph(&config);
        assert_eq!(collab.groups.len(), config.num_groups);
        for group in &collab.groups {
            assert!(group.contains(&collab.hub));
            let sub = collab.graph.induced_subgraph(group);
            assert!(
                is_k_vertex_connected(&sub.graph, config.group_connectivity as u32),
                "group {group:?} must be {}-connected",
                config.group_connectivity
            );
        }
    }

    #[test]
    fn hub_has_the_largest_degree() {
        let collab = collaboration_graph(&CollaborationConfig::default());
        let hub_degree = collab.graph.degree(collab.hub);
        assert_eq!(
            hub_degree,
            collab.graph.max_degree(),
            "the hub must be the highest-degree author"
        );
        assert!(
            hub_degree >= 12,
            "hub collaborates with pendants and every group"
        );
    }

    #[test]
    fn ego_subgraph_contains_center_and_neighbors() {
        let collab = collaboration_graph(&CollaborationConfig::default());
        let ego = ego_subgraph(&collab.graph, collab.hub);
        assert_eq!(
            ego.graph.num_vertices(),
            collab.graph.degree(collab.hub) + 1
        );
        assert_eq!(ego.to_parent[0], collab.hub);
    }

    #[test]
    fn generator_is_deterministic() {
        let config = CollaborationConfig::default();
        let a = collaboration_graph(&config);
        let b = collaboration_graph(&config);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.groups, b.groups);
    }
}
