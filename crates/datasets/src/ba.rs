//! Barabási–Albert preferential attachment graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

/// Generates a Barabási–Albert graph: starting from a small clique, every new
/// vertex attaches to `edges_per_vertex` existing vertices chosen with
/// probability proportional to their degree, yielding the heavy-tailed degree
/// distribution typical of web and citation graphs.
pub fn barabasi_albert(n: usize, edges_per_vertex: usize, seed: u64) -> UndirectedGraph {
    let m = edges_per_vertex.max(1);
    let mut builder = GraphBuilder::new().with_vertices(n);
    if n == 0 {
        return builder.build();
    }
    let seed_size = (m + 1).min(n);
    // Repeated-endpoint list: picking a uniform element is equivalent to
    // degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    for u in 0..seed_size as VertexId {
        for v in (u + 1)..seed_size as VertexId {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for v in seed_size..n {
        let v = v as VertexId;
        // A Vec with a linear containment check keeps the target order (and
        // therefore the whole generation) deterministic; m is tiny.
        let mut targets: Vec<VertexId> = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m && guard < 50 * m {
            guard += 1;
            let t = if endpoints.is_empty() {
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            builder.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_expected_edge_count() {
        let n = 500;
        let m = 4;
        let g = barabasi_albert(n, m, 11);
        assert_eq!(g.num_vertices(), n);
        // Seed clique of 5 vertices (10 edges) + ~4 edges per remaining vertex.
        let expected = 10 + (n - 5) * m;
        assert!(g.num_edges() <= expected);
        assert!(g.num_edges() >= expected - n / 10, "got {}", g.num_edges());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 3, 5);
        let max = g.max_degree();
        let avg = g.average_degree();
        assert!(
            max as f64 > 5.0 * avg,
            "max {max} should dwarf average {avg}"
        );
    }

    #[test]
    fn deterministic_and_handles_tiny_inputs() {
        assert_eq!(barabasi_albert(100, 3, 9), barabasi_albert(100, 3, 9));
        assert_eq!(barabasi_albert(0, 3, 9).num_vertices(), 0);
        let g = barabasi_albert(3, 5, 9);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3); // seed clique truncated to n
    }
}
