//! The free-rider example of Fig. 1.
//!
//! Four dense blocks `G1..G4` glued together so loosely that they should be
//! reported as separate cohesive subgraphs, yet:
//!
//! * the 4-core merges all four blocks into one component;
//! * the 4-ECCs merge `G1 ∪ G2 ∪ G3` (they only share a vertex or an edge, but
//!   enough *edges* cross the seams) while `G4` stays separate;
//! * the 4-VCCs are exactly `G1`, `G2`, `G3`, `G4`.
//!
//! The constructed graph uses a K6 for every block: `G1 ∩ G2` is the edge
//! `(4, 5)`, `G2 ∩ G3` is the single vertex `9`, and `G3`–`G4` are joined by
//! two independent edges.

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

/// The Fig. 1 example graph plus its ground truth.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The glued graph (21 vertices).
    pub graph: UndirectedGraph,
    /// The four blocks `G1..G4` as sorted vertex lists; these are exactly the
    /// 4-VCCs of the graph.
    pub blocks: [Vec<VertexId>; 4],
    /// The expected 4-ECCs: `G1 ∪ G2 ∪ G3` and `G4`.
    pub expected_4eccs: Vec<Vec<VertexId>>,
    /// The expected single 4-core component (all vertices).
    pub expected_4core: Vec<VertexId>,
}

/// Builds the Fig. 1 example.
pub fn figure1_graph() -> Figure1 {
    let mut builder = GraphBuilder::new().with_vertices(21);

    // G1 = {0..5}, G2 = {4,5,6,7,8,9}, G3 = {9..14}, G4 = {15..20}.
    let g1: Vec<VertexId> = (0..6).collect();
    let g2: Vec<VertexId> = vec![4, 5, 6, 7, 8, 9];
    let g3: Vec<VertexId> = (9..15).collect();
    let g4: Vec<VertexId> = (15..21).collect();

    for block in [&g1, &g2, &g3, &g4] {
        for (i, &a) in block.iter().enumerate() {
            for &b in &block[i + 1..] {
                builder.add_edge(a, b);
            }
        }
    }
    // G3 and G4 are joined by two vertex-disjoint edges (no shared vertices).
    builder.add_edge(13, 15);
    builder.add_edge(14, 16);

    let graph = builder.build();
    let expected_4core: Vec<VertexId> = (0..21).collect();
    let mut g123: Vec<VertexId> = (0..15).collect();
    g123.sort_unstable();

    Figure1 {
        graph,
        blocks: [g1, g2, g3, g4.clone()],
        expected_4eccs: vec![g123, g4],
        expected_4core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_flow::{global_vertex_connectivity, is_k_vertex_connected};

    #[test]
    fn blocks_are_4_connected_k6s() {
        let fig = figure1_graph();
        for block in &fig.blocks {
            assert_eq!(block.len(), 6);
            let sub = fig.graph.induced_subgraph(block);
            assert_eq!(sub.graph.num_edges(), 15);
            assert!(is_k_vertex_connected(&sub.graph, 4));
            assert_eq!(global_vertex_connectivity(&sub.graph), 5);
        }
    }

    #[test]
    fn block_unions_are_not_4_vertex_connected() {
        let fig = figure1_graph();
        let union12: Vec<VertexId> = {
            let mut v = fig.blocks[0].clone();
            v.extend_from_slice(&fig.blocks[1]);
            v.sort_unstable();
            v.dedup();
            v
        };
        let sub = fig.graph.induced_subgraph(&union12);
        assert!(!is_k_vertex_connected(&sub.graph, 4));
        assert!(is_k_vertex_connected(&sub.graph, 2));
    }

    #[test]
    fn seams_match_the_paper() {
        let fig = figure1_graph();
        // G1 and G2 share exactly the edge (4,5).
        let shared12: Vec<_> = fig.blocks[0]
            .iter()
            .filter(|v| fig.blocks[1].contains(v))
            .collect();
        assert_eq!(shared12.len(), 2);
        assert!(fig.graph.has_edge(4, 5));
        // G2 and G3 share exactly vertex 9.
        let shared23: Vec<_> = fig.blocks[1]
            .iter()
            .filter(|v| fig.blocks[2].contains(v))
            .collect();
        assert_eq!(shared23.len(), 1);
        // G3 and G4 share nothing but are joined by two edges.
        let shared34: Vec<_> = fig.blocks[2]
            .iter()
            .filter(|v| fig.blocks[3].contains(v))
            .collect();
        assert!(shared34.is_empty());
        assert!(fig.graph.has_edge(13, 15) && fig.graph.has_edge(14, 16));
    }
}
