//! Harary graphs: minimal k-vertex-connected circulants.
//!
//! The Harary graph `H(k, n)` is the k-vertex-connected graph on `n` vertices
//! with the fewest possible edges (`⌈k·n/2⌉`). The planted-community generator
//! uses it as a *guaranteed* k-connected skeleton, so the ground truth of a
//! synthetic dataset never depends on a probabilistic argument.

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

/// Builds the Harary graph `H(k, n)`.
///
/// Construction (the classical one):
/// * place the `n` vertices on a circle;
/// * connect every vertex to its `⌊k/2⌋` nearest neighbours on each side;
/// * if `k` is odd, additionally connect every vertex `i` to the opposite
///   vertex `i + n/2` (requires even `n`; for odd `n` the standard
///   construction connects vertex `i` to `i + (n+1)/2` for the first half,
///   which is what this implementation does).
///
/// # Panics
///
/// Panics when `k >= n` (no k-connected graph on `n <= k` vertices exists).
pub fn harary(k: usize, n: usize) -> UndirectedGraph {
    assert!(k < n, "H(k, n) requires k < n (got k = {k}, n = {n})");
    let mut builder = GraphBuilder::new().with_vertices(n);
    if n == 0 || k == 0 {
        return builder.build();
    }
    let half = k / 2;
    for i in 0..n {
        for d in 1..=half {
            let j = (i + d) % n;
            builder.add_edge(i as VertexId, j as VertexId);
        }
    }
    if k % 2 == 1 {
        if n.is_multiple_of(2) {
            for i in 0..n / 2 {
                builder.add_edge(i as VertexId, (i + n / 2) as VertexId);
            }
        } else {
            // Odd n: connect i to i + (n+1)/2 for i in 0..=(n-1)/2, giving one
            // vertex (vertex 0's partner region) an extra edge as in Harary's
            // original construction.
            let offset = n.div_ceil(2);
            for i in 0..=(n / 2) {
                builder.add_edge(i as VertexId, ((i + offset) % n) as VertexId);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_flow::global_vertex_connectivity;

    #[test]
    fn harary_graphs_are_exactly_k_connected() {
        for &(k, n) in &[(2usize, 7usize), (3, 8), (3, 9), (4, 10), (5, 12), (6, 13)] {
            let g = harary(k, n);
            assert_eq!(g.num_vertices(), n);
            let conn = global_vertex_connectivity(&g) as usize;
            assert!(
                conn >= k,
                "H({k},{n}) must be at least {k}-connected, got {conn}"
            );
            // Minimality: edge count is ceil(k*n/2) except for the odd-k,
            // odd-n case which may carry one extra edge.
            let expected = (k * n).div_ceil(2);
            assert!(
                g.num_edges() == expected || g.num_edges() == expected + 1,
                "H({k},{n}) has {} edges, expected about {expected}",
                g.num_edges()
            );
        }
    }

    #[test]
    fn degenerate_parameters() {
        assert_eq!(harary(0, 5).num_edges(), 0);
        let g = harary(1, 4);
        assert!(g.num_edges() >= 2);
    }

    #[test]
    #[should_panic(expected = "requires k < n")]
    fn rejects_k_not_smaller_than_n() {
        let _ = harary(5, 5);
    }
}
