//! Planted overlapping dense communities with ground truth.
//!
//! The generator embeds a configurable number of k-vertex-connected blocks
//! (Harary skeleton + random densification) into a sparse scale-free
//! background. Consecutive blocks in a "chain" share fewer than `k` vertices,
//! reproducing the overlapping-community structure the k-VCC model is designed
//! to recover (and forcing the enumerator to perform overlapped partitions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

use crate::ba::barabasi_albert;
use crate::harary::harary;

/// Configuration of the planted-community generator.
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Connectivity level every planted block is guaranteed to reach.
    pub k: usize,
    /// Number of planted blocks.
    pub num_communities: usize,
    /// Inclusive range of block sizes (must be `> k`).
    pub community_size: (usize, usize),
    /// Number of vertices shared between consecutive blocks of a chain
    /// (must be `< k`; 0 disables overlaps).
    pub overlap: usize,
    /// Number of consecutive blocks forming one overlapping chain.
    pub chain_length: usize,
    /// Extra random intra-block edges per vertex, added on top of the Harary
    /// skeleton to make blocks look like real communities.
    pub extra_intra_edges_per_vertex: usize,
    /// Number of background (non-community) vertices.
    pub background_vertices: usize,
    /// Preferential-attachment edges per background vertex.
    pub background_edges_per_vertex: usize,
    /// Random edges attaching each block to the background.
    pub attachment_edges_per_community: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        PlantedConfig {
            k: 4,
            num_communities: 4,
            community_size: (8, 12),
            overlap: 2,
            chain_length: 2,
            extra_intra_edges_per_vertex: 2,
            background_vertices: 200,
            background_edges_per_vertex: 2,
            attachment_edges_per_community: 3,
            seed: 1,
        }
    }
}

/// A generated planted-community graph together with its ground truth.
#[derive(Clone, Debug)]
pub struct PlantedGraph {
    /// The generated graph.
    pub graph: UndirectedGraph,
    /// The planted blocks (each is k-vertex connected by construction), as
    /// sorted vertex lists.
    pub communities: Vec<Vec<VertexId>>,
    /// The connectivity level guaranteed inside every block.
    pub k: usize,
}

/// Generates a planted-community graph according to `config`.
///
/// # Panics
///
/// Panics if the configuration is inconsistent (block size `<= k`, or
/// `overlap >= k`).
pub fn planted_communities(config: &PlantedConfig) -> PlantedGraph {
    let k = config.k;
    assert!(config.community_size.0 > k, "community size must exceed k");
    assert!(
        config.community_size.0 <= config.community_size.1,
        "invalid size range"
    );
    assert!(config.overlap < k.max(1), "overlap must be smaller than k");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let background = barabasi_albert(
        config.background_vertices,
        config.background_edges_per_vertex,
        config.seed ^ 0x9E37_79B9,
    );

    let mut builder = GraphBuilder::new().with_vertices(config.background_vertices);
    for (u, v) in background.edges() {
        builder.add_edge(u, v);
    }

    let mut next_vertex = config.background_vertices as VertexId;
    let mut communities: Vec<Vec<VertexId>> = Vec::with_capacity(config.num_communities);
    let chain_length = config.chain_length.max(1);

    while communities.len() < config.num_communities {
        // Vertices shared with the previous block of the current chain.
        let mut previous_tail: Vec<VertexId> = Vec::new();
        for position in 0..chain_length {
            if communities.len() >= config.num_communities {
                break;
            }
            let size = rng.gen_range(config.community_size.0..=config.community_size.1);
            let shared: Vec<VertexId> = if position == 0 || config.overlap == 0 {
                Vec::new()
            } else {
                previous_tail.iter().copied().take(config.overlap).collect()
            };
            let fresh = size - shared.len();
            let mut members: Vec<VertexId> = shared.clone();
            members.extend((0..fresh).map(|i| next_vertex + i as VertexId));
            next_vertex += fresh as VertexId;

            add_block(
                &mut builder,
                &mut rng,
                &members,
                k,
                config.extra_intra_edges_per_vertex,
            );

            // Attach the block loosely to the background.
            if config.background_vertices > 0 {
                for _ in 0..config.attachment_edges_per_community {
                    let inside = members[rng.gen_range(0..members.len())];
                    let outside = rng.gen_range(0..config.background_vertices as VertexId);
                    builder.add_edge(inside, outside);
                }
            }

            // The tail of this block seeds the overlap of the next one.
            previous_tail = members[members.len().saturating_sub(k.max(1))..].to_vec();
            let mut sorted = members;
            sorted.sort_unstable();
            communities.push(sorted);
        }
    }

    PlantedGraph {
        graph: builder.build(),
        communities,
        k,
    }
}

/// Adds one k-connected block over the given member vertices: a Harary
/// skeleton (guaranteeing the connectivity) plus random extra edges.
fn add_block(
    builder: &mut GraphBuilder,
    rng: &mut StdRng,
    members: &[VertexId],
    k: usize,
    extra_per_vertex: usize,
) {
    let size = members.len();
    let skeleton = harary(k, size);
    for (a, b) in skeleton.edges() {
        builder.add_edge(members[a as usize], members[b as usize]);
    }
    let extra = size * extra_per_vertex;
    for _ in 0..extra {
        let a = rng.gen_range(0..size);
        let b = rng.gen_range(0..size);
        if a != b {
            builder.add_edge(members[a], members[b]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_flow::is_k_vertex_connected;

    #[test]
    fn planted_blocks_are_k_connected() {
        let config = PlantedConfig {
            k: 4,
            num_communities: 5,
            community_size: (8, 14),
            overlap: 2,
            chain_length: 2,
            background_vertices: 100,
            seed: 77,
            ..Default::default()
        };
        let planted = planted_communities(&config);
        assert_eq!(planted.communities.len(), 5);
        for block in &planted.communities {
            let sub = planted.graph.induced_subgraph(block);
            assert!(
                is_k_vertex_connected(&sub.graph, config.k as u32),
                "planted block {block:?} must be {}-connected",
                config.k
            );
        }
    }

    #[test]
    fn consecutive_blocks_overlap_by_the_requested_amount() {
        let config = PlantedConfig {
            k: 5,
            num_communities: 4,
            community_size: (9, 9),
            overlap: 3,
            chain_length: 4,
            background_vertices: 50,
            seed: 3,
            ..Default::default()
        };
        let planted = planted_communities(&config);
        for pair in planted.communities.windows(2) {
            let shared = pair[0].iter().filter(|v| pair[1].contains(v)).count();
            assert_eq!(shared, 3);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let config = PlantedConfig::default();
        let a = planted_communities(&config);
        let b = planted_communities(&config);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.k, 4);
    }

    #[test]
    fn works_without_background_or_overlap() {
        let config = PlantedConfig {
            k: 3,
            num_communities: 2,
            community_size: (6, 6),
            overlap: 0,
            chain_length: 1,
            background_vertices: 0,
            attachment_edges_per_community: 0,
            seed: 9,
            ..Default::default()
        };
        let planted = planted_communities(&config);
        assert_eq!(planted.communities.len(), 2);
        assert_eq!(planted.graph.num_vertices(), 12);
    }

    #[test]
    #[should_panic(expected = "community size must exceed k")]
    fn rejects_blocks_smaller_than_k() {
        let config = PlantedConfig {
            k: 10,
            community_size: (5, 6),
            ..Default::default()
        };
        let _ = planted_communities(&config);
    }
}
