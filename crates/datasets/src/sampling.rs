//! Vertex and edge sampling for the scalability study (§6.3).
//!
//! The paper varies the graph size by sampling 20%–100% of the vertices
//! (taking the induced subgraph) and varies the density by sampling 20%–100%
//! of the edges (keeping the incident vertices).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

/// Returns the subgraph induced by a uniformly random `fraction` of the
/// vertices. The result keeps the sampled vertices relabelled to `0..s`;
/// deterministic for a fixed seed. `fraction` is clamped to `[0, 1]`.
pub fn sample_vertices(g: &UndirectedGraph, fraction: f64, seed: u64) -> UndirectedGraph {
    let fraction = fraction.clamp(0.0, 1.0);
    let n = g.num_vertices();
    let target = ((n as f64) * fraction).round() as usize;
    if target >= n {
        return g.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vertices: Vec<VertexId> = (0..n as VertexId).collect();
    vertices.shuffle(&mut rng);
    vertices.truncate(target);
    vertices.sort_unstable();
    g.induced_subgraph(&vertices).graph
}

/// Returns a graph over the same vertex set containing a uniformly random
/// `fraction` of the edges. Vertices that lose all incident edges simply
/// become isolated (and are discarded by the k-core pruning of any consumer).
pub fn sample_edges(g: &UndirectedGraph, fraction: f64, seed: u64) -> UndirectedGraph {
    let fraction = fraction.clamp(0.0, 1.0);
    let m = g.num_edges();
    let target = ((m as f64) * fraction).round() as usize;
    if target >= m {
        return g.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    edges.shuffle(&mut rng);
    edges.truncate(target);
    let mut builder = GraphBuilder::new().with_vertices(g.num_vertices());
    builder.extend_edges(edges);
    builder.build()
}

/// The sampling fractions used by Fig. 13: 20%, 40%, 60%, 80%, 100%.
pub const SCALABILITY_FRACTIONS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::gnm;

    #[test]
    fn vertex_sampling_reduces_size_proportionally() {
        let g = gnm(1000, 5000, 17);
        let half = sample_vertices(&g, 0.5, 1);
        assert_eq!(half.num_vertices(), 500);
        assert!(half.num_edges() < g.num_edges());
        let full = sample_vertices(&g, 1.0, 1);
        assert_eq!(full, g);
        let none = sample_vertices(&g, 0.0, 1);
        assert_eq!(none.num_vertices(), 0);
    }

    #[test]
    fn edge_sampling_keeps_vertex_set() {
        let g = gnm(500, 3000, 23);
        let s = sample_edges(&g, 0.4, 2);
        assert_eq!(s.num_vertices(), g.num_vertices());
        assert_eq!(s.num_edges(), 1200);
        // Every sampled edge exists in the original graph.
        for (u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
        assert_eq!(sample_edges(&g, 1.0, 2), g);
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = gnm(300, 1500, 4);
        assert_eq!(sample_vertices(&g, 0.6, 9), sample_vertices(&g, 0.6, 9));
        assert_eq!(sample_edges(&g, 0.6, 9), sample_edges(&g, 0.6, 9));
        assert_ne!(sample_edges(&g, 0.6, 9), sample_edges(&g, 0.6, 10));
    }

    #[test]
    fn fractions_constant_matches_the_paper() {
        assert_eq!(SCALABILITY_FRACTIONS.len(), 5);
        assert_eq!(SCALABILITY_FRACTIONS[0], 0.2);
        assert_eq!(SCALABILITY_FRACTIONS[4], 1.0);
    }
}
