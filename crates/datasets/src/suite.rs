//! Stand-ins for the seven evaluation datasets of Table 1.
//!
//! The original graphs (Stanford, DBLP, Cnr, ND, Google, Youtube, Cit) are
//! SNAP downloads that cannot ship with the repository, so each dataset is
//! replaced by a deterministic synthetic graph with the same *structural
//! fingerprint* at a laptop-friendly scale:
//!
//! * a scale-free background (copying model for the web crawls, preferential
//!   attachment for the social/collaboration/citation graphs) that the k-core
//!   pruning largely removes, exactly like the periphery of the real graphs;
//! * chains of overlapping, guaranteed k-connected blocks planted at several
//!   connectivity levels, so that the number of k-VCCs decreases as `k` grows
//!   (the Fig. 11 trend) and the enumerator must perform overlapped
//!   partitions.
//!
//! Real SNAP files can be substituted at any time through
//! `kvcc_graph::io::read_snap_edge_list`; every benchmark harness accepts
//! either source.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

use crate::ba::barabasi_albert;
use crate::harary::harary;
use crate::webgraph::{copying_model, CopyingModelConfig};

/// How large the generated stand-ins are.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SuiteScale {
    /// A few hundred background vertices and low-connectivity blocks; meant
    /// for unit/integration tests (k values around 4–12).
    Tiny,
    /// A few thousand background vertices with blocks planted at connectivity
    /// 22–42, matching the paper's k = 20..40 sweeps. Default for benchmarks.
    #[default]
    Small,
    /// Tens of thousands of background vertices; for longer benchmark runs.
    Medium,
}

impl SuiteScale {
    fn background_vertices(self) -> usize {
        match self {
            SuiteScale::Tiny => 600,
            SuiteScale::Small => 6_000,
            SuiteScale::Medium => 30_000,
        }
    }

    fn chains_per_level(self) -> usize {
        match self {
            SuiteScale::Tiny => 1,
            SuiteScale::Small => 2,
            SuiteScale::Medium => 4,
        }
    }

    /// The connectivity levels at which dense blocks are planted.
    pub fn connectivity_levels(self) -> &'static [usize] {
        match self {
            SuiteScale::Tiny => &[6, 9, 12],
            SuiteScale::Small | SuiteScale::Medium => &[22, 30, 42],
        }
    }

    /// The k values the efficiency experiments sweep over at this scale
    /// (the paper uses 20, 25, 30, 35, 40).
    pub fn efficiency_k_values(self) -> &'static [u32] {
        match self {
            SuiteScale::Tiny => &[4, 6, 8, 10, 12],
            SuiteScale::Small | SuiteScale::Medium => &[20, 25, 30, 35, 40],
        }
    }

    /// The k values the effectiveness experiments (Figs. 7–9) sweep over.
    pub fn effectiveness_k_values(self) -> &'static [u32] {
        match self {
            SuiteScale::Tiny => &[3, 4, 5, 6],
            SuiteScale::Small | SuiteScale::Medium => &[15, 18, 21, 24],
        }
    }
}

/// The seven datasets of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SuiteDataset {
    /// `Stanford` web graph stand-in.
    Stanford,
    /// `DBLP` co-authorship stand-in.
    Dblp,
    /// `Cnr` web crawl stand-in (the densest dataset).
    Cnr,
    /// `ND` (Notre Dame) web graph stand-in.
    NotreDame,
    /// `Google` web graph stand-in.
    Google,
    /// `Youtube` social network stand-in.
    Youtube,
    /// `Cit` (patent citation) stand-in.
    Cit,
}

/// Per-dataset generation knobs.
struct DatasetProfile {
    name: &'static str,
    web_like: bool,
    background_degree: usize,
    copy_probability: f64,
    chain_multiplier: f64,
    /// Overlapping blocks per planted chain (longer chains ⇒ more partitions).
    blocks_per_chain: usize,
    seed: u64,
}

impl SuiteDataset {
    /// All seven datasets in the order of Table 1.
    pub fn all() -> [SuiteDataset; 7] {
        [
            SuiteDataset::Stanford,
            SuiteDataset::Dblp,
            SuiteDataset::Cnr,
            SuiteDataset::NotreDame,
            SuiteDataset::Google,
            SuiteDataset::Youtube,
            SuiteDataset::Cit,
        ]
    }

    /// The four datasets the paper uses for the effectiveness study
    /// (Figs. 7–9): Youtube, DBLP, Google and Cnr.
    pub fn effectiveness_subset() -> [SuiteDataset; 4] {
        [
            SuiteDataset::Youtube,
            SuiteDataset::Dblp,
            SuiteDataset::Google,
            SuiteDataset::Cnr,
        ]
    }

    /// The six datasets the paper uses for the efficiency study (Fig. 10).
    pub fn efficiency_subset() -> [SuiteDataset; 6] {
        [
            SuiteDataset::Stanford,
            SuiteDataset::Dblp,
            SuiteDataset::NotreDame,
            SuiteDataset::Google,
            SuiteDataset::Cit,
            SuiteDataset::Cnr,
        ]
    }

    fn profile(self) -> DatasetProfile {
        match self {
            SuiteDataset::Stanford => DatasetProfile {
                name: "Stanford",
                web_like: true,
                background_degree: 8,
                copy_probability: 0.65,
                chain_multiplier: 1.2,
                blocks_per_chain: 3,
                seed: 0x51,
            },
            SuiteDataset::Dblp => DatasetProfile {
                name: "DBLP",
                web_like: false,
                background_degree: 3,
                copy_probability: 0.0,
                chain_multiplier: 1.0,
                blocks_per_chain: 4,
                seed: 0xD8,
            },
            SuiteDataset::Cnr => DatasetProfile {
                name: "Cnr",
                web_like: true,
                background_degree: 10,
                copy_probability: 0.75,
                chain_multiplier: 1.5,
                blocks_per_chain: 3,
                seed: 0xC2,
            },
            SuiteDataset::NotreDame => DatasetProfile {
                name: "ND",
                web_like: true,
                background_degree: 5,
                copy_probability: 0.6,
                chain_multiplier: 0.8,
                blocks_per_chain: 2,
                seed: 0x4D,
            },
            SuiteDataset::Google => DatasetProfile {
                name: "Google",
                web_like: true,
                background_degree: 6,
                copy_probability: 0.65,
                chain_multiplier: 1.2,
                blocks_per_chain: 5,
                seed: 0x60,
            },
            SuiteDataset::Youtube => DatasetProfile {
                name: "Youtube",
                web_like: false,
                background_degree: 4,
                copy_probability: 0.0,
                chain_multiplier: 0.6,
                blocks_per_chain: 3,
                seed: 0x17,
            },
            SuiteDataset::Cit => DatasetProfile {
                name: "Cit",
                web_like: false,
                background_degree: 5,
                copy_probability: 0.0,
                chain_multiplier: 1.0,
                blocks_per_chain: 2,
                seed: 0xC1,
            },
        }
    }

    /// The dataset name as it appears in the paper's tables and figures.
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// Generates the stand-in graph at the requested scale. Deterministic.
    pub fn generate(self, scale: SuiteScale) -> UndirectedGraph {
        let profile = self.profile();
        let mut rng = StdRng::seed_from_u64(profile.seed ^ 0xBEEF_0000 ^ scale_tag(scale));

        // 1. Scale-free background.
        let n_bg = scale.background_vertices();
        let background = if profile.web_like {
            copying_model(&CopyingModelConfig {
                num_vertices: n_bg,
                links_per_vertex: profile.background_degree,
                copy_probability: profile.copy_probability,
                seed: profile.seed,
            })
        } else {
            barabasi_albert(n_bg, profile.background_degree, profile.seed)
        };
        let mut builder = GraphBuilder::new().with_vertices(n_bg);
        builder.extend_edges(background.edges());

        // 2. Planted chains of overlapping k-connected blocks.
        let mut next = n_bg as VertexId;
        for (level_idx, &level) in scale.connectivity_levels().iter().enumerate() {
            let chains = ((scale.chains_per_level() as f64) * profile.chain_multiplier)
                .round()
                .max(1.0) as usize;
            let mut chain_ranges: Vec<(VertexId, VertexId)> = Vec::with_capacity(chains);
            for chain in 0..chains {
                let start = next;
                next = add_chain(
                    &mut builder,
                    &mut rng,
                    next,
                    n_bg,
                    level,
                    profile.blocks_per_chain,
                    (level + 6, level * 2), // block size range
                    level / 2,              // overlap between consecutive blocks
                    (level_idx + chain) as u64,
                );
                chain_ranges.push((start, next));
            }
            // 3. Weak bundles: consecutive chains of the same level are joined
            // by a handful of edges (fewer than the level). The k-core keeps
            // both chains in one component, but both the k-ECC and the k-VCC
            // models cut through the bundle — this reproduces the G3/G4 seam
            // of Fig. 1 at dataset scale and is what makes the k-CC and k-ECC
            // columns of Figs. 7-9 differ.
            let bundle = level / 4 + 2;
            for pair in chain_ranges.windows(2) {
                for _ in 0..bundle {
                    let a = rng.gen_range(pair[0].0..pair[0].1);
                    let b = rng.gen_range(pair[1].0..pair[1].1);
                    builder.add_edge(a, b);
                }
            }
        }
        builder.build()
    }
}

fn scale_tag(scale: SuiteScale) -> u64 {
    match scale {
        SuiteScale::Tiny => 0x1000,
        SuiteScale::Small => 0x2000,
        SuiteScale::Medium => 0x3000,
    }
}

/// Adds one chain of `blocks` overlapping `level`-connected blocks, returning
/// the next free vertex id.
#[allow(clippy::too_many_arguments)]
fn add_chain(
    builder: &mut GraphBuilder,
    rng: &mut StdRng,
    mut next: VertexId,
    background_vertices: usize,
    level: usize,
    blocks: usize,
    size_range: (usize, usize),
    overlap: usize,
    _salt: u64,
) -> VertexId {
    let mut previous_tail: Vec<VertexId> = Vec::new();
    for position in 0..blocks {
        let size = rng.gen_range(size_range.0..=size_range.1);
        let shared: Vec<VertexId> = if position == 0 {
            Vec::new()
        } else {
            previous_tail
                .iter()
                .copied()
                .take(overlap.min(level.saturating_sub(1)))
                .collect()
        };
        let fresh = size - shared.len();
        let mut members = shared;
        members.extend((0..fresh).map(|i| next + i as VertexId));
        next += fresh as VertexId;

        // Harary skeleton guarantees `level`-connectivity; extra random edges
        // give the block a realistic internal density.
        let skeleton = harary(level, members.len());
        for (a, b) in skeleton.edges() {
            builder.add_edge(members[a as usize], members[b as usize]);
        }
        for _ in 0..members.len() * 2 {
            let a = rng.gen_range(0..members.len());
            let b = rng.gen_range(0..members.len());
            if a != b {
                builder.add_edge(members[a], members[b]);
            }
        }
        // Loose attachment to the background.
        if background_vertices > 0 {
            for _ in 0..3 {
                let inside = members[rng.gen_range(0..members.len())];
                let outside = rng.gen_range(0..background_vertices as VertexId);
                builder.add_edge(inside, outside);
            }
        }
        previous_tail = members[members.len().saturating_sub(level)..].to_vec();
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_generates_at_tiny_scale() {
        for dataset in SuiteDataset::all() {
            let g = dataset.generate(SuiteScale::Tiny);
            assert!(g.num_vertices() > 600, "{} too small", dataset.name());
            assert!(
                g.num_edges() > g.num_vertices(),
                "{} too sparse",
                dataset.name()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SuiteDataset::Dblp.generate(SuiteScale::Tiny);
        let b = SuiteDataset::Dblp.generate(SuiteScale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn datasets_differ_from_each_other() {
        let a = SuiteDataset::Stanford.generate(SuiteScale::Tiny);
        let b = SuiteDataset::Cnr.generate(SuiteScale::Tiny);
        assert_ne!(a, b);
        assert_ne!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn planted_blocks_survive_kcore_pruning() {
        // At every planted connectivity level, the k-core for k = level must be
        // non-empty (the blocks guarantee it).
        let g = SuiteDataset::Google.generate(SuiteScale::Tiny);
        for &level in SuiteScale::Tiny.connectivity_levels() {
            let core = kvcc_graph::kcore::k_core_vertices(&g, level);
            assert!(
                core.len() > level,
                "k-core at level {level} should contain the planted blocks"
            );
        }
    }

    #[test]
    fn names_and_subsets() {
        assert_eq!(SuiteDataset::all().len(), 7);
        assert_eq!(SuiteDataset::efficiency_subset().len(), 6);
        assert_eq!(SuiteDataset::effectiveness_subset().len(), 4);
        assert_eq!(SuiteDataset::NotreDame.name(), "ND");
        assert_eq!(
            SuiteScale::Small.efficiency_k_values(),
            &[20, 25, 30, 35, 40]
        );
        assert_eq!(SuiteScale::default(), SuiteScale::Small);
    }
}
