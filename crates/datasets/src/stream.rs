//! Deterministic SNAP-scale edge-list generation that streams to disk.
//!
//! The ingestion bench needs a million-edge graph, but the whole point of
//! the streaming loader is that such graphs should never have to fit in a
//! `Vec<(u64, u64)>` first. This generator therefore writes the edge list
//! line by line through a `BufWriter` in O(1) memory: a ring of dense
//! communities (each a circulant, so every community is provably
//! well-connected, the same trick the planted generator plays with Harary
//! skeletons), plus seeded pseudo-random intra-community chords and
//! inter-community bridges. Everything derives from `splitmix64` streams
//! keyed by `(seed, community)`, so the output is byte-for-byte reproducible
//! and independent of write order or platform.
//!
//! A second entry point, [`StreamConfig::edges`], yields the same edges as
//! an iterator so tests (and the in-memory differential path of the bench)
//! can consume the graph without touching the filesystem.

use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Shape of a streamed community-ring graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamConfig {
    /// Number of communities arranged in a ring.
    pub communities: usize,
    /// Vertices per community.
    pub community_size: usize,
    /// Each vertex connects to its `s` nearest ring neighbours on each side
    /// within its community (circulant skeleton, degree `2s`).
    pub skeleton_span: usize,
    /// Seeded random chords added inside each community.
    pub extra_intra: usize,
    /// Seeded random bridges from each community to the next one on the ring.
    pub bridges: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl StreamConfig {
    /// The ingestion-bench preset: ~1.06M edge lines over ~131k vertices
    /// (256 communities × 512 vertices; circulant span 4 ⇒ 4 skeleton
    /// edges per vertex, plus 2048 chords and 64 bridges per community).
    pub fn million() -> Self {
        StreamConfig {
            communities: 256,
            community_size: 512,
            skeleton_span: 4,
            extra_intra: 2048,
            bridges: 64,
            seed: 0x1cde_2019,
        }
    }

    /// A ~3k-edge miniature of the same shape for tests.
    pub fn tiny() -> Self {
        StreamConfig {
            communities: 8,
            community_size: 64,
            skeleton_span: 2,
            extra_intra: 32,
            bridges: 8,
            seed: 7,
        }
    }

    /// Total vertex count.
    pub fn num_vertices(&self) -> usize {
        self.communities * self.community_size
    }

    /// Number of edge **lines** the generator emits (before the loader's
    /// deduplication; the random chords may repeat skeleton edges).
    pub fn num_edge_lines(&self) -> usize {
        self.communities * (self.community_size * self.skeleton_span + self.extra_intra)
            + if self.communities > 1 {
                self.communities * self.bridges
            } else {
                0
            }
    }

    /// All edge lines, in emission order, as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let cfg = *self;
        (0..self.communities).flat_map(move |c| CommunityEdges::new(cfg, c))
    }

    /// Streams the edge list to `writer`, one `u v` line per edge, with a
    /// `#` header describing the shape. O(1) memory regardless of size.
    pub fn write<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        writeln!(
            w,
            "# streamed community ring: {} communities x {} vertices, {} edge lines, seed {}",
            self.communities,
            self.community_size,
            self.num_edge_lines(),
            self.seed
        )?;
        for (u, v) in self.edges() {
            writeln!(w, "{u}\t{v}")?;
        }
        w.flush()
    }

    /// Streams the edge list to a file. See [`StreamConfig::write`].
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.write(std::fs::File::create(path)?)
    }
}

/// `splitmix64` — the tiny, high-quality mixing step used to derive all
/// pseudo-randomness here without a dependency on the `rand` shim.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

/// Edge lines of one community: circulant skeleton, then seeded chords,
/// then seeded bridges to the next community on the ring.
struct CommunityEdges {
    cfg: StreamConfig,
    community: usize,
    /// PRNG state, keyed by `(seed, community)` so communities are
    /// independent streams.
    rng: u64,
    stage: usize,
    emitted_in_stage: usize,
}

impl CommunityEdges {
    fn new(cfg: StreamConfig, community: usize) -> Self {
        let mut rng = cfg.seed ^ ((community as u64) << 32) ^ 0x9e37_79b9;
        splitmix64(&mut rng);
        CommunityEdges {
            cfg,
            community,
            rng,
            stage: 0,
            emitted_in_stage: 0,
        }
    }

    fn next_random(&mut self) -> u64 {
        splitmix64(&mut self.rng);
        self.rng
    }

    fn base(&self) -> u64 {
        (self.community * self.cfg.community_size) as u64
    }
}

impl Iterator for CommunityEdges {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let size = self.cfg.community_size as u64;
        loop {
            match self.stage {
                // Stage 0: circulant skeleton — vertex i to i+d for
                // d in 1..=span (indices mod community size).
                0 => {
                    let per_vertex = self.cfg.skeleton_span;
                    let total = self.cfg.community_size * per_vertex;
                    if self.emitted_in_stage >= total {
                        self.stage = 1;
                        self.emitted_in_stage = 0;
                        continue;
                    }
                    let i = (self.emitted_in_stage / per_vertex) as u64;
                    let d = (self.emitted_in_stage % per_vertex) as u64 + 1;
                    self.emitted_in_stage += 1;
                    return Some((self.base() + i, self.base() + (i + d) % size));
                }
                // Stage 1: seeded random chords inside the community
                // (self-pairs skipped by redrawing deterministically).
                1 => {
                    if self.emitted_in_stage >= self.cfg.extra_intra {
                        self.stage = 2;
                        self.emitted_in_stage = 0;
                        continue;
                    }
                    self.emitted_in_stage += 1;
                    let mut a = self.next_random() % size;
                    let mut b = self.next_random() % size;
                    while a == b {
                        b = self.next_random() % size;
                        a = self.next_random() % size;
                    }
                    return Some((self.base() + a, self.base() + b));
                }
                // Stage 2: bridges to the next community on the ring.
                2 => {
                    if self.cfg.communities <= 1 || self.emitted_in_stage >= self.cfg.bridges {
                        self.stage = 3;
                        continue;
                    }
                    self.emitted_in_stage += 1;
                    let next_base = (((self.community + 1) % self.cfg.communities)
                        * self.cfg.community_size) as u64;
                    let a = self.next_random() % size;
                    let b = self.next_random() % size;
                    return Some((self.base() + a, next_base + b));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::{GraphLoader, StreamingEdgeListLoader};

    #[test]
    fn edge_count_matches_the_formula_and_is_deterministic() {
        let cfg = StreamConfig::tiny();
        let edges: Vec<_> = cfg.edges().collect();
        assert_eq!(edges.len(), cfg.num_edge_lines());
        assert_eq!(edges, cfg.edges().collect::<Vec<_>>());
        // A different seed produces a different chord set.
        let other = StreamConfig { seed: 8, ..cfg };
        assert_ne!(edges, other.edges().collect::<Vec<_>>());
    }

    #[test]
    fn written_file_parses_to_a_connected_community_ring() {
        let cfg = StreamConfig::tiny();
        let path =
            std::env::temp_dir().join(format!("kvcc_stream_test_{}.txt", std::process::id()));
        cfg.write_file(&path).unwrap();
        let loaded = StreamingEdgeListLoader::new().load_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.graph.num_vertices(), cfg.num_vertices());
        assert!(loaded.graph.num_edges() > 0);
        assert_eq!(loaded.stats.self_loops, 0, "generator never emits loops");
        // The ring of bridges makes the whole graph one connected component.
        let components = kvcc_graph::traversal::connected_components(&loaded.graph);
        assert_eq!(components.len(), 1);
        // Skeleton guarantees minimum degree 2 * span within communities.
        let min_degree = (0..loaded.graph.num_vertices() as u32)
            .map(|v| loaded.graph.degree(v))
            .min()
            .unwrap();
        assert!(min_degree >= 2 * cfg.skeleton_span);
    }

    #[test]
    fn million_preset_is_snap_scale() {
        let cfg = StreamConfig::million();
        assert!(cfg.num_edge_lines() >= 1_000_000);
        assert!(cfg.num_vertices() >= 100_000);
    }
}
