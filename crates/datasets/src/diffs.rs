//! Deterministic edge-update streams for the mutable-graph workload.
//!
//! The dynamic experiments replay a sequence of batched edge updates against
//! a loaded graph and compare incremental index maintenance
//! (`ConnectivityIndex::apply_updates`) with full rebuilds. The stream
//! generator here is **replay-aware**: it tracks the evolving graph in a
//! [`DeltaGraph`] mirror while generating, so every emitted delete removes an
//! edge that is actually present at that point of the replay and every
//! emitted insert adds a pair that is actually absent. Redundant no-op
//! updates never occur by construction (asserted in the tests), which keeps
//! the measured repair work honest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kvcc_graph::{CsrGraph, DeltaGraph, EdgeUpdate, GraphView, VertexId};

/// Shape of a generated update stream. Deterministic for a fixed `seed`.
#[derive(Clone, Copy, Debug)]
pub struct DiffStreamConfig {
    /// Number of batches in the stream.
    pub batches: usize,
    /// Updates per batch (a batch may come out shorter on graphs too small
    /// or too dense to satisfy it — see [`diff_stream`]).
    pub batch_size: usize,
    /// Fraction of each batch that deletes a present edge; the rest inserts
    /// absent pairs. Clamped to `[0, 1]`.
    pub delete_fraction: f64,
    /// Fraction of the inserts drawn by triadic closure — the new edge joins
    /// a vertex to one of its current two-hop neighbours, the way real
    /// social and collaboration networks grow. Closure inserts never leave
    /// the endpoint's connected component, which keeps the incremental
    /// repair's blast radius bounded by that component; the remaining
    /// `1 - locality` inserts pick uniform absent pairs (and may bridge
    /// components). Clamped to `[0, 1]`.
    pub locality: f64,
    /// RNG seed; two streams with equal configs are identical.
    pub seed: u64,
}

impl Default for DiffStreamConfig {
    fn default() -> Self {
        DiffStreamConfig {
            batches: 8,
            batch_size: 32,
            delete_fraction: 0.3,
            locality: 0.0,
            seed: 0xD1FF,
        }
    }
}

/// How many random draws one update slot may burn before it is abandoned.
/// Prevents livelock on degenerate graphs (empty ones have no edge to
/// delete, near-complete ones no pair to insert).
const ATTEMPTS_PER_SLOT: usize = 64;

/// Generates a batched edge-update stream over `graph`, replaying its own
/// effects while generating (see the module docs). Every update is
/// guaranteed non-redundant at its position in the stream: deletes hit
/// present edges, inserts create absent ones, and no update is a self-loop.
///
/// Batches may be shorter than [`DiffStreamConfig::batch_size`] when the
/// evolving graph cannot supply the requested operation (nothing left to
/// delete, or no absent pair found within the attempt budget).
pub fn diff_stream<G: GraphView>(graph: &G, config: &DiffStreamConfig) -> Vec<Vec<EdgeUpdate>> {
    let n = graph.num_vertices();
    let mut stream = Vec::with_capacity(config.batches);
    if n < 2 {
        stream.resize(config.batches, Vec::new());
        return stream;
    }
    let delete_fraction = config.delete_fraction.clamp(0.0, 1.0);
    let locality = config.locality.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut mirror = DeltaGraph::new(CsrGraph::from_view(graph));
    for _ in 0..config.batches {
        let mut batch = Vec::with_capacity(config.batch_size);
        for _ in 0..config.batch_size {
            let want_delete = rng.gen::<f64>() < delete_fraction;
            let update = if want_delete {
                pick_present_edge(&mirror, n, &mut rng).map(|(u, v)| EdgeUpdate::delete(u, v))
            } else {
                let pair = if rng.gen::<f64>() < locality {
                    pick_closure_pair(&mirror, n, &mut rng)
                } else {
                    pick_absent_pair(&mirror, n, &mut rng)
                };
                pair.map(|(u, v)| EdgeUpdate::insert(u, v))
            };
            if let Some(update) = update {
                let applied = mirror.apply_update(update).expect("endpoints in range");
                debug_assert!(applied, "generated update must not be redundant");
                batch.push(update);
            }
        }
        stream.push(batch);
    }
    stream
}

/// A uniformly random live edge of the mirror, or `None` when the attempt
/// budget runs out (e.g. the graph has become empty).
fn pick_present_edge(
    mirror: &DeltaGraph,
    n: usize,
    rng: &mut StdRng,
) -> Option<(VertexId, VertexId)> {
    for _ in 0..ATTEMPTS_PER_SLOT {
        let u = rng.gen_range(0..n as VertexId);
        let degree = mirror.degree(u);
        if degree == 0 {
            continue;
        }
        let v = mirror.neighbors(u)[rng.gen_range(0..degree)];
        return Some((u, v));
    }
    None
}

/// A random triadic-closure pair: a vertex and one of its current two-hop
/// neighbours it is not yet adjacent to. Such a pair always lies inside one
/// connected component of the mirror. `None` when the attempt budget runs
/// out (e.g. every two-hop neighbourhood is already a clique).
fn pick_closure_pair(
    mirror: &DeltaGraph,
    n: usize,
    rng: &mut StdRng,
) -> Option<(VertexId, VertexId)> {
    for _ in 0..ATTEMPTS_PER_SLOT {
        let u = rng.gen_range(0..n as VertexId);
        let degree = mirror.degree(u);
        if degree == 0 {
            continue;
        }
        let w = mirror.neighbors(u)[rng.gen_range(0..degree)];
        let w_degree = mirror.degree(w);
        if w_degree == 0 {
            continue;
        }
        let v = mirror.neighbors(w)[rng.gen_range(0..w_degree)];
        if u == v || mirror.neighbors(u).binary_search(&v).is_ok() {
            continue;
        }
        return Some((u, v));
    }
    None
}

/// A uniformly random non-adjacent pair, or `None` when the attempt budget
/// runs out (e.g. the graph has become complete).
fn pick_absent_pair(
    mirror: &DeltaGraph,
    n: usize,
    rng: &mut StdRng,
) -> Option<(VertexId, VertexId)> {
    for _ in 0..ATTEMPTS_PER_SLOT {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v || mirror.neighbors(u).binary_search(&v).is_ok() {
            continue;
        }
        return Some((u, v));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planted::{planted_communities, PlantedConfig};
    use kvcc_graph::UndirectedGraph;

    fn planted() -> UndirectedGraph {
        planted_communities(&PlantedConfig {
            num_communities: 3,
            background_vertices: 60,
            seed: 5,
            ..PlantedConfig::default()
        })
        .graph
    }

    #[test]
    fn streams_are_deterministic() {
        let g = planted();
        let config = DiffStreamConfig::default();
        assert_eq!(diff_stream(&g, &config), diff_stream(&g, &config));
        let reseeded = DiffStreamConfig { seed: 1, ..config };
        assert_ne!(diff_stream(&g, &config), diff_stream(&g, &reseeded));
    }

    #[test]
    fn no_update_in_a_stream_is_redundant() {
        let g = planted();
        let stream = diff_stream(
            &g,
            &DiffStreamConfig {
                batches: 6,
                batch_size: 40,
                delete_fraction: 0.5,
                locality: 0.4,
                seed: 99,
            },
        );
        assert_eq!(stream.len(), 6);
        let mut replay = DeltaGraph::new(CsrGraph::from_view(&g));
        for batch in &stream {
            assert!(!batch.is_empty());
            let stats = replay.apply(batch).unwrap();
            assert_eq!(
                stats.redundant, 0,
                "the generator promises non-redundant updates"
            );
            assert_eq!(stats.inserted + stats.deleted, batch.len());
        }
    }

    #[test]
    fn full_locality_inserts_never_bridge_components() {
        // Two disjoint triangles plus an extra vertex each: with
        // `locality: 1.0`, every insert must stay inside the component it
        // started in — the two components can never merge.
        let g = UndirectedGraph::from_edges(
            8,
            vec![
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (4, 5),
                (5, 6),
                (4, 6),
                (6, 7),
            ],
        )
        .unwrap();
        let component = |v: VertexId| usize::from(v >= 4);
        let stream = diff_stream(
            &g,
            &DiffStreamConfig {
                batches: 4,
                batch_size: 12,
                delete_fraction: 0.0,
                locality: 1.0,
                seed: 21,
            },
        );
        let mut total = 0usize;
        for batch in &stream {
            for update in batch {
                assert_eq!(
                    component(update.u),
                    component(update.v),
                    "closure insert {update:?} bridged the two components"
                );
                total += 1;
            }
        }
        assert!(total > 0, "the closure picker must produce inserts");
    }

    #[test]
    fn degenerate_graphs_terminate() {
        // No vertices / one vertex: empty batches, no livelock.
        let empty = UndirectedGraph::from_edges(0, Vec::new()).unwrap();
        let config = DiffStreamConfig::default();
        assert!(diff_stream(&empty, &config).iter().all(Vec::is_empty));
        // A complete graph cannot take inserts; deletes still flow.
        let k4 =
            UndirectedGraph::from_edges(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
                .unwrap();
        let stream = diff_stream(
            &k4,
            &DiffStreamConfig {
                batches: 2,
                batch_size: 4,
                delete_fraction: 1.0,
                locality: 0.0,
                seed: 3,
            },
        );
        let total: usize = stream.iter().map(Vec::len).sum();
        assert!(total <= 6, "cannot delete more edges than exist");
    }
}
