//! Erdős–Rényi random graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

/// G(n, p): every pair of vertices is connected independently with
/// probability `p`. Deterministic for a fixed `seed`.
///
/// Uses the geometric skipping technique, so the cost is proportional to the
/// number of generated edges rather than to `n²`.
pub fn gnp(n: usize, p: f64, seed: u64) -> UndirectedGraph {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be within [0, 1]"
    );
    let mut builder = GraphBuilder::new().with_vertices(n);
    if n < 2 || p <= 0.0 {
        return builder.build();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                builder.add_edge(u, v);
            }
        }
        return builder.build();
    }
    // Iterate over the implicit list of all pairs, skipping geometrically.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while (v as usize) < n {
        let r: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && (v as usize) < n {
            w -= v;
            v += 1;
        }
        if (v as usize) < n {
            builder.add_edge(w as VertexId, v as VertexId);
        }
    }
    builder.build()
}

/// G(n, m): exactly `m` distinct edges chosen uniformly at random (or every
/// possible edge when `m` exceeds the number of pairs).
pub fn gnm(n: usize, m: usize, seed: u64) -> UndirectedGraph {
    let mut builder = GraphBuilder::new().with_vertices(n);
    if n < 2 {
        return builder.build();
    }
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(target);
    while chosen.len() < target {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_deterministic_and_reasonably_sized() {
        let a = gnp(200, 0.05, 7);
        let b = gnp(200, 0.05, 7);
        assert_eq!(a, b);
        assert_eq!(a.num_vertices(), 200);
        // Expectation is ~ 0.05 * C(200,2) = 995 edges; allow a wide margin.
        assert!(
            a.num_edges() > 600 && a.num_edges() < 1400,
            "got {}",
            a.num_edges()
        );
        let c = gnp(200, 0.05, 8);
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
        assert_eq!(gnp(1, 0.5, 1).num_vertices(), 1);
        assert_eq!(gnp(0, 0.5, 1).num_vertices(), 0);
    }

    #[test]
    fn gnm_has_exactly_m_edges() {
        let g = gnm(100, 250, 3);
        assert_eq!(g.num_edges(), 250);
        assert_eq!(g.num_vertices(), 100);
        // Asking for more edges than possible saturates at the complete graph.
        let g = gnm(10, 1000, 3);
        assert_eq!(g.num_edges(), 45);
        assert_eq!(gnm(1, 5, 3).num_edges(), 0);
    }

    #[test]
    fn gnm_is_deterministic() {
        assert_eq!(gnm(64, 128, 42), gnm(64, 128, 42));
    }
}
