//! Web-crawl-like graphs via the copying model.
//!
//! The copying model (Kleinberg et al.) grows a graph by letting every new
//! page either copy the out-links of an existing "prototype" page or link to
//! random pages. It produces heavy-tailed degrees **and** many dense bipartite
//! cores — the structural fingerprint of the web graphs (Stanford, Cnr, ND,
//! Google) evaluated in the paper, and the reason those graphs contain large
//! k-VCCs for large k.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kvcc_graph::{GraphBuilder, UndirectedGraph, VertexId};

/// Parameters of the copying model.
#[derive(Clone, Copy, Debug)]
pub struct CopyingModelConfig {
    /// Number of vertices to generate.
    pub num_vertices: usize,
    /// Out-links created by each new vertex.
    pub links_per_vertex: usize,
    /// Probability of copying each link from the prototype instead of linking
    /// uniformly at random.
    pub copy_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CopyingModelConfig {
    fn default() -> Self {
        CopyingModelConfig {
            num_vertices: 10_000,
            links_per_vertex: 6,
            copy_probability: 0.6,
            seed: 0xC0FFEE,
        }
    }
}

/// Generates a copying-model graph (treated as undirected).
pub fn copying_model(config: &CopyingModelConfig) -> UndirectedGraph {
    let n = config.num_vertices;
    let d = config.links_per_vertex.max(1);
    let mut builder = GraphBuilder::new().with_vertices(n);
    if n == 0 {
        return builder.build();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let seed_size = (d + 1).min(n);
    let mut out_links: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            builder.add_edge(u as VertexId, v as VertexId);
            out_links[u].push(v as VertexId);
            out_links[v].push(u as VertexId);
        }
    }
    for v in seed_size..n {
        let prototype = rng.gen_range(0..v);
        let mut targets: Vec<VertexId> = Vec::with_capacity(d);
        for slot in 0..d {
            let copy = rng.gen_bool(config.copy_probability.clamp(0.0, 1.0));
            let target = if copy && slot < out_links[prototype].len() {
                out_links[prototype][slot]
            } else {
                rng.gen_range(0..v) as VertexId
            };
            if target as usize != v && !targets.contains(&target) {
                targets.push(target);
            }
        }
        for &t in &targets {
            builder.add_edge(v as VertexId, t);
        }
        out_links[v] = targets;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copying_model_is_deterministic() {
        let cfg = CopyingModelConfig {
            num_vertices: 500,
            ..Default::default()
        };
        assert_eq!(copying_model(&cfg), copying_model(&cfg));
    }

    #[test]
    fn produces_heavy_tail_and_triangles() {
        let cfg = CopyingModelConfig {
            num_vertices: 3000,
            links_per_vertex: 5,
            copy_probability: 0.7,
            seed: 99,
        };
        let g = copying_model(&cfg);
        assert_eq!(g.num_vertices(), 3000);
        assert!(g.max_degree() as f64 > 4.0 * g.average_degree());
        // Copying creates shared neighbourhoods, hence triangles.
        assert!(kvcc_graph::metrics::triangle_count(&g) > 100);
    }

    #[test]
    fn tiny_inputs() {
        let cfg = CopyingModelConfig {
            num_vertices: 0,
            ..Default::default()
        };
        assert_eq!(copying_model(&cfg).num_vertices(), 0);
        let cfg = CopyingModelConfig {
            num_vertices: 3,
            links_per_vertex: 2,
            ..Default::default()
        };
        let g = copying_model(&cfg);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }
}
