//! Global minimum edge cut (Stoer–Wagner).
//!
//! The paper discusses this algorithm in §4 as a candidate for finding cuts
//! and explains why it cannot be used for *vertex* cuts; it is, however,
//! exactly what the k-ECC baseline needs. The implementation below supports
//! early termination: as soon as any cut-of-the-phase weighs less than the
//! `early_stop` threshold it is returned, because every cut of the contracted
//! graph is a valid cut of the original graph.
//!
//! Uses a dense weight matrix, so it is intended for the moderate component
//! sizes that survive k-core pruning, not for raw web-scale graphs.

use kvcc_graph::{GraphView, VertexId};

/// Result of a global minimum edge cut computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeCut {
    /// Total weight (= number of edges for an unweighted graph) crossing the
    /// cut.
    pub weight: u64,
    /// The vertices on one side of the cut (ids of the input graph).
    pub side: Vec<VertexId>,
}

/// Computes a global minimum edge cut of a connected graph.
///
/// Returns `None` when the graph has fewer than two vertices (no cut exists).
/// When `early_stop` is `Some(t)`, the first cut-of-the-phase with weight
/// strictly below `t` is returned immediately; the result is then a valid cut
/// of weight `< t` but not necessarily minimum.
pub fn global_min_edge_cut<G: GraphView>(g: &G, early_stop: Option<u64>) -> Option<EdgeCut> {
    let n = g.num_vertices();
    if n < 2 {
        return None;
    }

    // Dense weight matrix between supernodes; merged[i] lists the original
    // vertices contracted into supernode i.
    let mut weight = vec![vec![0u64; n]; n];
    for (u, v) in g.edges() {
        weight[u as usize][v as usize] += 1;
        weight[v as usize][u as usize] += 1;
    }
    let mut merged: Vec<Vec<VertexId>> = (0..n as VertexId).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best: Option<EdgeCut> = None;

    while active.len() > 1 {
        // One "minimum cut phase" (maximum adjacency ordering).
        let mut in_a = vec![false; n];
        let mut weights_to_a = vec![0u64; n];
        let mut order: Vec<usize> = Vec::with_capacity(active.len());

        for _ in 0..active.len() {
            // Select the most tightly connected remaining supernode.
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weights_to_a[v])
                .expect("there is always a remaining supernode");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weights_to_a[v] += weight[next][v];
                }
            }
        }

        let t = *order.last().expect("phase order is non-empty");
        let s = order[order.len() - 2];
        let cut_of_phase = weights_to_a[t];

        let candidate = EdgeCut {
            weight: cut_of_phase,
            side: merged[t].clone(),
        };
        let improves = best
            .as_ref()
            .map(|b| candidate.weight < b.weight)
            .unwrap_or(true);
        if improves {
            best = Some(candidate);
        }
        if let (Some(threshold), Some(b)) = (early_stop, &best) {
            if b.weight < threshold {
                return best;
            }
        }

        // Contract t into s.
        for &v in &active {
            if v != s && v != t {
                weight[s][v] += weight[t][v];
                weight[v][s] = weight[s][v];
            }
        }
        let t_members = std::mem::take(&mut merged[t]);
        merged[s].extend(t_members);
        active.retain(|&v| v != t);
    }

    best.map(|mut cut| {
        cut.side.sort_unstable();
        cut
    })
}

/// The global edge connectivity `λ(G)` of a connected graph (0 for graphs with
/// fewer than two vertices or disconnected graphs).
pub fn edge_connectivity<G: GraphView>(g: &G) -> u64 {
    if g.num_vertices() < 2 {
        return 0;
    }
    if !kvcc_graph::traversal::is_connected(g) {
        return 0;
    }
    global_min_edge_cut(g, None).map(|c| c.weight).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn edge_connectivity_of_classic_graphs() {
        assert_eq!(edge_connectivity(&complete(5)), 4);
        let cycle = UndirectedGraph::from_edges(6, (0..6u32).map(|i| (i, (i + 1) % 6))).unwrap();
        assert_eq!(edge_connectivity(&cycle), 2);
        let path = UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(edge_connectivity(&path), 1);
        assert_eq!(edge_connectivity(&UndirectedGraph::new(1)), 0);
        let disconnected = UndirectedGraph::from_edges(4, vec![(0, 1), (2, 3)]).unwrap();
        assert_eq!(edge_connectivity(&disconnected), 0);
    }

    #[test]
    fn cut_side_is_a_proper_subset() {
        // Two K4 blocks joined by a single bridge edge.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let g = UndirectedGraph::from_edges(8, edges).unwrap();
        let cut = global_min_edge_cut(&g, None).unwrap();
        assert_eq!(cut.weight, 1);
        assert!(cut.side.len() == 4 || cut.side.len() == 4);
        assert!(!cut.side.is_empty() && cut.side.len() < 8);
        // The side must be one of the two blocks.
        let side: Vec<u32> = cut.side.clone();
        assert!(side == vec![0, 1, 2, 3] || side == vec![4, 5, 6, 7]);
    }

    #[test]
    fn early_stop_returns_a_small_cut_quickly() {
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        edges.push((1, 5));
        let g = UndirectedGraph::from_edges(8, edges).unwrap();
        // True min cut is 2; asking for "< 3" must return a cut of weight < 3.
        let cut = global_min_edge_cut(&g, Some(3)).unwrap();
        assert!(cut.weight < 3);
        // Asking for "< 1" can never early-stop, so the true minimum (2) is
        // eventually reported.
        let exact = global_min_edge_cut(&g, Some(1)).unwrap();
        assert_eq!(exact.weight, 2);
    }

    #[test]
    fn single_vertex_has_no_cut() {
        assert!(global_min_edge_cut(&UndirectedGraph::new(1), None).is_none());
        assert!(global_min_edge_cut(&UndirectedGraph::new(0), None).is_none());
    }
}
