//! Biconnected components (Tarjan's algorithm, iterative).
//!
//! Biconnected components are exactly the 2-VCCs with at least three vertices
//! (plus bridges, which have only two vertices and therefore do not qualify as
//! 2-VCCs). They provide an independent, flow-free oracle for the `k = 2` case
//! of the enumeration, used heavily by the cross-check tests.

use kvcc_graph::{GraphView, VertexId};

/// Returns the vertex sets of all biconnected components of `g`, each sorted
/// ascending, ordered by smallest vertex. Bridges appear as 2-vertex
/// components; isolated vertices do not appear at all.
pub fn biconnected_components<G: GraphView>(g: &G) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut disc = vec![u32::MAX; n]; // discovery times
    let mut low = vec![u32::MAX; n];
    let mut timer = 0u32;
    let mut edge_stack: Vec<(VertexId, VertexId)> = Vec::new();
    let mut components: Vec<Vec<VertexId>> = Vec::new();

    // Iterative DFS frame: (vertex, parent, next neighbour index).
    let mut stack: Vec<(VertexId, VertexId, usize)> = Vec::new();

    for root in 0..n as VertexId {
        if disc[root as usize] != u32::MAX {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, VertexId::MAX, 0));

        while !stack.is_empty() {
            let top = stack.len() - 1;
            let (u, parent, idx) = stack[top];
            let neighbors = g.neighbors(u);
            if idx < neighbors.len() {
                stack[top].2 += 1;
                let v = neighbors[idx];
                if disc[v as usize] == u32::MAX {
                    // Tree edge.
                    edge_stack.push((u, v));
                    disc[v as usize] = timer;
                    low[v as usize] = timer;
                    timer += 1;
                    stack.push((v, u, 0));
                } else if v != parent && disc[v as usize] < disc[u as usize] {
                    // Back edge.
                    edge_stack.push((u, v));
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                // Finished u: propagate low-link to the parent and emit a
                // component if u is the far end of an articulation edge.
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                    if low[u as usize] >= disc[p as usize] {
                        // (p, u) closes a biconnected component.
                        let mut members: Vec<VertexId> = Vec::new();
                        while let Some(&(a, b)) = edge_stack.last() {
                            if disc[a as usize] >= disc[u as usize] {
                                edge_stack.pop();
                                members.push(a);
                                members.push(b);
                            } else {
                                break;
                            }
                        }
                        // The closing edge (p, u) itself.
                        if let Some(&(a, b)) = edge_stack.last() {
                            if (a, b) == (p, u) {
                                edge_stack.pop();
                                members.push(a);
                                members.push(b);
                            }
                        }
                        members.sort_unstable();
                        members.dedup();
                        if !members.is_empty() {
                            components.push(members);
                        }
                    }
                }
            }
        }
    }
    components.sort();
    components
}

/// Convenience: biconnected components with at least three vertices, i.e. the
/// 2-vertex connected components of the graph.
pub fn two_vccs<G: GraphView>(g: &G) -> Vec<Vec<VertexId>> {
    biconnected_components(g)
        .into_iter()
        .filter(|c| c.len() >= 3)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                .unwrap();
        let comps = biconnected_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![2, 3, 4]]);
        assert_eq!(two_vccs(&g), comps);
    }

    #[test]
    fn bridges_are_two_vertex_components() {
        let g = UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        let comps = biconnected_components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert!(two_vccs(&g).is_empty());
    }

    #[test]
    fn cycle_is_one_component() {
        let g = UndirectedGraph::from_edges(5, (0..5u32).map(|i| (i, (i + 1) % 5))).unwrap();
        assert_eq!(biconnected_components(&g), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn disconnected_graphs_and_isolated_vertices() {
        let g = UndirectedGraph::from_edges(6, vec![(0, 1), (1, 2), (0, 2), (3, 4)]).unwrap();
        let comps = biconnected_components(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4]]);
        assert!(biconnected_components(&UndirectedGraph::new(3)).is_empty());
    }

    #[test]
    fn barbell_with_articulation_point() {
        // Two triangles joined by a path through vertex 6.
        let g = UndirectedGraph::from_edges(
            7,
            vec![
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 6),
                (6, 3),
                (3, 4),
                (4, 5),
                (3, 5),
            ],
        )
        .unwrap();
        let comps = biconnected_components(&g);
        assert_eq!(comps.len(), 4);
        assert!(comps.contains(&vec![0, 1, 2]));
        assert!(comps.contains(&vec![3, 4, 5]));
        assert!(comps.contains(&vec![2, 6]));
        assert!(comps.contains(&vec![3, 6]));
        assert_eq!(two_vccs(&g).len(), 2);
    }
}
