//! k-truss decomposition.
//!
//! A k-truss is a maximal subgraph in which every edge participates in at
//! least `k − 2` triangles. The paper's related-work discussion (§7) lists it
//! among the local-triangulation cohesive models that, like the k-core, cannot
//! eliminate the free-rider effect: two dense regions sharing a single edge
//! are reported as one truss. Having it in the baseline crate lets examples
//! and experiments compare a third model family against the k-VCCs.

use std::collections::HashMap;

use kvcc_graph::traversal::connected_components;
use kvcc_graph::{GraphView, VertexId};

/// Computes the truss number of every edge: the largest `k` such that the edge
/// survives in the k-truss. Returned as a map keyed by the normalised edge.
pub fn truss_numbers<G: GraphView>(g: &G) -> HashMap<(VertexId, VertexId), u32> {
    // Support (triangle count) per edge.
    let mut support: HashMap<(VertexId, VertexId), u32> = HashMap::new();
    for (u, v) in g.edges() {
        support.insert((u, v), count_common(g, u, v));
    }
    let mut truss: HashMap<(VertexId, VertexId), u32> = HashMap::new();
    let mut alive = support;

    // Standard truss peeling: for k = 3, 4, ... remove every edge whose
    // remaining support is below k − 2; an edge removed while processing k has
    // truss number k − 1.
    let mut k = 3u32;
    while !alive.is_empty() {
        loop {
            let to_remove: Vec<(VertexId, VertexId)> = alive
                .iter()
                .filter(|&(_, &s)| s < k - 2)
                .map(|(&e, _)| e)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for edge in to_remove {
                alive.remove(&edge);
                truss.insert(edge, k - 1);
                // Decrease the support of the other two edges of every
                // triangle this edge participated in.
                let (u, v) = edge;
                for &w in g.neighbors(u) {
                    if w == v {
                        continue;
                    }
                    let uw = normalize(u, w);
                    let vw = normalize(v, w);
                    if alive.contains_key(&uw) && alive.contains_key(&vw) {
                        if let Some(s) = alive.get_mut(&uw) {
                            *s = s.saturating_sub(1);
                        }
                        if let Some(s) = alive.get_mut(&vw) {
                            *s = s.saturating_sub(1);
                        }
                    }
                }
            }
        }
        k += 1;
    }
    truss
}

fn normalize(a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

fn count_common<G: GraphView>(g: &G, u: VertexId, v: VertexId) -> u32 {
    g.common_neighbor_count(u, v) as u32
}

/// The connected components of the k-truss, each as a sorted vertex list.
/// Vertices with no surviving incident edge are omitted.
pub fn k_truss_components<G: GraphView>(g: &G, k: u32) -> Vec<Vec<VertexId>> {
    let truss = truss_numbers(g);
    let surviving: Vec<(VertexId, VertexId)> = truss
        .iter()
        .filter(|&(_, &t)| t >= k)
        .map(|(&e, _)| e)
        .collect();
    if surviving.is_empty() {
        return Vec::new();
    }
    let truss_graph = kvcc_graph::CsrGraph::from_edges(g.num_vertices(), surviving)
        .expect("edges come from the input graph");
    let mut comps: Vec<Vec<VertexId>> = connected_components(&truss_graph)
        .into_iter()
        .filter(|c| c.len() >= 2)
        .collect();
    comps.sort();
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn clique_truss_numbers() {
        // In K5 every edge lies in 3 triangles, so every edge has truss 5.
        let g = complete(5);
        let truss = truss_numbers(&g);
        assert_eq!(truss.len(), 10);
        assert!(truss.values().all(|&t| t == 5));
        assert_eq!(k_truss_components(&g, 5), vec![vec![0, 1, 2, 3, 4]]);
        assert!(k_truss_components(&g, 6).is_empty());
    }

    #[test]
    fn triangle_free_graph_has_truss_two() {
        let g = UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let truss = truss_numbers(&g);
        assert!(truss.values().all(|&t| t == 2));
        assert!(k_truss_components(&g, 3).is_empty());
        assert_eq!(k_truss_components(&g, 2).len(), 1);
    }

    #[test]
    fn trusses_exhibit_the_free_rider_effect() {
        // Two K4 blocks sharing the edge (3, 4): the 3-trusses (and even the
        // 4-trusses) merge them into a single component, unlike the 3-VCCs.
        let mut edges = Vec::new();
        for block in [[0u32, 1, 2, 3, 4], [3u32, 4, 5, 6, 7]] {
            for i in 0..block.len() {
                for j in (i + 1)..block.len() {
                    edges.push((block[i], block[j]));
                }
            }
        }
        let g = UndirectedGraph::from_edges(8, edges).unwrap();
        let comps = k_truss_components(&g, 4);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 8);
    }

    #[test]
    fn mixed_graph_truss_levels() {
        // A triangle attached to a K5 by one edge.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        edges.extend([(4, 5), (5, 6), (6, 4)]);
        let g = UndirectedGraph::from_edges(7, edges).unwrap();
        let truss = truss_numbers(&g);
        assert_eq!(truss[&(0, 1)], 5);
        assert_eq!(truss[&(5, 6)], 3);
        let comps3 = k_truss_components(&g, 3);
        assert_eq!(comps3.len(), 1, "3-trusses share vertex 4 and merge");
        let comps4 = k_truss_components(&g, 4);
        assert_eq!(comps4, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn empty_graph() {
        assert!(truss_numbers(&UndirectedGraph::new(3)).is_empty());
        assert!(k_truss_components(&UndirectedGraph::new(3), 2).is_empty());
    }
}
