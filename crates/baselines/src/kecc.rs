//! k-edge connected components (k-ECC).
//!
//! A k-ECC is a maximal subgraph that stays connected after removal of any
//! `k − 1` edges. The paper uses k-ECCs (computed with the decomposition of
//! Chang et al., SIGMOD'13) as one of its two comparison models; because the
//! model is unique, any correct algorithm produces identical components, so
//! this crate uses the conceptually simpler recursive cut-based decomposition:
//!
//! 1. peel vertices of degree `< k` (edge connectivity ≤ minimum degree);
//! 2. in every connected component, look for an edge cut of size `< k` by
//!    running unit-capacity max-flow from a fixed source to every other
//!    vertex (for *edge* cuts no second phase is needed: any global cut
//!    separates the source from somebody);
//! 3. if a cut is found, delete its edges and recurse; otherwise the component
//!    is a k-ECC.

use kvcc_flow::dinic::{max_flow_with_scratch, DinicScratch};
use kvcc_flow::mincut::residual_reachable;
use kvcc_flow::network::FlowNetwork;
use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::traversal::connected_components;
use kvcc_graph::{CsrGraph, GraphView, VertexId};

/// Computes all k-edge connected components of `g` (any [`GraphView`]), each
/// as a sorted vertex list (ids of `g`), ordered by smallest vertex.
///
/// Components must contain at least two vertices; `k = 0` is treated as
/// `k = 1` (plain connected components of size ≥ 2).
pub fn k_edge_connected_components<G: GraphView>(g: &G, k: usize) -> Vec<Vec<VertexId>> {
    let k = k.max(1);
    let identity: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    let mut results: Vec<Vec<VertexId>> = Vec::new();
    let mut work: Vec<(CsrGraph, Vec<VertexId>)> = vec![(CsrGraph::from_view(g), identity)];

    while let Some((graph, to_original)) = work.pop() {
        // Degree peeling: edge connectivity is bounded by the minimum degree.
        let core = k_core_vertices(&graph, k);
        if core.len() < 2 {
            continue;
        }
        let core_sub = graph.induced_subgraph(&core);
        for component in connected_components(&core_sub.graph) {
            if component.len() < 2 {
                continue;
            }
            let sub = core_sub.graph.induced_subgraph(&component);
            let comp_to_original: Vec<VertexId> = sub
                .to_parent
                .iter()
                .map(|&core_local| to_original[core_sub.to_parent[core_local as usize] as usize])
                .collect();
            match find_edge_cut(&sub.graph, k as u32) {
                None => {
                    let mut members = comp_to_original;
                    members.sort_unstable();
                    results.push(members);
                }
                Some(cut_edges) => {
                    let reduced = remove_edges(&sub.graph, &cut_edges);
                    work.push((reduced, comp_to_original));
                }
            }
        }
    }
    results.sort();
    results
}

/// Exact edge connectivity between a fixed minimum-degree source and every
/// other vertex, early-terminated at `k`; returns the crossing edges of the
/// first cut with fewer than `k` edges, or `None` if the graph is k-edge
/// connected.
fn find_edge_cut(g: &CsrGraph, k: u32) -> Option<Vec<(VertexId, VertexId)>> {
    let n = g.num_vertices();
    debug_assert!(n >= 2);
    let source = g.min_degree_vertex().expect("non-empty graph");
    if (g.degree(source) as u32) < k {
        // The source's incident edges are already a small cut.
        return Some(g.neighbors(source).iter().map(|&v| (source, v)).collect());
    }

    // Build the directed flow network: each undirected edge becomes two
    // opposing unit-capacity arcs.
    let mut net = FlowNetwork::with_capacity(n, 2 * g.num_edges());
    for (u, v) in g.edges() {
        net.add_arc(u, v, 1);
        net.add_arc(v, u, 1);
    }
    let mut scratch = DinicScratch::new(n);

    for v in g.vertices() {
        if v == source {
            continue;
        }
        let flow = max_flow_with_scratch(&mut net, source, v, k, &mut scratch);
        if flow < k {
            let reachable = residual_reachable(&net, source);
            let mut cut = Vec::new();
            for (a, b) in g.edges() {
                if reachable.contains(a as usize) != reachable.contains(b as usize) {
                    cut.push((a, b));
                }
            }
            debug_assert!(!cut.is_empty());
            return Some(cut);
        }
        net.reset();
    }
    None
}

/// Returns a copy of `g` with the given undirected edges removed.
fn remove_edges(g: &CsrGraph, edges: &[(VertexId, VertexId)]) -> CsrGraph {
    use std::collections::HashSet;
    let removed: HashSet<(VertexId, VertexId)> = edges
        .iter()
        .map(|&(u, v)| if u <= v { (u, v) } else { (v, u) })
        .collect();
    let kept: Vec<(VertexId, VertexId)> = g
        .edges()
        .filter(|&(u, v)| !removed.contains(&(u, v)))
        .collect();
    CsrGraph::from_edges(g.num_vertices(), kept)
        .expect("edges of an existing graph are always in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn clique_is_a_single_kecc() {
        let g = complete(6);
        for k in 1..=5usize {
            let comps = k_edge_connected_components(&g, k);
            assert_eq!(comps, vec![vec![0, 1, 2, 3, 4, 5]], "k = {k}");
        }
        assert!(k_edge_connected_components(&g, 6).is_empty());
    }

    #[test]
    fn bridge_joined_blocks_split() {
        // Two K4 blocks joined by one bridge: 2-ECCs are the blocks.
        let mut edges = Vec::new();
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 4));
        let g = UndirectedGraph::from_edges(8, edges).unwrap();
        let comps = k_edge_connected_components(&g, 2);
        assert_eq!(comps, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        // For k = 1 the whole graph is one component.
        assert_eq!(
            k_edge_connected_components(&g, 1),
            vec![(0..8).collect::<Vec<_>>()]
        );
    }

    #[test]
    fn shared_vertex_does_not_split_keccs() {
        // Fig. 1 intuition: two 2-dense blocks sharing one vertex form a
        // single 2-ECC (vertex cuts do not matter for edge connectivity).
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                .unwrap();
        let comps = k_edge_connected_components(&g, 2);
        assert_eq!(comps, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn kecc_members_are_k_edge_connected() {
        // Verify the definition on a small mixed graph using Stoer-Wagner.
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3)];
        edges.extend([(3, 4), (4, 5), (3, 5), (4, 6), (5, 6), (3, 6)]);
        let g = UndirectedGraph::from_edges(7, edges).unwrap();
        for k in 1..=3usize {
            for comp in k_edge_connected_components(&g, k) {
                let sub = g.induced_subgraph(&comp);
                let lambda = crate::stoer_wagner::edge_connectivity(&sub.graph);
                assert!(
                    lambda >= k as u64,
                    "component {comp:?} has λ = {lambda} < {k}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_has_no_components() {
        assert!(k_edge_connected_components(&UndirectedGraph::new(0), 2).is_empty());
        assert!(k_edge_connected_components(&UndirectedGraph::new(5), 1).is_empty());
    }
}
