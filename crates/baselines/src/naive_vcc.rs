//! Brute-force k-VCC oracle for tiny graphs.
//!
//! Enumerates every vertex subset (largest first), keeps the ones whose
//! induced subgraph is k-vertex connected, and discards subsets contained in
//! an already accepted component. Exponential in the number of vertices, so it
//! refuses graphs with more than [`MAX_ORACLE_VERTICES`] vertices; it exists
//! purely as ground truth for the property-based tests of the optimised
//! enumerator.

use kvcc_flow::is_k_vertex_connected;
use kvcc_graph::{CsrGraph, GraphView, VertexId};

/// Largest graph the oracle accepts (2^n subsets are enumerated).
pub const MAX_ORACLE_VERTICES: usize = 18;

/// Exact k-VCC enumeration by exhaustive search.
///
/// # Panics
///
/// Panics if the graph has more than [`MAX_ORACLE_VERTICES`] vertices.
pub fn naive_kvccs<G: GraphView>(g: &G, k: u32) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!(
        n <= MAX_ORACLE_VERTICES,
        "naive oracle supports at most {MAX_ORACLE_VERTICES} vertices, got {n}"
    );
    if n == 0 || k == 0 {
        return Vec::new();
    }

    // Enumerate subsets grouped by size, largest first, so that maximality is
    // a simple "not contained in an already accepted set" check.
    let mut subsets: Vec<u32> = (1u32..(1u32 << n)).collect();
    subsets.sort_by_key(|s| std::cmp::Reverse(s.count_ones()));

    let mut accepted_masks: Vec<u32> = Vec::new();
    let mut components: Vec<Vec<VertexId>> = Vec::new();
    let mut map: Vec<VertexId> = Vec::new();

    for mask in subsets {
        if mask.count_ones() <= k {
            // A k-VCC needs more than k vertices; smaller subsets (and all
            // that follow, since we go largest-first) can be skipped.
            break;
        }
        if accepted_masks.iter().any(|&a| a & mask == mask) {
            continue; // contained in an accepted component: not maximal
        }
        let vertices: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| mask & (1 << v) != 0)
            .collect();
        let sub = CsrGraph::extract_induced(g, &vertices, &mut map);
        if is_k_vertex_connected(&sub, k) {
            accepted_masks.push(mask);
            components.push(vertices);
        }
    }
    components.sort();
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn clique_is_the_only_component() {
        let g = complete(5);
        assert_eq!(naive_kvccs(&g, 3), vec![vec![0, 1, 2, 3, 4]]);
        assert_eq!(naive_kvccs(&g, 4), vec![vec![0, 1, 2, 3, 4]]);
        assert!(naive_kvccs(&g, 5).is_empty());
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                .unwrap();
        assert_eq!(naive_kvccs(&g, 2), vec![vec![0, 1, 2], vec![2, 3, 4]]);
        assert!(naive_kvccs(&g, 3).is_empty());
    }

    #[test]
    fn k1_matches_connected_components_of_size_two_or_more() {
        let g = UndirectedGraph::from_edges(5, vec![(0, 1), (2, 3), (3, 4)]).unwrap();
        assert_eq!(naive_kvccs(&g, 1), vec![vec![0, 1], vec![2, 3, 4]]);
    }

    #[test]
    fn overlapping_components_are_both_found() {
        // Two K4 blocks sharing two vertices (3-VCCs overlap in 2 < k vertices
        // would need k=3; here they are 3-connected blocks sharing {2,3}).
        let mut edges = Vec::new();
        for block in [[0u32, 1, 2, 3], [2u32, 3, 4, 5]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((block[i], block[j]));
                }
            }
        }
        let g = UndirectedGraph::from_edges(6, edges).unwrap();
        let comps = naive_kvccs(&g, 3);
        assert_eq!(comps, vec![vec![0, 1, 2, 3], vec![2, 3, 4, 5]]);
    }

    #[test]
    fn empty_inputs() {
        assert!(naive_kvccs(&UndirectedGraph::new(0), 2).is_empty());
        assert!(naive_kvccs(&complete(3), 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "naive oracle supports at most")]
    fn refuses_large_graphs() {
        let _ = naive_kvccs(&UndirectedGraph::new(25), 2);
    }
}
