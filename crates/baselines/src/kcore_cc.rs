//! Connected components of the k-core ("k-CC" in the paper's figures).
//!
//! The k-core model only constrains vertex degrees, so loosely joined dense
//! regions collapse into a single component — the free-rider effect the k-VCC
//! model is designed to eliminate (Fig. 1). These components are the weakest
//! baseline in the effectiveness study.

use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::traversal::connected_components_filtered;
use kvcc_graph::{GraphView, VertexId};

/// Returns the connected components of the k-core of `g`, each as a sorted
/// vertex list (ids of `g`). Components are ordered by their smallest vertex.
pub fn k_core_components<G: GraphView>(g: &G, k: usize) -> Vec<Vec<VertexId>> {
    let core_vertices = k_core_vertices(g, k);
    if core_vertices.is_empty() {
        return Vec::new();
    }
    // Component split on a vertex mask: no copy or relabelling is needed.
    let mut alive = kvcc_graph::bitset::BitSet::new(g.num_vertices());
    for &v in &core_vertices {
        alive.insert(v as usize);
    }
    let mut comps = connected_components_filtered(g, &alive);
    comps.sort();
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    #[test]
    fn two_triangles_sharing_a_vertex_form_one_2cc() {
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                .unwrap();
        let comps = k_core_components(&g, 2);
        // Unlike the 2-VCCs, the 2-core is a single connected component: the
        // free-rider effect in action.
        assert_eq!(comps, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn pendant_vertices_are_removed() {
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(k_core_components(&g, 2), vec![vec![0, 1, 2]]);
        assert!(k_core_components(&g, 3).is_empty());
    }

    #[test]
    fn disconnected_cores_stay_separate() {
        let mut edges = vec![(0, 1), (1, 2), (0, 2)];
        edges.extend([(3, 4), (4, 5), (3, 5)]);
        let g = UndirectedGraph::from_edges(6, edges).unwrap();
        let comps = k_core_components(&g, 2);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }
}
