//! Baseline cohesive-subgraph models and exact oracles.
//!
//! The paper's effectiveness study (Figs. 7–9, the Fig. 1 example and the
//! Fig. 14 case study) compares k-VCCs against two weaker models, and the test
//! suite of the workspace cross-checks the optimised enumerator against exact
//! oracles. This crate provides all of them:
//!
//! * [`kcore_cc`] — connected components of the k-core ("k-CC" in the
//!   figures);
//! * [`kecc`] — k-edge connected components, computed by recursive global
//!   min-edge-cut partitioning ([`stoer_wagner`] provides the cut);
//! * [`bicc`] — biconnected components (Tarjan), an independent oracle for the
//!   `k = 2` case of the k-VCC enumeration;
//! * [`naive_vcc`] — a brute-force k-VCC oracle for tiny graphs, used by the
//!   property-based tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bicc;
pub mod kcore_cc;
pub mod kecc;
pub mod ktruss;
pub mod naive_vcc;
pub mod stoer_wagner;

pub use bicc::biconnected_components;
pub use kcore_cc::k_core_components;
pub use kecc::k_edge_connected_components;
pub use ktruss::k_truss_components;
pub use naive_vcc::naive_kvccs;
pub use stoer_wagner::global_min_edge_cut;
