//! PR 3 performance record: the locality-optimized graph substrate.
//!
//! Measures the full enumeration across the substrate × flow-probe matrix on
//! two workloads:
//!
//! * `planted10k` — the planted-partition suite scaled to ~10k vertices,
//!   with a background dense enough that its k-core **survives** the peel:
//!   the enumeration has to certify / cut a ~10k-vertex component, making
//!   the `LOC-CUT` flow probes the hot path (the §5 shape);
//! * `collab` — the §6.4-style collaboration graph.
//!
//! Both graphs are loaded under a deterministic random permutation of their
//! vertex ids — real datasets arrive with arbitrary external ids, and the
//! generator's natural ids are already nearly BFS-ordered, which would make
//! the baseline unrealistically cache-friendly.
//!
//! Substrates: the as-loaded (scrambled) [`CsrGraph`] baseline, the
//! hybrid-reordered CSR ([`kvcc_graph::reorder`], results mapped back to
//! loaded ids), and the delta+varint [`CompressedCsrGraph`] storing the
//! reordered layout (small gaps are what make varints pay). Flow probes:
//! `flow-exact` computes the exact local connectivity and minimum cut per
//! `LOC-CUT` (the pre-PR-3 baseline probe semantics,
//! [`KvccOptions::k_bounded_flow`]` = false`) and `flow-kbounded` stops
//! Dinic at the k-th augmenting path and never materialises a cut for
//! certified pairs (the new default). Every variant must produce the
//! identical component set — checksums are asserted equal.
//!
//! A small index section records the service-restart path:
//! `index/build` (hierarchy construction) vs `index/restore-from-bytes`
//! ([`kvcc::ConnectivityIndex::from_bytes`] on a persisted buffer).

use std::sync::OnceLock;
use std::time::Duration;

use kvcc::{enumerate_kvccs, ConnectivityIndex, KVertexConnectedComponent, KvccOptions};
use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::reorder::{compute_ordering, OrderingStrategy, VertexOrdering};
use kvcc_graph::{CompressedCsrGraph, CsrGraph, UndirectedGraph, VertexId};

use crate::pr1::{case_budget, measure_fn, Report};

/// One benchmark workload: the three substrate variants of the same graph
/// plus the ordering that links the reordered ids back to the loaded ones.
/// Shared with the PR 6 section, which probes the same graphs at a lower
/// level (flow probes, row decodes) instead of end-to-end.
pub(crate) struct Workload {
    /// The as-loaded baseline: the generator graph under a deterministic
    /// random id permutation (arbitrary external ids).
    pub(crate) csr: CsrGraph,
    /// The hybrid-reordered relabelling of `csr`.
    pub(crate) reordered: CsrGraph,
    /// Maps `reordered` ids back to `csr` (loaded) ids.
    ordering: VertexOrdering,
    /// Delta+varint encoding of the **reordered** layout.
    pub(crate) compressed: CompressedCsrGraph,
    pub(crate) k: u32,
}

/// Deterministic Fisher–Yates permutation of `0..n` (xorshift64*), standing
/// in for the arbitrary external ids real datasets load with.
fn scramble_ordering(n: usize, seed: u64) -> VertexOrdering {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    VertexOrdering::from_new_to_old(perm)
}

impl Workload {
    fn new(graph: &UndirectedGraph, k: u32, scramble_seed: u64) -> Self {
        let natural = CsrGraph::from_view(graph);
        let csr = natural.reordered(&scramble_ordering(natural.num_vertices(), scramble_seed));
        let ordering = compute_ordering(&csr, OrderingStrategy::Hybrid);
        let reordered = csr.reordered(&ordering);
        let compressed = CompressedCsrGraph::from_csr(&reordered);
        Workload {
            csr,
            reordered,
            ordering,
            compressed,
            k,
        }
    }
}

/// The planted-partition suite scaled to ~10k vertices. With 5 background
/// edges per vertex the background's 4-core survives the peel as one large
/// component, so the enumeration spends its time exactly where §5 says it
/// does: in vertex-cut probes over a big subgraph.
pub(crate) fn planted10k() -> &'static Workload {
    static WORKLOAD: OnceLock<Workload> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let config = PlantedConfig {
            num_communities: 12,
            chain_length: 3,
            community_size: (12, 16),
            background_vertices: 10_000,
            background_edges_per_vertex: 5,
            seed: 23,
            ..PlantedConfig::default()
        };
        let k = config.k as u32;
        Workload::new(&planted_communities(&config).graph, k, 0xD1CE)
    })
}

/// The §6.4-style collaboration graph at its default size.
fn collab() -> &'static Workload {
    static WORKLOAD: OnceLock<Workload> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let config = CollaborationConfig {
            num_groups: 10,
            shared_authors: 5,
            pendant_collaborators: 40,
            ..CollaborationConfig::default()
        };
        let k = config.group_connectivity as u32;
        Workload::new(&collaboration_graph(&config).graph, k, 0xF1A7)
    })
}

/// Order-insensitive, id-sensitive digest of a component set, so every
/// substrate variant can be cross-checked after mapping back to original
/// ids.
fn checksum_components(components: &[KVertexConnectedComponent]) -> usize {
    components
        .iter()
        .map(|c| {
            let ids: usize = c.vertices().iter().map(|&v| v as usize + 1).sum();
            ids.wrapping_mul(31).wrapping_add(c.len())
        })
        .fold(0usize, |acc, h| acc.wrapping_add(h))
}

fn options(k_bounded: bool) -> KvccOptions {
    KvccOptions::default().with_k_bounded_flow(k_bounded)
}

fn enum_csr(w: &Workload, k_bounded: bool) -> usize {
    let r = enumerate_kvccs(&w.csr, w.k, &options(k_bounded)).unwrap();
    checksum_components(r.components())
}

/// Maps relabelled output back to loaded ids before digesting — loaded-id,
/// sorted components are the invariant every substrate must reproduce
/// exactly.
fn checksum_mapped(w: &Workload, components: &[KVertexConnectedComponent]) -> usize {
    let mapped: Vec<KVertexConnectedComponent> = components
        .iter()
        .map(|c| {
            KVertexConnectedComponent::new(
                c.vertices().iter().map(|&v| w.ordering.to_old(v)).collect(),
            )
        })
        .collect();
    checksum_components(&mapped)
}

fn enum_reordered(w: &Workload, k_bounded: bool) -> usize {
    let r = enumerate_kvccs(&w.reordered, w.k, &options(k_bounded)).unwrap();
    checksum_mapped(w, r.components())
}

fn enum_compressed(w: &Workload, k_bounded: bool) -> usize {
    let r = enumerate_kvccs(&w.compressed, w.k, &options(k_bounded)).unwrap();
    // The compressed substrate stores the reordered layout, so its output
    // maps back through the same ordering.
    checksum_mapped(w, r.components())
}

/// The small planted graph shared with the PR 2 query section, for the index
/// persistence cases (hierarchy builds on the 10k graph are too slow to
/// repeat in a bench budget).
fn index_workload() -> &'static (UndirectedGraph, Vec<u8>) {
    static WORKLOAD: OnceLock<(UndirectedGraph, Vec<u8>)> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let config = PlantedConfig {
            num_communities: 6,
            chain_length: 3,
            community_size: (10, 14),
            background_vertices: 600,
            seed: 11,
            ..PlantedConfig::default()
        };
        let graph = planted_communities(&config).graph;
        let bytes = ConnectivityIndex::build(&graph, None, &KvccOptions::default())
            .unwrap()
            .to_bytes();
        (graph, bytes)
    })
}

fn index_build() -> usize {
    let (g, _) = index_workload();
    ConnectivityIndex::build(g, None, &KvccOptions::default())
        .unwrap()
        .num_nodes()
}

fn index_restore() -> usize {
    let (_, bytes) = index_workload();
    ConnectivityIndex::from_bytes(bytes).unwrap().num_nodes()
}

/// One named case with its minimum iteration count.
type Pr3Case = (&'static str, fn() -> usize, u64);

fn matrix_cases() -> Vec<Pr3Case> {
    fn case(run: fn() -> usize, name: &'static str) -> Pr3Case {
        (name, run, 3)
    }
    vec![
        // The `csr/flow-exact` rows are the PR 2 baseline CSR path: the same
        // substrate, with the probe computing exact local connectivity
        // instead of stopping at the k-th augmenting path.
        case(
            || enum_csr(planted10k(), false),
            "pr3/planted10k/csr/flow-exact",
        ),
        case(
            || enum_csr(planted10k(), true),
            "pr3/planted10k/csr/flow-kbounded",
        ),
        case(
            || enum_reordered(planted10k(), false),
            "pr3/planted10k/reordered/flow-exact",
        ),
        case(
            || enum_reordered(planted10k(), true),
            "pr3/planted10k/reordered/flow-kbounded",
        ),
        case(
            || enum_compressed(planted10k(), false),
            "pr3/planted10k/compressed/flow-exact",
        ),
        case(
            || enum_compressed(planted10k(), true),
            "pr3/planted10k/compressed/flow-kbounded",
        ),
        case(|| enum_csr(collab(), false), "pr3/collab/csr/flow-exact"),
        case(|| enum_csr(collab(), true), "pr3/collab/csr/flow-kbounded"),
        case(
            || enum_reordered(collab(), false),
            "pr3/collab/reordered/flow-exact",
        ),
        case(
            || enum_reordered(collab(), true),
            "pr3/collab/reordered/flow-kbounded",
        ),
        case(
            || enum_compressed(collab(), false),
            "pr3/collab/compressed/flow-exact",
        ),
        case(
            || enum_compressed(collab(), true),
            "pr3/collab/compressed/flow-kbounded",
        ),
    ]
}

/// Runs the PR 3 cases, asserting that every substrate × probe variant of a
/// workload produces the identical component set.
pub fn run_all(smoke: bool) -> Report {
    let mut report = Report::default();
    let mut cases = matrix_cases();
    cases.push(("pr3/index/build", index_build, 3));
    cases.push(("pr3/index/restore-from-bytes", index_restore, 20));
    for (name, run, min_iters) in cases {
        let (warmup, budget, min_iters) = case_budget(
            smoke,
            Duration::from_millis(150),
            Duration::from_millis(900),
            min_iters,
        );
        report
            .entries
            .push(measure_fn(name, run, warmup, budget, min_iters));
    }
    for prefix in ["pr3/planted10k", "pr3/collab"] {
        let sums: Vec<(&str, usize)> = report
            .entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .map(|e| (e.name, e.checksum))
            .collect();
        assert!(
            sums.windows(2).all(|w| w[0].1 == w[1].1),
            "substrate variants disagree: {sums:?}"
        );
    }
    report
}

/// Speedup pairs reported in `BENCH_pr3.json`. The headline pairs compare
/// the new locality + k-bounded path against the baseline CSR probe.
pub fn speedup_pairs() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "pr3/planted10k/csr/flow-exact",
            "pr3/planted10k/reordered/flow-kbounded",
            "planted10k_reordered_kbounded_vs_baseline_csr",
        ),
        (
            "pr3/planted10k/csr/flow-exact",
            "pr3/planted10k/compressed/flow-kbounded",
            "planted10k_compressed_kbounded_vs_baseline_csr",
        ),
        (
            "pr3/planted10k/csr/flow-exact",
            "pr3/planted10k/csr/flow-kbounded",
            "planted10k_kbounded_vs_exact_same_substrate",
        ),
        (
            "pr3/planted10k/csr/flow-kbounded",
            "pr3/planted10k/reordered/flow-kbounded",
            "planted10k_reordered_vs_csr_same_flow",
        ),
        (
            "pr3/collab/csr/flow-exact",
            "pr3/collab/reordered/flow-kbounded",
            "collab_reordered_kbounded_vs_baseline_csr",
        ),
        (
            "pr3/collab/csr/flow-exact",
            "pr3/collab/csr/flow-kbounded",
            "collab_kbounded_vs_exact_same_substrate",
        ),
        (
            "pr3/index/build",
            "pr3/index/restore-from-bytes",
            "index_restore_vs_build",
        ),
    ]
}

/// JSON payload for `BENCH_pr3.json` (hand-assembled like the other bench
/// reports; no third-party serializer in the offline environment).
pub fn render_json(report: &Report) -> String {
    let p = planted10k();
    let c = collab();
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 3,\n");
    out.push_str(
        "  \"description\": \"Locality-optimized substrate: {baseline CSR, hybrid-reordered, \
         delta+varint compressed} x {exact, k-bounded} LOC-CUT flow on the scaled planted suite \
         and the collaboration graph; csr/flow-exact is the PR 2 baseline CSR path. Checksums \
         are identical across all variants (original-id component parity).\",\n",
    );
    out.push_str(&format!(
        "  \"workloads\": {{\n    \"planted10k\": {{\"vertices\": {}, \"edges\": {}, \"k\": {}, \
         \"compression_ratio\": {:.3}}},\n    \"collab\": {{\"vertices\": {}, \"edges\": {}, \
         \"k\": {}, \"compression_ratio\": {:.3}}}\n  }},\n",
        p.csr.num_vertices(),
        p.csr.num_edges(),
        p.k,
        p.compressed.compression_ratio(),
        c.csr.num_vertices(),
        c.csr.num_edges(),
        c.k,
        c.compressed.compression_ratio(),
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
            e.name,
            e.mean_ns,
            e.iterations,
            e.checksum,
            if i + 1 < report.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": {\n");
    let mut parts = Vec::new();
    for (baseline, contender, label) in speedup_pairs() {
        if let Some(s) = report.speedup(baseline, contender) {
            parts.push(format!("    \"{label}\": {s:.3}"));
        }
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_substrate_variants_agree_on_collab() {
        // The collaboration workload is the cheap one; the 10k-vertex parity
        // is covered by the integration suite and the bench run itself.
        let w = collab();
        let baseline = enum_csr(w, true);
        assert_eq!(enum_csr(w, false), baseline);
        assert_eq!(enum_reordered(w, true), baseline);
        assert_eq!(enum_reordered(w, false), baseline);
        assert_eq!(enum_compressed(w, true), baseline);
        assert_eq!(enum_compressed(w, false), baseline);
    }

    #[test]
    fn index_restore_matches_build() {
        assert_eq!(index_build(), index_restore());
    }

    #[test]
    fn smoke_report_is_complete_and_well_formed() {
        let report = run_all(true);
        assert_eq!(report.entries.len(), 14);
        let json = render_json(&report);
        assert!(json.contains("\"pr\": 3"));
        assert!(json.contains("planted10k_reordered_kbounded_vs_baseline_csr"));
        assert!(json.trim_end().ends_with('}'));
    }
}
