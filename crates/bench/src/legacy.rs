//! The seed's enumeration path, preserved for benchmarking.
//!
//! Before the CSR refactor, `KVCC-ENUM` kept every work item as a
//! `Vec<Vec<VertexId>>` adjacency graph, copied and relabelled a fresh
//! subgraph at every k-core / component / partition step, and built a fresh
//! flow network for every `GLOBAL-CUT` probe. This module reproduces that
//! behaviour on top of the public APIs so `pr1-bench` can quantify what the
//! refactor bought; it is **not** part of the supported API surface.

use kvcc::global_cut::global_cut;
use kvcc::partition::overlap_partition;
use kvcc::{EnumerationStats, KVertexConnectedComponent, KvccOptions};
use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::traversal::connected_components;
use kvcc_graph::{UndirectedGraph, VertexId};

struct WorkItem {
    graph: UndirectedGraph,
    to_original: Vec<VertexId>,
}

/// Sequential seed-style enumeration: vec-adjacency work items, one
/// copy-and-relabel per recursion step, one freshly allocated flow network
/// per `GLOBAL-CUT` probe (the wrapper [`global_cut`] allocates a new scratch
/// arena on every call, exactly like the seed did).
pub fn legacy_enumerate(
    graph: &UndirectedGraph,
    k: u32,
    options: &KvccOptions,
) -> Vec<KVertexConnectedComponent> {
    assert!(k > 0);
    let mut stats = EnumerationStats::default();
    let mut results: Vec<KVertexConnectedComponent> = Vec::new();
    let mut work: Vec<WorkItem> = Vec::new();

    let core_vertices = k_core_vertices(graph, k as usize);
    if !core_vertices.is_empty() {
        let core = graph.induced_subgraph(&core_vertices);
        work.push(WorkItem {
            graph: core.graph,
            to_original: core.to_parent,
        });
    }

    while let Some(item) = work.pop() {
        let core_vertices = k_core_vertices(&item.graph, k as usize);
        if core_vertices.is_empty() {
            continue;
        }
        let core = item.graph.induced_subgraph(&core_vertices);
        for component in connected_components(&core.graph) {
            if component.len() <= k as usize {
                continue;
            }
            let sub = core.graph.induced_subgraph(&component);
            let to_original: Vec<VertexId> = sub
                .to_parent
                .iter()
                .map(|&core_local| item.to_original[core.to_parent[core_local as usize] as usize])
                .collect();
            let outcome = global_cut(&sub.graph, k, options, &mut stats)
                .expect("the legacy path runs without a budget");
            match outcome.cut {
                None => results.push(KVertexConnectedComponent::new(to_original)),
                Some(cut) => {
                    let mut parts = overlap_partition(&sub.graph, &cut);
                    if parts.len() < 2 {
                        match kvcc_flow::connectivity::find_vertex_cut(&sub.graph, k) {
                            None => {
                                results.push(KVertexConnectedComponent::new(to_original));
                                continue;
                            }
                            Some(recut) => parts = overlap_partition(&sub.graph, &recut),
                        }
                    }
                    for part in parts {
                        let piece = sub.graph.induced_subgraph(&part);
                        let piece_to_original: Vec<VertexId> = piece
                            .to_parent
                            .iter()
                            .map(|&local| to_original[local as usize])
                            .collect();
                        work.push(WorkItem {
                            graph: piece.graph,
                            to_original: piece_to_original,
                        });
                    }
                }
            }
        }
    }
    results.sort();
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc::enumerate_kvccs;

    #[test]
    fn legacy_path_matches_the_refactored_enumerator() {
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                .unwrap();
        for k in 1u32..=3 {
            let legacy = legacy_enumerate(&g, k, &KvccOptions::default());
            let new = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(legacy, new.components().to_vec(), "k {k}");
        }
    }
}
