//! PR 7 performance record: SNAP-scale ingestion and the zero-copy graph
//! format.
//!
//! Two before/after pairs on a streamed community-ring edge list
//! ([`StreamConfig::million`], ~1.06M edge lines, written to a temp file once
//! per process):
//!
//! * `ingest` — text-to-CSR build throughput. The baseline
//!   ([`WholeFileEdgeListLoader`]) is the seed-era path: parse everything,
//!   then build per-vertex adjacency `Vec`s through `GraphBuilder` before
//!   flattening to CSR. The contender ([`StreamingEdgeListLoader`]) parses in
//!   chunks, sorts each chunk (in parallel when cores allow), and k-way
//!   merges the sorted runs **directly into** the CSR arrays — the
//!   per-vertex `Vec`-of-`Vec`s never exists, so the transient footprint is
//!   the flat pair buffer instead of a million small allocations.
//! * `load` — bringing a persisted graph back. The baseline reads the
//!   delta+varint compact format and decodes every row
//!   ([`CsrGraph::to_bytes_compact`] / `from_bytes`, `O(m)` varint work).
//!   The contender reads the 8-byte-aligned `KCSR` v3 file into an
//!   `AlignedBytes` buffer and *borrows* the offset/neighbour arrays in
//!   place ([`MappedCsr`]): after the header/checksum check the only
//!   per-edge work is the one structural validation pass — no decode, no
//!   second copy of the graph.
//!
//! All four cases answer the same sampled adjacency fingerprint, and
//! `run_all` asserts the checksums are identical — the fast paths are
//! behaviour-invariant by construction. Timings are single-process
//! wall-clock means; on a 1-core container the parallel chunk sort degrades
//! to sequential, so the recorded ingest ratio is the *floor* of what a
//! multicore host sees (the load ratio is core-count independent).

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use kvcc_datasets::StreamConfig;
use kvcc_graph::{
    write_kcsr_file, CsrGraph, GraphLoader, GraphView, MappedCsr, StreamingEdgeListLoader,
    VertexId, WholeFileEdgeListLoader,
};

use crate::pr1::{case_budget, measure_fn, Report};

/// The shared ingestion workload: one edge-list file plus the two persisted
/// binary forms of the graph it parses to, written once per process.
pub struct Pr7Workload {
    /// Generator shape (the smoke run uses a miniature of the same shape).
    pub cfg: StreamConfig,
    /// The streamed text edge list.
    pub edge_path: PathBuf,
    /// The aligned `KCSR` v3 file (borrowable).
    pub kcsr_path: PathBuf,
    /// The delta+varint compact file (decode-only baseline).
    pub compact_path: PathBuf,
    /// Size of the text file in bytes.
    pub edge_file_bytes: u64,
    /// Size of the `KCSR` file in bytes.
    pub kcsr_bytes: u64,
    /// Size of the compact file in bytes.
    pub compact_bytes: u64,
    /// Vertices of the parsed graph.
    pub num_vertices: usize,
    /// Undirected edges of the parsed graph.
    pub num_edges: usize,
    /// Transient-footprint proxy of the streaming ingest (flat pair buffer
    /// + interner + final CSR).
    pub streaming_peak_bytes: usize,
    /// Transient-footprint proxy of the whole-file baseline (per-vertex
    /// `Vec` adjacency + interner + final CSR).
    pub whole_file_peak_bytes: usize,
}

/// The active workload, selected by the first [`run_all`] call (full or
/// smoke scale — one per process).
static ACTIVE: OnceLock<Pr7Workload> = OnceLock::new();

fn init_workload(smoke: bool) -> &'static Pr7Workload {
    ACTIVE.get_or_init(|| {
        let cfg = if smoke {
            // Same ring shape, debug-test sized (~6.4k edge lines).
            StreamConfig {
                communities: 16,
                community_size: 128,
                skeleton_span: 2,
                extra_intra: 128,
                bridges: 16,
                seed: 0x1cde_2019,
            }
        } else {
            StreamConfig::million()
        };
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let tag = if smoke { "smoke" } else { "full" };
        let edge_path = dir.join(format!("kvcc_pr7_{tag}_{pid}.txt"));
        let kcsr_path = dir.join(format!("kvcc_pr7_{tag}_{pid}.kcsr"));
        let compact_path = dir.join(format!("kvcc_pr7_{tag}_{pid}.compact"));
        cfg.write_file(&edge_path).expect("write edge list");
        let streamed = StreamingEdgeListLoader::new()
            .load_path(&edge_path)
            .expect("ingest edge list");
        let whole = WholeFileEdgeListLoader
            .load_path(&edge_path)
            .expect("ingest edge list (baseline)");
        write_kcsr_file(&streamed.graph, &kcsr_path).expect("write KCSR");
        std::fs::write(&compact_path, streamed.graph.to_bytes_compact()).expect("write compact");
        let file_len = |p: &PathBuf| std::fs::metadata(p).expect("stat").len();
        Pr7Workload {
            cfg,
            edge_file_bytes: file_len(&edge_path),
            kcsr_bytes: file_len(&kcsr_path),
            compact_bytes: file_len(&compact_path),
            num_vertices: streamed.graph.num_vertices(),
            num_edges: streamed.graph.num_edges(),
            streaming_peak_bytes: streamed.peak_bytes,
            whole_file_peak_bytes: whole.peak_bytes,
            edge_path,
            kcsr_path,
            compact_path,
        }
    })
}

/// The active workload (panics before the first [`run_all`]).
pub fn workload() -> &'static Pr7Workload {
    ACTIVE.get().expect("pr7 workload not initialised yet")
}

/// Sampled adjacency digest: vertex/edge counts plus the degree and last
/// neighbour of every 64th row. Cheap relative to the measured load work,
/// representation-independent, and sensitive to any row-level disagreement
/// between the four paths.
fn fingerprint<G: GraphView>(g: &G) -> usize {
    let n = g.num_vertices();
    let mut acc = n.wrapping_mul(31).wrapping_add(g.num_edges());
    let mut v = 0usize;
    while v < n {
        let row = g.neighbors(v as VertexId);
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(row.last().map_or(0, |&x| x as usize))
            .wrapping_add(row.len());
        v += 64;
    }
    acc
}

fn ingest_streaming() -> usize {
    let w = workload();
    let loaded = StreamingEdgeListLoader::new()
        .load_path(&w.edge_path)
        .expect("bench edge list is valid by construction");
    fingerprint(&loaded.graph)
}

fn ingest_whole_file() -> usize {
    let w = workload();
    let loaded = WholeFileEdgeListLoader
        .load_path(&w.edge_path)
        .expect("bench edge list is valid by construction");
    fingerprint(&loaded.graph)
}

fn load_kcsr_borrow() -> usize {
    let w = workload();
    let mapped = MappedCsr::open(&w.kcsr_path).expect("bench KCSR file is valid by construction");
    fingerprint(&mapped)
}

fn load_compact_decode() -> usize {
    let w = workload();
    let bytes = std::fs::read(&w.compact_path).expect("read compact file");
    let g = CsrGraph::from_bytes(&bytes).expect("bench compact file is valid by construction");
    fingerprint(&g)
}

/// One named case with its minimum iteration count.
type Pr7Case = (&'static str, fn() -> usize, u64);

fn cases() -> Vec<Pr7Case> {
    vec![
        ("pr7/ingest/whole-file", ingest_whole_file, 2),
        ("pr7/ingest/streaming", ingest_streaming, 2),
        ("pr7/load/compact-decode", load_compact_decode, 5),
        ("pr7/load/kcsr-borrow", load_kcsr_borrow, 5),
    ]
}

/// Runs the PR 7 cases, asserting that every path fingerprints the graph
/// identically (ingestion and load are behaviour-invariant).
pub fn run_all(smoke: bool) -> Report {
    init_workload(smoke);
    let mut report = Report::default();
    for (name, run, min_iters) in cases() {
        let (warmup, budget, min_iters) = case_budget(
            smoke,
            Duration::from_millis(100),
            Duration::from_millis(1200),
            min_iters,
        );
        report
            .entries
            .push(measure_fn(name, run, warmup, budget, min_iters));
    }
    let sums: Vec<(&str, usize)> = report
        .entries
        .iter()
        .map(|e| (e.name, e.checksum))
        .collect();
    assert!(
        sums.windows(2).all(|w| w[0].1 == w[1].1),
        "ingestion/load paths disagree: {sums:?}"
    );
    report
}

/// Speedup pairs reported in `BENCH_pr7.json` — one per optimisation.
pub fn speedup_pairs() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "pr7/ingest/whole-file",
            "pr7/ingest/streaming",
            "ingest_streaming_vs_whole_file",
        ),
        (
            "pr7/load/compact-decode",
            "pr7/load/kcsr-borrow",
            "load_kcsr_borrow_vs_compact_decode",
        ),
    ]
}

/// Ingest throughput of a measured entry, in edge lines per second.
fn edge_lines_per_sec(report: &Report, name: &str) -> Option<f64> {
    let e = report.entry(name)?;
    if e.mean_ns > 0.0 {
        Some(workload().cfg.num_edge_lines() as f64 / (e.mean_ns / 1e9))
    } else {
        None
    }
}

/// JSON payload for `BENCH_pr7.json` (hand-assembled like the other bench
/// reports; no third-party serializer in the offline environment).
pub fn render_json(report: &Report) -> String {
    let w = workload();
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 7,\n");
    out.push_str(
        "  \"description\": \"SNAP-scale ingestion and the zero-copy graph format: whole-file \
         GraphBuilder ingestion (per-vertex Vec adjacency) vs the streaming loader (chunked \
         parse, parallel run sort, k-way merge straight into CSR) on a streamed ~1M-line \
         community-ring edge list, and delta+varint compact decode vs borrowing the aligned \
         KCSR v3 file in place (validated, zero decode). Checksums are identical across all \
         four paths. Single-process wall-clock means on the build container; on 1 core the \
         parallel chunk sort degrades to sequential, so the ingest ratio is a floor — the \
         borrow-vs-decode ratio is core-count independent.\",\n",
    );
    out.push_str(&format!(
        "  \"workloads\": {{\n    \"graph\": {{\"vertices\": {}, \"edges\": {}, \
         \"edge_lines\": {}, \"communities\": {}, \"community_size\": {}}},\n    \
         \"files\": {{\"edge_list_bytes\": {}, \"kcsr_bytes\": {}, \"compact_bytes\": {}}},\n    \
         \"peak_bytes_proxy\": {{\"streaming\": {}, \"whole_file\": {}}}\n  }},\n",
        w.num_vertices,
        w.num_edges,
        w.cfg.num_edge_lines(),
        w.cfg.communities,
        w.cfg.community_size,
        w.edge_file_bytes,
        w.kcsr_bytes,
        w.compact_bytes,
        w.streaming_peak_bytes,
        w.whole_file_peak_bytes,
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
            e.name,
            e.mean_ns,
            e.iterations,
            e.checksum,
            if i + 1 < report.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let mut parts = Vec::new();
    for name in ["pr7/ingest/streaming", "pr7/ingest/whole-file"] {
        if let Some(rate) = edge_lines_per_sec(report, name) {
            let label = name.rsplit('/').next().unwrap().replace('-', "_");
            parts.push(format!("    \"{label}\": {rate:.0}"));
        }
    }
    out.push_str("  \"edge_lines_per_sec\": {\n");
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"speedups\": {\n");
    let mut parts = Vec::new();
    for (baseline, contender, label) in speedup_pairs() {
        if let Some(s) = report.speedup(baseline, contender) {
            parts.push(format!("    \"{label}\": {s:.3}"));
        }
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_complete_and_well_formed() {
        let report = run_all(true);
        assert_eq!(report.entries.len(), 4);
        // All four paths fingerprint the same graph (also asserted inside
        // run_all; restated here so a failure names this test).
        let first = report.entries[0].checksum;
        assert!(report.entries.iter().all(|e| e.checksum == first));
        let json = render_json(&report);
        assert!(json.contains("\"pr\": 7"));
        assert!(json.contains("ingest_streaming_vs_whole_file"));
        assert!(json.contains("load_kcsr_borrow_vs_compact_decode"));
        assert!(json.contains("edge_lines_per_sec"));
        assert!(json.trim_end().ends_with('}'));
        // The smoke workload really is the miniature ring.
        let w = workload();
        assert!(w.num_vertices > 0 && w.num_edges > 0);
        assert!(w.kcsr_bytes > 0 && w.compact_bytes > 0);
        // The aligned format trades bytes for zero decode; it must be the
        // larger of the two binary files (u32 words vs varint gaps).
        assert!(w.kcsr_bytes >= w.compact_bytes);
    }
}
