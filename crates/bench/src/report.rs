//! Plain-text table / series formatting used by every experiment.
//!
//! The harness prints the same rows and series the paper reports, in a format
//! that is easy to diff and to paste into `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are converted to strings by the caller).
    pub fn add_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats a float with a sensible number of significant digits for a report.
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.4}")
    }
}

/// Formats a duration in seconds with millisecond resolution.
pub fn fmt_secs(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

/// Formats a byte count as mebibytes.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio as a percentage.
pub fn fmt_percent(ratio: f64) -> String {
    format!("{:.0}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_row(vec!["b".into(), "12345".into()]);
        let text = t.render();
        assert!(text.contains("## Demo"));
        assert!(text.contains("alpha"));
        assert!(text.contains("12345"));
        assert_eq!(t.num_rows(), 2);
        // Header columns aligned: "name " padded to at least 5 chars.
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.1234567), "0.1235");
        assert_eq!(fmt_f64(3.257), "3.26");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_percent(0.5), "50%");
        assert_eq!(fmt_mib(1024 * 1024), "1.00");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
