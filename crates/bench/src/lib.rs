//! Benchmark harness for the k-VCC enumeration library.
//!
//! One module per table/figure of the paper's evaluation (§6); the
//! `kvcc-bench` binary dispatches to them and prints the same rows/series the
//! paper reports. Criterion micro-benchmarks live under `benches/`.
//!
//! Every experiment takes a [`kvcc_datasets::suite::SuiteScale`]-like scale so the whole
//! evaluation can be regenerated quickly (`tiny`) or at the paper-like
//! parameter points (`small`, the default; `medium` for longer runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod legacy;
pub mod pr1;
pub mod pr10;
pub mod pr2;
pub mod pr3;
pub mod pr4;
pub mod pr5;
pub mod pr6;
pub mod pr7;
pub mod pr8;
pub mod pr9;
pub mod report;

pub use report::Table;

use kvcc_datasets::suite::SuiteScale;

/// Parses a `--scale` argument value.
pub fn parse_scale(name: &str) -> Option<SuiteScale> {
    match name.to_ascii_lowercase().as_str() {
        "tiny" => Some(SuiteScale::Tiny),
        "small" => Some(SuiteScale::Small),
        "medium" => Some(SuiteScale::Medium),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("tiny"), Some(SuiteScale::Tiny));
        assert_eq!(parse_scale("SMALL"), Some(SuiteScale::Small));
        assert_eq!(parse_scale("medium"), Some(SuiteScale::Medium));
        assert_eq!(parse_scale("huge"), None);
    }
}
