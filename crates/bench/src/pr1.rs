//! PR 1 performance baseline: vec-adjacency vs CSR substrates and legacy vs
//! CSR/scratch-arena vs parallel enumeration on the planted-partition suite.
//!
//! Shared by the `pr1-bench` binary (which writes `BENCH_pr1.json`) and the
//! `pr1_substrate` criterion bench. Timing here is intentionally simple —
//! warm-up, then a fixed wall-clock budget of repetitions, reporting the mean
//! — because the point is to record the *trajectory* of the refactor, not
//! publishable micro-benchmarks.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::traversal::bfs_distances;
use kvcc_graph::{CsrGraph, UndirectedGraph};

use crate::legacy::legacy_enumerate;

/// One benchmark case: a name plus a closure returning a checksum (to defeat
/// dead-code elimination and to cross-check that compared paths agree).
#[derive(Clone, Copy)]
pub struct Case {
    /// Display name of the case.
    pub name: &'static str,
    /// The workload.
    pub run: fn() -> usize,
}

/// The planted-partition graph used by the substrate-primitive cases (also
/// the peel workload of the PR 6 section).
pub(crate) fn substrate_graphs() -> &'static (UndirectedGraph, CsrGraph) {
    static GRAPHS: OnceLock<(UndirectedGraph, CsrGraph)> = OnceLock::new();
    GRAPHS.get_or_init(|| {
        let planted = planted_communities(&PlantedConfig {
            num_communities: 8,
            chain_length: 4,
            // Large enough that the adjacency no longer fits in L1/L2 and the
            // cache behaviour of the representation matters.
            background_vertices: 60_000,
            background_edges_per_vertex: 4,
            seed: 7,
            ..PlantedConfig::default()
        });
        let csr = CsrGraph::from_view(&planted.graph);
        (planted.graph, csr)
    })
}

/// The planted-partition graph used by the end-to-end enumeration cases
/// (smaller, because the legacy path is slow).
fn enumeration_graph() -> &'static (UndirectedGraph, u32) {
    static GRAPH: OnceLock<(UndirectedGraph, u32)> = OnceLock::new();
    GRAPH.get_or_init(|| {
        let config = PlantedConfig {
            num_communities: 6,
            chain_length: 3,
            community_size: (10, 14),
            background_vertices: 600,
            seed: 11,
            ..PlantedConfig::default()
        };
        let k = config.k as u32;
        (planted_communities(&config).graph, k)
    })
}

fn bfs_vec() -> usize {
    let (g, _) = substrate_graphs();
    bfs_distances(g, 0)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .map(|d| d as usize)
        .sum()
}

fn bfs_csr() -> usize {
    let (_, g) = substrate_graphs();
    bfs_distances(g, 0)
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .map(|d| d as usize)
        .sum()
}

fn kcore_vec() -> usize {
    let (g, _) = substrate_graphs();
    k_core_vertices(g, 4).len()
}

fn kcore_csr() -> usize {
    let (_, g) = substrate_graphs();
    k_core_vertices(g, 4).len()
}

fn enum_legacy() -> usize {
    let (g, k) = enumeration_graph();
    legacy_enumerate(g, *k, &KvccOptions::default())
        .iter()
        .map(|c| c.len())
        .sum()
}

fn enum_csr_sequential() -> usize {
    let (g, k) = enumeration_graph();
    let r = enumerate_kvccs(g, *k, &KvccOptions::default()).unwrap();
    r.iter().map(|c| c.len()).sum()
}

fn enum_csr_parallel() -> usize {
    let (g, k) = enumeration_graph();
    let r = enumerate_kvccs(g, *k, &KvccOptions::parallel()).unwrap();
    r.iter().map(|c| c.len()).sum()
}

/// Substrate-primitive cases: the same operation on both representations.
pub fn substrate_cases() -> Vec<Case> {
    vec![
        Case {
            name: "bfs/vec-adjacency",
            run: bfs_vec,
        },
        Case {
            name: "bfs/csr",
            run: bfs_csr,
        },
        Case {
            name: "kcore/vec-adjacency",
            run: kcore_vec,
        },
        Case {
            name: "kcore/csr",
            run: kcore_csr,
        },
    ]
}

/// End-to-end enumeration cases: seed path vs refactored paths.
pub fn enumeration_cases() -> Vec<Case> {
    vec![
        Case {
            name: "enumerate/legacy-vec-sequential",
            run: enum_legacy,
        },
        Case {
            name: "enumerate/csr-arena-sequential",
            run: enum_csr_sequential,
        },
        Case {
            name: "enumerate/csr-arena-parallel",
            run: enum_csr_parallel,
        },
    ]
}

/// One timed result.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Case name.
    pub name: &'static str,
    /// Mean wall-clock nanoseconds per run.
    pub mean_ns: f64,
    /// Number of measured runs.
    pub iterations: u64,
    /// Workload checksum (identical across compared paths).
    pub checksum: usize,
}

/// The collected PR 1 report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All measured entries, in execution order.
    pub entries: Vec<Entry>,
}

/// Times one named workload: warm-up, then at least `min_iters` measured
/// runs, continuing until `budget` is spent (capped at `min_iters * 64`
/// runs). Shared by the pr1/pr2/pr3 report sections so every section
/// measures identically.
pub(crate) fn measure_fn(
    name: &'static str,
    run: fn() -> usize,
    warmup: Duration,
    budget: Duration,
    min_iters: u64,
) -> Entry {
    let start = Instant::now();
    let mut checksum = 0usize;
    while start.elapsed() < warmup {
        checksum = std::hint::black_box(run());
    }
    let mut total = Duration::ZERO;
    let mut iterations = 0u64;
    while iterations < min_iters || (total < budget && iterations < min_iters * 64) {
        let t = Instant::now();
        checksum = std::hint::black_box(run());
        total += t.elapsed();
        iterations += 1;
    }
    Entry {
        name,
        mean_ns: total.as_nanos() as f64 / iterations as f64,
        iterations,
        checksum,
    }
}

/// Resolves a case's `(warm-up, budget, min-iterations)` triple, honouring
/// smoke mode (exactly one cold run per case; the `--smoke` CI contract).
pub(crate) fn case_budget(
    smoke: bool,
    warmup: Duration,
    budget: Duration,
    min_iters: u64,
) -> (Duration, Duration, u64) {
    if smoke {
        (Duration::ZERO, Duration::ZERO, 1)
    } else {
        (warmup, budget, min_iters)
    }
}

impl Report {
    /// Looks up a measured entry by case name.
    pub fn entry(&self, name: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Speedup of `contender` over `baseline`, by case name.
    pub fn speedup(&self, baseline: &str, contender: &str) -> Option<f64> {
        let b = self.entry(baseline)?;
        let c = self.entry(contender)?;
        if c.mean_ns > 0.0 {
            Some(b.mean_ns / c.mean_ns)
        } else {
            None
        }
    }

    /// Human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::from("PR 1 baseline (planted-partition suite)\n");
        for e in &self.entries {
            out.push_str(&format!(
                "{:<36} {:>14.1} ns/run  ({} runs, checksum {})\n",
                e.name, e.mean_ns, e.iterations, e.checksum
            ));
        }
        for (b, c, label) in self.speedup_pairs() {
            if let Some(s) = self.speedup(b, c) {
                out.push_str(&format!("speedup {label}: {s:.2}x\n"));
            }
        }
        out
    }

    fn speedup_pairs(&self) -> Vec<(&'static str, &'static str, &'static str)> {
        vec![
            ("bfs/vec-adjacency", "bfs/csr", "bfs csr-vs-vec"),
            ("kcore/vec-adjacency", "kcore/csr", "kcore csr-vs-vec"),
            (
                "enumerate/legacy-vec-sequential",
                "enumerate/csr-arena-sequential",
                "enum csr-seq-vs-legacy",
            ),
            (
                "enumerate/legacy-vec-sequential",
                "enumerate/csr-arena-parallel",
                "enum csr-par-vs-legacy",
            ),
        ]
    }

    /// JSON payload for `BENCH_pr1.json` (no third-party serializer in the
    /// offline environment, so it is assembled by hand).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"pr\": 1,\n");
        out.push_str(
            "  \"description\": \"vec-adjacency vs CSR substrate and legacy vs CSR+scratch-arena \
             (sequential/parallel) KVCC-ENUM on the planted-partition suite\",\n",
        );
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        ));
        out.push_str("  \"results\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
                e.name,
                e.mean_ns,
                e.iterations,
                e.checksum,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"speedups\": {\n");
        let pairs = self.speedup_pairs();
        let mut parts = Vec::new();
        for (b, c, label) in pairs {
            if let Some(s) = self.speedup(b, c) {
                parts.push(format!("    \"{}\": {:.3}", label.replace(' ', "_"), s));
            }
        }
        out.push_str(&parts.join(",\n"));
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Runs every case and collects the report. Also cross-checks that all
/// enumeration paths agree on their checksum (identical component content).
///
/// With `smoke` every case runs exactly once with no warm-up — the CI mode
/// that keeps the bench binary compiling and running without spending bench
/// budget.
pub fn run_all(smoke: bool) -> Report {
    let mut report = Report::default();
    let substrate_budget = case_budget(
        smoke,
        Duration::from_millis(100),
        Duration::from_millis(400),
        10,
    );
    let enumeration_budget =
        case_budget(smoke, Duration::from_millis(200), Duration::from_secs(2), 5);
    for case in substrate_cases() {
        let (warmup, budget, min_iters) = substrate_budget;
        report
            .entries
            .push(measure_fn(case.name, case.run, warmup, budget, min_iters));
    }
    for case in enumeration_cases() {
        let (warmup, budget, min_iters) = enumeration_budget;
        report
            .entries
            .push(measure_fn(case.name, case.run, warmup, budget, min_iters));
    }
    let sums: Vec<usize> = [
        "enumerate/legacy-vec-sequential",
        "enumerate/csr-arena-sequential",
        "enumerate/csr-arena-parallel",
    ]
    .iter()
    .filter_map(|n| report.entry(n).map(|e| e.checksum))
    .collect();
    assert!(
        sums.windows(2).all(|w| w[0] == w[1]),
        "enumeration paths disagree: {sums:?}"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_produce_matching_checksums() {
        assert_eq!(enum_legacy(), enum_csr_sequential());
        assert_eq!(enum_csr_sequential(), enum_csr_parallel());
        assert_eq!(bfs_vec(), bfs_csr());
        assert_eq!(kcore_vec(), kcore_csr());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = Report {
            entries: vec![Entry {
                name: "bfs/csr",
                mean_ns: 12.5,
                iterations: 3,
                checksum: 42,
            }],
        };
        let json = report.render_json();
        assert!(json.contains("\"results\""));
        assert!(json.contains("\"bfs/csr\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
