//! PR 8 performance record: socket transports and the self-healing shard
//! coordinator.
//!
//! Two questions, one table each:
//!
//! * **What does a real socket cost?** — `rpc/*` rows time one framed
//!   work-item round trip (request encode → frame → transport → shard
//!   enumeration → response decode) over the in-process loopback and over a
//!   real TCP connection to a [`ShardPool`]. The spread between them is the
//!   per-item price of leaving the process, which bounds how fine the
//!   coordinator should slice work before transport overhead dominates.
//! * **What does failure handling cost?** — `fault_rates` rows run the
//!   full sharded enumeration (two loopback workers, seeded
//!   [`FaultTransport`] chaos) at 0‰, 50‰ and 200‰ message-drop rates and
//!   record wall-clock completion plus the coordinator's retry/requeue/
//!   timeout counters. The 0‰ row is the coordinator's bookkeeping
//!   overhead; the lossy rows show completion degrading gracefully (retries
//!   grow, output never changes — every run asserts parity against the
//!   in-process enumeration).
//!
//! Chaos timing is deadline-driven (item timeouts, backoffs), so the lossy
//! means measure the *recovery machinery*, not enumeration throughput.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use kvcc_graph::UndirectedGraph;
use kvcc_service::{
    call, run_shard_worker, CoordinatorConfig, CsrWorkItem, EngineConfig, FaultPlan,
    FaultTransport, GraphId, KvccOptions, LoopbackTransport, QueryRequest, QueryResponse, Request,
    RequestBody, ResponseBody, ServiceEngine, ShardPool, SocketOptions, TcpTransport, Transport,
};

use crate::pr1::{case_budget, measure_fn, Report};

/// Disjoint cliques: the k-core splits into one component per clique, so
/// `partition_work` hands the fleet a real multi-item worklist.
const CLIQUE_SIZES: [u32; 10] = [8, 10, 12, 14, 9, 11, 13, 8, 10, 12];
const K: u32 = 3;

fn cliques_graph() -> UndirectedGraph {
    let mut edges = Vec::new();
    let mut base = 0u32;
    for size in CLIQUE_SIZES {
        for i in 0..size {
            for j in (i + 1)..size {
                edges.push((base + i, base + j));
            }
        }
        base += size;
    }
    UndirectedGraph::from_edges(base as usize, edges).unwrap()
}

/// Long-lived benchmark state: one engine, one loopback worker, one TCP
/// pool + connection, and a representative work item — built once so the
/// timed path is exactly one round trip.
struct Pr8Workload {
    engine: ServiceEngine,
    id: GraphId,
    item: CsrWorkItem,
    loopback: LoopbackTransport,
    _loopback_worker: std::thread::JoinHandle<()>,
    tcp: TcpTransport,
    _pool: ShardPool,
    next_id: AtomicU64,
}

fn workload() -> &'static Pr8Workload {
    static ACTIVE: OnceLock<Pr8Workload> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let engine = ServiceEngine::new(EngineConfig::default());
        let id = engine.load_graph("pr8-cliques", &cliques_graph());
        let mut items = engine.partition_work(id, K).expect("cliques partition");
        let item = items.pop().expect("at least one work item");
        let (client, server) = LoopbackTransport::pair();
        let worker = std::thread::spawn(move || {
            let _ = run_shard_worker(&server, &KvccOptions::default());
        });
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback tcp");
        let pool = ShardPool::serve_tcp(
            listener,
            SocketOptions::default(),
            KvccOptions::default(),
            4,
        )
        .expect("start shard pool");
        let tcp = TcpTransport::connect(
            pool.local_addr().expect("tcp pool has an address"),
            SocketOptions::default(),
        )
        .expect("connect to shard pool");
        Pr8Workload {
            engine,
            id,
            item,
            loopback: client,
            _loopback_worker: worker,
            tcp,
            _pool: pool,
            next_id: AtomicU64::new(1),
        }
    })
}

/// One framed work-item round trip over `transport`; the checksum is the
/// total vertex count of the returned components.
fn round_trip(transport: &dyn Transport) -> usize {
    let w = workload();
    let request = Request {
        request_id: w.next_id.fetch_add(1, Ordering::Relaxed),
        deadline_hint_ms: None,
        body: RequestBody::WorkItem {
            k: K,
            item: w.item.clone(),
        },
    };
    let response = call(transport, &request).expect("bench round trip");
    match response.body {
        ResponseBody::Query(QueryResponse::Components(c)) => {
            c.iter().map(|comp| comp.vertices().len()).sum()
        }
        other => panic!("expected components, got {other:?}"),
    }
}

fn rpc_loopback() -> usize {
    round_trip(&workload().loopback)
}

fn rpc_tcp() -> usize {
    round_trip(&workload().tcp)
}

/// One fault-rate row: sharded completion time and the coordinator's
/// failure-handling counters at a given message-drop rate.
#[derive(Clone, Debug)]
pub struct FaultRateRow {
    /// Per-mille message-drop probability on both chaotic workers.
    pub drop_per_mille: u32,
    /// Completed runs behind the mean.
    pub runs: u64,
    /// Mean wall-clock nanoseconds per sharded enumeration.
    pub mean_ns: f64,
    /// Total re-sends across the runs.
    pub retries: u64,
    /// Total requeues off dead/quarantined workers across the runs.
    pub requeues: u64,
    /// Total per-item deadline expiries across the runs.
    pub timeouts: u64,
    /// Total items finished by coordinator-local degradation.
    pub local_fallbacks: u64,
    /// Components per run (identical across rates and to the in-process
    /// enumeration — asserted, not assumed).
    pub components: usize,
}

/// Runs the full chaos pipeline at one drop rate: two loopback shard
/// workers behind seeded [`FaultTransport`]s, the self-healing coordinator
/// in front, parity asserted on every run.
pub fn fault_rate_probe(drop_per_mille: u32, runs: u64) -> FaultRateRow {
    let w = workload();
    let direct = match w
        .engine
        .execute(&QueryRequest::EnumerateKvccs { graph: w.id, k: K })
    {
        QueryResponse::Components(c) => c,
        other => panic!("expected components, got {other:?}"),
    };
    let config = CoordinatorConfig {
        item_timeout: Duration::from_millis(50),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        probe_delay: Duration::from_millis(5),
        ..CoordinatorConfig::default()
    };
    let mut row = FaultRateRow {
        drop_per_mille,
        runs,
        mean_ns: 0.0,
        retries: 0,
        requeues: 0,
        timeouts: 0,
        local_fallbacks: 0,
        components: direct.len(),
    };
    let mut total = Duration::ZERO;
    for run in 0..runs {
        let mut clients = Vec::new();
        let mut worker_threads = Vec::new();
        for shard in 0..2u64 {
            let (client, server) = LoopbackTransport::pair();
            clients.push(FaultTransport::new(
                client,
                FaultPlan {
                    seed: 0xC0FFEE ^ (run * 7919 + shard),
                    drop_per_mille,
                    ..FaultPlan::default()
                },
            ));
            worker_threads.push(std::thread::spawn(move || {
                let _ = run_shard_worker(&server, &KvccOptions::default());
            }));
        }
        let shards: Vec<&dyn Transport> = clients.iter().map(|c| c as &dyn Transport).collect();
        let start = Instant::now();
        let outcome = w
            .engine
            .enumerate_sharded_with(w.id, K, &shards, &config)
            .expect("chaotic fleets still complete");
        total += start.elapsed();
        assert_eq!(
            outcome.components, direct,
            "parity must hold at {drop_per_mille} per mille"
        );
        row.retries += outcome.stats.retries;
        row.requeues += outcome.stats.requeues;
        row.timeouts += outcome.stats.timeouts;
        row.local_fallbacks += outcome.stats.local_fallbacks;
        drop(shards);
        drop(clients);
        for worker in worker_threads {
            worker.join().unwrap();
        }
    }
    row.mean_ns = total.as_nanos() as f64 / runs as f64;
    row
}

/// The fault-rate sweep reported in `BENCH_pr8.json`.
pub fn fault_rate_rows(smoke: bool) -> Vec<FaultRateRow> {
    let runs = if smoke { 1 } else { 5 };
    [0u32, 50, 200]
        .into_iter()
        .map(|rate| fault_rate_probe(rate, runs))
        .collect()
}

/// Runs the transport round-trip rows.
pub fn run_all(smoke: bool) -> Report {
    let (warmup, budget, min_iters) = case_budget(
        smoke,
        Duration::from_millis(50),
        Duration::from_millis(300),
        30,
    );
    let mut report = Report::default();
    report.entries.push(measure_fn(
        "pr8/rpc/loopback",
        rpc_loopback,
        warmup,
        budget,
        min_iters,
    ));
    report.entries.push(measure_fn(
        "pr8/rpc/tcp",
        rpc_tcp,
        warmup,
        budget,
        min_iters,
    ));
    assert_eq!(
        report.entries[0].checksum, report.entries[1].checksum,
        "both transports must enumerate the same item identically"
    );
    report
}

/// Ratio pairs reported in `BENCH_pr8.json`: how much cheaper the
/// in-process loopback is than a real socket (speedup of contender
/// `loopback` over baseline `tcp`).
pub fn speedup_pairs() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![("pr8/rpc/tcp", "pr8/rpc/loopback", "loopback_vs_tcp")]
}

/// JSON payload for `BENCH_pr8.json` (hand-assembled like the other
/// sections).
pub fn render_json(report: &Report, fault_rates: &[FaultRateRow]) -> String {
    let g = cliques_graph();
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 8,\n");
    out.push_str(
        "  \"description\": \"socket transport overhead (loopback vs tcp work-item round trip) \
         and self-healing coordinator completion under seeded message loss\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"vertices\": {}, \"edges\": {}, \"k\": {}, \"work_items\": {}}},\n",
        g.num_vertices(),
        g.num_edges(),
        K,
        CLIQUE_SIZES.len()
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
            e.name,
            e.mean_ns,
            e.iterations,
            e.checksum,
            if i + 1 < report.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"fault_rates\": [\n");
    for (i, row) in fault_rates.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"drop_per_mille\": {}, \"runs\": {}, \"mean_ns\": {:.1}, \"retries\": {}, \
             \"requeues\": {}, \"timeouts\": {}, \"local_fallbacks\": {}, \"components\": {}}}{}\n",
            row.drop_per_mille,
            row.runs,
            row.mean_ns,
            row.retries,
            row.requeues,
            row.timeouts,
            row.local_fallbacks,
            row.components,
            if i + 1 < fault_rates.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"ratios\": {\n");
    let mut parts = Vec::new();
    for (baseline, contender, label) in speedup_pairs() {
        if let Some(s) = report.speedup(baseline, contender) {
            parts.push(format!("    \"{label}\": {s:.3}"));
        }
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_transports_agree_and_the_sweep_keeps_parity() {
        let report = run_all(true);
        assert_eq!(report.entries.len(), 2);
        assert!(report.entries.iter().all(|e| e.checksum > 0));
        let rows = fault_rate_rows(true);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].components, CLIQUE_SIZES.len());
        let json = render_json(&report, &rows);
        assert!(json.contains("\"fault_rates\""));
        assert!(json.contains("loopback_vs_tcp"));
        assert!(json.trim_end().ends_with('}'));
    }
}
