//! `kvcc-bench` — regenerate the tables and figures of the paper's evaluation.
//!
//! ```text
//! kvcc-bench <experiment> [--scale tiny|small|medium]
//!
//! experiments:
//!   table1   network statistics of the datasets
//!   table2   proportion of vertices pruned by each sweep rule
//!   fig7     average diameter of k-CC vs k-ECC vs k-VCC
//!   fig8     average edge density
//!   fig9     average clustering coefficient
//!   fig10    processing time of VCCE / VCCE-N / VCCE-G / VCCE*
//!   fig11    number of k-VCCs
//!   fig12    memory usage of VCCE*
//!   fig13    scalability (vertex / edge sampling)
//!   fig14    collaboration case study
//!   all      everything above, in order
//! ```

use kvcc_bench::experiments::effectiveness::Metric;
use kvcc_bench::experiments::{effectiveness, fig10, fig11, fig12, fig13, fig14, table1, table2};
use kvcc_bench::parse_scale;
use kvcc_datasets::suite::SuiteScale;

fn usage() -> ! {
    eprintln!(
        "usage: kvcc-bench <table1|table2|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|all> \
         [--scale tiny|small|medium]"
    );
    std::process::exit(2);
}

fn run_one(name: &str, scale: SuiteScale) -> bool {
    let started = std::time::Instant::now();
    let output = match name {
        "table1" => table1::run(scale).render(),
        "table2" => table2::run(scale).render(),
        "fig7" => effectiveness::run(scale, Metric::Diameter).render(),
        "fig8" => effectiveness::run(scale, Metric::EdgeDensity).render(),
        "fig9" => effectiveness::run(scale, Metric::Clustering).render(),
        "fig10" => fig10::run(scale).render(),
        "fig11" => fig11::run(scale).render(),
        "fig12" => fig12::run(scale).render(),
        "fig13" => fig13::run(scale).render(),
        "fig14" => fig14::run().render(),
        _ => return false,
    };
    println!("{output}");
    eprintln!("[{name} completed in {:.1?}]\n", started.elapsed());
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = SuiteScale::Small;
    let mut experiment = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| parse_scale(s))
                    .unwrap_or_else(|| usage());
            }
            name if experiment.is_none() => experiment = Some(name.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let experiment = experiment.unwrap_or_else(|| usage());

    println!("# k-VCC evaluation harness (scale: {scale:?})\n");
    if experiment == "all" {
        for name in [
            "table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
        ] {
            run_one(name, scale);
        }
    } else if !run_one(&experiment, scale) {
        usage();
    }
}
