//! PR 9 performance record: mutable graphs — incremental index maintenance
//! versus full rebuilds over a replayed edge-update stream.
//!
//! Two views of the same question (*what does an update batch cost?*):
//!
//! * **Representative-batch timings** — `incremental/*` rows clone the base
//!   [`ConnectivityIndex`] and repair it through
//!   [`ConnectivityIndex::apply_updates`] for one small batch; `rebuild/*`
//!   rows build a fresh index on the post-batch graph. The checksum of both
//!   rows is the FNV-1a fingerprint of the resulting index bytes, asserted
//!   identical — the speedup ratio is only meaningful because the outputs
//!   are byte-identical.
//! * **Stream replay** — the `replay` table walks the whole generated
//!   update stream ([`kvcc_datasets::diffs`]) batch by batch, maintaining
//!   one live index incrementally while timing a from-scratch rebuild at
//!   every step, and records the per-batch blast radius
//!   (`affected_vertices`), repair size (`repaired_nodes`), whether the
//!   repair fell back to a full rebuild, and the per-batch speedup. Parity
//!   is asserted at every batch.
//!
//! The two workloads sit at the two ends of the blast-radius model:
//!
//! * **`planted`** — many *disjoint* dense blocks with a triadic-closure
//!   update stream (`locality: 1.0`), so every update stays inside one
//!   block's level-1 component. The blast radius is a handful of blocks and
//!   the incremental splice beats the full rebuild — this is the regime the
//!   subsystem is built for (and the acceptance ratio).
//! * **`collaboration`** — one *connected* graph with a uniform stream.
//!   Every endpoint's level-1 root is the whole graph, so every batch
//!   escalates to the full-rebuild fallback; the row documents that the
//!   fallback keeps the worst case at rebuild cost (ratio ≈ 1×) instead of
//!   degrading below it.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use kvcc::{ConnectivityIndex, KvccOptions};
use kvcc_datasets::collaboration::{collaboration_graph, CollaborationConfig};
use kvcc_datasets::diffs::{diff_stream, DiffStreamConfig};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::{CsrGraph, DeltaGraph, EdgeUpdate};

use crate::pr1::{case_budget, measure_fn, Report};

/// Batches per generated stream; small batches keep the blast radius small,
/// which is the regime incremental maintenance is built for.
const BATCHES: usize = 6;
const BATCH_SIZE: usize = 6;
/// Updates per batch on the disjoint-blocks workload: each update touches
/// one block, so the blast radius stays ≤ `PLANTED_BATCH_SIZE` blocks —
/// well under the half-graph fallback threshold.
const PLANTED_BATCH_SIZE: usize = 4;

/// One dynamic workload: the base graph and index, the generated stream and
/// the post-batch graph snapshots (cumulative: `snapshots[i]` is the graph
/// after batches `0..=i`).
struct Pr9Workload {
    name: &'static str,
    base_index: ConnectivityIndex,
    stream: Vec<Vec<EdgeUpdate>>,
    snapshots: Vec<CsrGraph>,
}

impl Pr9Workload {
    fn new(name: &'static str, base: CsrGraph, config: DiffStreamConfig) -> Self {
        let options = KvccOptions::default();
        let base_index =
            ConnectivityIndex::build(&base, None, &options).expect("base index builds");
        let stream = diff_stream(&base, &config);
        let mut snapshots = Vec::with_capacity(stream.len());
        let mut rolling = DeltaGraph::new(base);
        for batch in &stream {
            rolling.apply(batch).expect("stream endpoints in range");
            snapshots.push(CsrGraph::from_view(&rolling));
        }
        Pr9Workload {
            name,
            base_index,
            stream,
            snapshots,
        }
    }
}

/// The small-blast-radius workload: 24 *disjoint* dense blocks (no chains,
/// no background), updated by a pure triadic-closure stream. Each update's
/// level-1 root is one block, so the repair splices a few blocks while the
/// rebuild re-enumerates all 24.
fn planted_workload() -> &'static Pr9Workload {
    static ACTIVE: OnceLock<Pr9Workload> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let g = planted_communities(&PlantedConfig {
            num_communities: 24,
            chain_length: 1,
            overlap: 0,
            community_size: (10, 14),
            background_vertices: 0,
            attachment_edges_per_community: 0,
            seed: 77,
            ..PlantedConfig::default()
        })
        .graph;
        Pr9Workload::new(
            "planted",
            CsrGraph::from_view(&g),
            DiffStreamConfig {
                batches: BATCHES,
                batch_size: PLANTED_BATCH_SIZE,
                delete_fraction: 0.35,
                locality: 1.0,
                seed: 0x9001,
            },
        )
    })
}

/// The global-blast-radius workload: one connected collaboration graph with
/// a uniform stream. Every batch escalates to the full-rebuild fallback.
fn collaboration_workload() -> &'static Pr9Workload {
    static ACTIVE: OnceLock<Pr9Workload> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let g = collaboration_graph(&CollaborationConfig {
            num_groups: 4,
            group_size: (6, 8),
            pendant_collaborators: 8,
            ..CollaborationConfig::default()
        })
        .graph;
        Pr9Workload::new(
            "collaboration",
            CsrGraph::from_view(&g),
            DiffStreamConfig {
                batches: BATCHES,
                batch_size: BATCH_SIZE,
                delete_fraction: 0.35,
                locality: 0.0,
                seed: 0x9002,
            },
        )
    })
}

/// FNV-1a over the serialised index — the parity fingerprint reported in
/// `BENCH_pr9.json`.
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Incrementally repairs a clone of the workload's base index through its
/// first batch and fingerprints the result.
fn incremental_once(w: &Pr9Workload) -> usize {
    let mut index = w.base_index.clone();
    index
        .apply_updates(&w.snapshots[0], &w.stream[0], &KvccOptions::default())
        .expect("repair succeeds");
    fingerprint(&index.to_bytes()) as usize
}

/// Builds a fresh index on the post-first-batch graph and fingerprints it
/// at the same epoch the incremental path lands on.
fn rebuild_once(w: &Pr9Workload) -> usize {
    let mut index =
        ConnectivityIndex::build(&w.snapshots[0], None, &KvccOptions::default()).expect("builds");
    index.set_epoch(w.base_index.epoch() + 1);
    fingerprint(&index.to_bytes()) as usize
}

fn planted_incremental() -> usize {
    incremental_once(planted_workload())
}

fn planted_rebuild() -> usize {
    rebuild_once(planted_workload())
}

fn collaboration_incremental() -> usize {
    incremental_once(collaboration_workload())
}

fn collaboration_rebuild() -> usize {
    rebuild_once(collaboration_workload())
}

/// One step of the stream replay: blast radius, repair size and the
/// incremental-vs-rebuild timings at that batch.
#[derive(Clone, Debug)]
pub struct ReplayRow {
    /// Workload name (`planted` / `collaboration`).
    pub workload: &'static str,
    /// Batch position in the stream (0-based).
    pub batch: usize,
    /// Updates in the batch.
    pub updates: usize,
    /// Vertices in the repair region (endpoints plus their level-1
    /// components).
    pub affected_vertices: u32,
    /// Forest nodes re-enumerated by the repair (equals the node count when
    /// the repair escalated to a full rebuild).
    pub repaired_nodes: u32,
    /// Whether the blast radius forced the incremental path into a full
    /// rebuild.
    pub rebuilt: bool,
    /// Wall-clock nanoseconds of the incremental repair.
    pub incremental_ns: u128,
    /// Wall-clock nanoseconds of the from-scratch rebuild on the same
    /// post-batch graph.
    pub rebuild_ns: u128,
    /// `rebuild_ns / incremental_ns`.
    pub speedup: f64,
    /// FNV-1a fingerprint of the (identical) index bytes after this batch.
    pub index_fingerprint: u64,
}

/// Replays a workload's whole stream, asserting byte parity at every batch.
fn replay(w: &Pr9Workload, batches: usize) -> Vec<ReplayRow> {
    let options = KvccOptions::default();
    let mut live = w.base_index.clone();
    let mut rows = Vec::new();
    for (i, batch) in w.stream.iter().take(batches).enumerate() {
        let graph = &w.snapshots[i];
        let start = Instant::now();
        let report = live
            .apply_updates(graph, batch, &options)
            .expect("repair succeeds");
        let incremental_ns = start.elapsed().as_nanos();

        let start = Instant::now();
        let mut rebuilt = ConnectivityIndex::build(graph, None, &options).expect("builds");
        let rebuild_ns = start.elapsed().as_nanos();

        rebuilt.set_epoch(live.epoch());
        let live_bytes = live.to_bytes();
        assert_eq!(
            live_bytes,
            rebuilt.to_bytes(),
            "{} batch {i}: incremental repair must be byte-identical to a rebuild",
            w.name
        );
        rows.push(ReplayRow {
            workload: w.name,
            batch: i,
            updates: batch.len(),
            affected_vertices: report.affected_vertices,
            repaired_nodes: report.repaired_nodes,
            rebuilt: report.rebuilt,
            incremental_ns,
            rebuild_ns,
            speedup: rebuild_ns as f64 / (incremental_ns.max(1)) as f64,
            index_fingerprint: fingerprint(&live_bytes),
        });
    }
    rows
}

/// The stream-replay table reported in `BENCH_pr9.json`.
pub fn replay_rows(smoke: bool) -> Vec<ReplayRow> {
    let batches = if smoke { 2 } else { BATCHES };
    let mut rows = replay(planted_workload(), batches);
    rows.extend(replay(collaboration_workload(), batches));
    rows
}

/// Runs the representative-batch rows.
pub fn run_all(smoke: bool) -> Report {
    let (warmup, budget, min_iters) = case_budget(
        smoke,
        Duration::from_millis(50),
        Duration::from_millis(300),
        20,
    );
    let mut report = Report::default();
    for (name, run) in [
        (
            "pr9/planted/incremental",
            planted_incremental as fn() -> usize,
        ),
        ("pr9/planted/rebuild", planted_rebuild),
        ("pr9/collaboration/incremental", collaboration_incremental),
        ("pr9/collaboration/rebuild", collaboration_rebuild),
    ] {
        report
            .entries
            .push(measure_fn(name, run, warmup, budget, min_iters));
    }
    for pair in report.entries.chunks(2) {
        assert_eq!(
            pair[0].checksum, pair[1].checksum,
            "{} and {} must produce byte-identical indexes",
            pair[0].name, pair[1].name
        );
    }
    report
}

/// Ratio pairs reported in `BENCH_pr9.json`: how much cheaper the
/// incremental repair is than the full rebuild it replaces.
pub fn speedup_pairs() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "pr9/planted/rebuild",
            "pr9/planted/incremental",
            "incremental_vs_rebuild_planted",
        ),
        (
            "pr9/collaboration/rebuild",
            "pr9/collaboration/incremental",
            "incremental_vs_rebuild_collaboration",
        ),
    ]
}

/// JSON payload for `BENCH_pr9.json` (hand-assembled like the other
/// sections).
pub fn render_json(report: &Report, replay: &[ReplayRow]) -> String {
    let planted = planted_workload();
    let collab = collaboration_workload();
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 9,\n");
    out.push_str(
        "  \"description\": \"mutable graphs: incremental connectivity-index maintenance vs \
         full rebuild over a replayed batched edge-update stream, byte parity asserted at \
         every batch\",\n",
    );
    out.push_str(&format!(
        "  \"workloads\": [{{\"name\": \"planted\", \"vertices\": {}, \"edges\": {}, \
         \"batches\": {}, \"batch_size\": {}}}, {{\"name\": \"collaboration\", \
         \"vertices\": {}, \"edges\": {}, \"batches\": {}, \"batch_size\": {}}}],\n",
        planted.snapshots[0].num_vertices(),
        planted.snapshots[0].num_edges(),
        planted.stream.len(),
        PLANTED_BATCH_SIZE,
        collab.snapshots[0].num_vertices(),
        collab.snapshots[0].num_edges(),
        collab.stream.len(),
        BATCH_SIZE,
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
            e.name,
            e.mean_ns,
            e.iterations,
            e.checksum,
            if i + 1 < report.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"replay\": [\n");
    for (i, row) in replay.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"batch\": {}, \"updates\": {}, \
             \"affected_vertices\": {}, \"repaired_nodes\": {}, \"rebuilt\": {}, \
             \"incremental_ns\": {}, \"rebuild_ns\": {}, \"speedup\": {:.3}, \
             \"index_fingerprint\": {}}}{}\n",
            row.workload,
            row.batch,
            row.updates,
            row.affected_vertices,
            row.repaired_nodes,
            row.rebuilt,
            row.incremental_ns,
            row.rebuild_ns,
            row.speedup,
            row.index_fingerprint,
            if i + 1 < replay.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"ratios\": {\n");
    let mut parts = Vec::new();
    for (baseline, contender, label) in speedup_pairs() {
        if let Some(s) = report.speedup(baseline, contender) {
            parts.push(format!("    \"{label}\": {s:.3}"));
        }
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_and_rebuild_fingerprints_agree_across_the_replay() {
        let report = run_all(true);
        assert_eq!(report.entries.len(), 4);
        let rows = replay_rows(true);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.updates > 0));
        // The two workloads must land in their designed regimes: the
        // disjoint-blocks stream stays on the incremental splice path, the
        // connected uniform stream escalates to the fallback every batch.
        assert!(
            rows.iter()
                .filter(|r| r.workload == "planted")
                .all(|r| !r.rebuilt),
            "disjoint-blocks batches must stay under the fallback threshold"
        );
        assert!(
            rows.iter()
                .filter(|r| r.workload == "collaboration")
                .all(|r| r.rebuilt),
            "connected-graph batches blast the whole level-1 component"
        );
        let json = render_json(&report, &rows);
        assert!(json.contains("\"replay\""));
        assert!(json.contains("incremental_vs_rebuild_planted"));
        assert!(json.trim_end().ends_with('}'));
    }
}
