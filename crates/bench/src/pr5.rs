//! PR 5 performance record: the work-stealing enumeration runtime under
//! skew, and deadline time-to-interrupt.
//!
//! Two sections, written to `BENCH_pr5.json`:
//!
//! * **scheduling matrix** — a *skewed* planted suite (one giant chained
//!   community component whose cut/partition loop dominates, plus many
//!   small communities that drain instantly) enumerated under
//!   {shared-queue, work-stealing} × {static, skew-split} scheduling with a
//!   4-worker pool, next to the sequential baseline. Checksums assert every
//!   row reports the identical component set — scheduling must never change
//!   the answer. (The container CI box has a single core, so the wall-clock
//!   ratios mostly record lock/scheduling overhead there; re-run on real
//!   hardware for the scaling curve, like the pr1 rows.)
//! * **deadline** — repeated runs of the dominant workload with a deadline
//!   far below the full runtime, recording the *time to interrupt*: how long
//!   after the deadline the cooperative checkpoints (per work item, per
//!   `LOC-CUT` probe, per Dinic BFS phase) actually returned
//!   [`kvcc::KvccError::Interrupted`]. The acceptance target is a p99
//!   cancel latency well under one full enumeration.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use kvcc::{enumerate_kvccs, Budget, KvccError, KvccOptions, Scheduler};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::UndirectedGraph;

use crate::pr1::{case_budget, measure_fn, Report};

/// Split threshold used by the skew-split rows: roughly one small
/// community's cost, so the giant component's pieces fan out while the
/// small items stay whole.
pub const SPLIT_THRESHOLD: u64 = 2_000;

/// Worker count of the parallel rows.
const THREADS: usize = 4;

/// Deadline of the interrupt probe, far below the full runtime.
const DEADLINE_MS: u64 = 4;

/// The skewed workload: one dominant chained-community component (every
/// consecutive pair of blocks overlaps in fewer than `k` vertices, forcing
/// a deep partition cascade) glued to a batch of small, independent
/// communities — the shape where a static schedule leaves workers idle
/// exactly while the hot path needs them.
pub fn workload() -> &'static (UndirectedGraph, u32) {
    static WORKLOAD: OnceLock<(UndirectedGraph, u32)> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let giant = planted_communities(&PlantedConfig {
            num_communities: 28,
            chain_length: 28,
            community_size: (16, 20),
            background_vertices: 2_600,
            background_edges_per_vertex: 3,
            seed: 55,
            ..PlantedConfig::default()
        });
        let small = planted_communities(&PlantedConfig {
            num_communities: 16,
            chain_length: 1,
            community_size: (8, 11),
            background_vertices: 300,
            background_edges_per_vertex: 2,
            seed: 56,
            ..PlantedConfig::default()
        });
        let k = giant.k as u32;
        assert_eq!(giant.k, small.k);
        // Disjoint union: the small communities' vertex ids are offset past
        // the giant graph.
        let offset = giant.graph.num_vertices() as u32;
        let n = giant.graph.num_vertices() + small.graph.num_vertices();
        let mut edges: Vec<(u32, u32)> = giant.graph.edges().collect();
        edges.extend(small.graph.edges().map(|(u, v)| (u + offset, v + offset)));
        (UndirectedGraph::from_edges(n, edges).unwrap(), k)
    })
}

fn enumerate_with(scheduler: Scheduler, threads: usize, split: Option<u64>) -> usize {
    let (g, k) = workload();
    let opts = KvccOptions::default()
        .with_threads(threads)
        .with_scheduler(scheduler)
        .with_split_threshold(split);
    let result = enumerate_kvccs(g, *k, &opts).unwrap();
    result.iter().map(|c| c.len()).sum()
}

fn enum_sequential() -> usize {
    enumerate_with(Scheduler::WorkStealing, 1, None)
}

fn enum_shared_static() -> usize {
    enumerate_with(Scheduler::SharedQueue, THREADS, None)
}

fn enum_shared_split() -> usize {
    enumerate_with(Scheduler::SharedQueue, THREADS, Some(SPLIT_THRESHOLD))
}

fn enum_stealing_static() -> usize {
    enumerate_with(Scheduler::WorkStealing, THREADS, None)
}

fn enum_stealing_split() -> usize {
    enumerate_with(Scheduler::WorkStealing, THREADS, Some(SPLIT_THRESHOLD))
}

/// The deadline section of the report: per-sample time-to-interrupt of the
/// skewed enumeration under a deadline far below the full runtime.
#[derive(Clone, Debug)]
pub struct DeadlineReport {
    /// The armed deadline, in milliseconds.
    pub deadline_ms: u64,
    /// Total wall-clock until [`kvcc::KvccError::Interrupted`] came back,
    /// one entry per sample.
    pub elapsed_ns: Vec<u64>,
    /// Work items that completed before the interrupt (last sample).
    pub partial_work_items: u64,
}

impl DeadlineReport {
    /// The p-th percentile (0–100) of the sampled time-to-interrupt.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let mut sorted = self.elapsed_ns.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// Runs the deadline probe `samples` times on the work-stealing runtime and
/// asserts every run is actually interrupted (the workload runs ≥ 10× the
/// deadline when left alone).
pub fn deadline_probe(samples: usize) -> DeadlineReport {
    let (g, k) = workload();
    let mut elapsed_ns = Vec::with_capacity(samples);
    let mut partial_work_items = 0;
    for _ in 0..samples {
        let opts = KvccOptions::default()
            .with_threads(THREADS)
            .with_budget(Budget::with_timeout(Duration::from_millis(DEADLINE_MS)));
        let start = Instant::now();
        match enumerate_kvccs(g, *k, &opts) {
            Err(KvccError::Interrupted { stats }) => {
                elapsed_ns.push(start.elapsed().as_nanos() as u64);
                assert!(stats.cancelled);
                partial_work_items = stats.work_items_executed;
            }
            Ok(_) => panic!(
                "the skewed workload completed within {DEADLINE_MS} ms; \
                 grow the suite so the deadline row measures an interrupt"
            ),
            Err(e) => panic!("unexpected enumeration error: {e}"),
        }
    }
    DeadlineReport {
        deadline_ms: DEADLINE_MS,
        elapsed_ns,
        partial_work_items,
    }
}

/// One named case with its minimum iteration count.
type Pr5Case = (&'static str, fn() -> usize, u64);

/// Runs the PR 5 scheduling matrix, asserting all rows agree on the
/// component checksum. With `smoke` every case runs exactly once (the CI
/// contract keeping the runtime from bit-rotting).
pub fn run_all(smoke: bool) -> Report {
    let mut report = Report::default();
    let cases: [Pr5Case; 5] = [
        ("pr5/sched/sequential", enum_sequential, 3),
        ("pr5/sched/shared-static", enum_shared_static, 3),
        ("pr5/sched/shared-split", enum_shared_split, 3),
        ("pr5/sched/stealing-static", enum_stealing_static, 3),
        ("pr5/sched/stealing-split", enum_stealing_split, 3),
    ];
    for (name, run, min_iters) in cases {
        let (warmup, budget, min_iters) = case_budget(
            smoke,
            Duration::from_millis(200),
            Duration::from_millis(1500),
            min_iters,
        );
        report
            .entries
            .push(measure_fn(name, run, warmup, budget, min_iters));
    }
    let sums: Vec<usize> = report.entries.iter().map(|e| e.checksum).collect();
    assert!(
        sums.windows(2).all(|w| w[0] == w[1]),
        "scheduling rows must report identical component sets: {sums:?}"
    );
    report
}

/// Speedup pairs reported in `BENCH_pr5.json`.
pub fn speedup_pairs() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "pr5/sched/shared-static",
            "pr5/sched/stealing-static",
            "stealing_vs_shared_static",
        ),
        (
            "pr5/sched/stealing-static",
            "pr5/sched/stealing-split",
            "split_vs_static_stealing",
        ),
        (
            "pr5/sched/shared-static",
            "pr5/sched/stealing-split",
            "stealing_split_vs_shared_static",
        ),
    ]
}

/// JSON payload for `BENCH_pr5.json` (hand-assembled like the other
/// sections). `deadline` carries the interrupt-latency samples.
pub fn render_json(report: &Report, deadline: &DeadlineReport) -> String {
    let (g, k) = workload();
    let full = report
        .entry("pr5/sched/stealing-static")
        .expect("matrix row present")
        .mean_ns;
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 5,\n");
    out.push_str(
        "  \"description\": \"work-stealing vs shared-queue KVCC-ENUM under skew \
         (one dominant chained component + small communities), skew-aware work splitting, \
         and deadline time-to-interrupt\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"vertices\": {}, \"edges\": {}, \"k\": {}, \"threads\": {}, \
         \"split_threshold\": {}}},\n",
        g.num_vertices(),
        g.num_edges(),
        k,
        THREADS,
        SPLIT_THRESHOLD
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
            e.name,
            e.mean_ns,
            e.iterations,
            e.checksum,
            if i + 1 < report.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"deadline\": {{\"deadline_ms\": {}, \"samples\": {}, \"p50_interrupt_ns\": {}, \
         \"p99_interrupt_ns\": {}, \"full_run_ns\": {:.1}, \"p99_over_full\": {:.4}, \
         \"partial_work_items\": {}}},\n",
        deadline.deadline_ms,
        deadline.elapsed_ns.len(),
        deadline.percentile_ns(50.0),
        deadline.percentile_ns(99.0),
        full,
        deadline.percentile_ns(99.0) as f64 / full,
        deadline.partial_work_items
    ));
    out.push_str("  \"ratios\": {\n");
    let mut parts = Vec::new();
    for (baseline, contender, label) in speedup_pairs() {
        if let Some(s) = report.speedup(baseline, contender) {
            parts.push(format!("    \"{label}\": {s:.3}"));
        }
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_rows_agree_on_the_component_set() {
        let sequential = enum_sequential();
        assert!(sequential > 0);
        assert_eq!(sequential, enum_shared_static());
        assert_eq!(sequential, enum_stealing_static());
        assert_eq!(sequential, enum_stealing_split());
    }

    #[test]
    fn split_threshold_actually_defers_on_the_skewed_suite() {
        let (g, k) = workload();
        let opts = KvccOptions::default().with_split_threshold(Some(SPLIT_THRESHOLD));
        let r = enumerate_kvccs(g, *k, &opts).unwrap();
        assert!(r.stats().splits > 0, "the giant component must fan out");
    }

    #[test]
    fn deadline_probe_interrupts_well_before_a_full_run() {
        let (g, k) = workload();
        let full = {
            let start = Instant::now();
            let _ = enumerate_kvccs(g, *k, &KvccOptions::default()).unwrap();
            start.elapsed()
        };
        let probe = deadline_probe(1);
        let interrupt = Duration::from_nanos(probe.percentile_ns(99.0));
        assert!(
            interrupt < full,
            "time-to-interrupt {interrupt:?} must beat the full run {full:?}"
        );
        assert!(full >= Duration::from_millis(10 * probe.deadline_ms));
    }

    #[test]
    fn smoke_report_renders_valid_json_shape() {
        let report = run_all(true);
        assert_eq!(report.entries.len(), 5);
        let json = render_json(&report, &deadline_probe(1));
        assert!(json.contains("\"deadline\""));
        assert!(json.contains("stealing_vs_shared_static"));
        assert!(json.trim_end().ends_with('}'));
    }
}
