//! PR 6 performance record: the hot-loop microarchitecture pass.
//!
//! Three before/after pairs, each isolating one of the PR's optimisations on
//! the workloads of the earlier sections:
//!
//! * `dinic-probe` — a fixed batch of k-bounded `LOC-CUT`-shaped max-flow
//!   probes on small vertex-split networks (one per 128-vertex window of the
//!   reordered planted-10k graph), all answered through **one scratch sized
//!   at the parent arena bound** — the shape the enumeration actually runs,
//!   where a single scratch is reused across every subgraph recursion and
//!   never shrinks. The baseline is a bench-local Dinic whose per-phase
//!   state is a `Vec<bool>` mask cleared with an arena-sized `fill(false)`
//!   (faithful to the seed-era scratch, which cleared its full level array
//!   every phase) vs the production [`kvcc_flow::dinic`] scratch with its
//!   epoch-stamped [`kvcc_graph::EpochBitSet`], which pays only for the
//!   words the probe's BFS actually touches;
//! * `kcore-sweep` — every k-core of the 60k-vertex substrate graph for
//!   `k = 1..=degeneracy` (the level walk a hierarchy/index build performs),
//!   via one flagged `VecDeque` peel **per level** (the seed-era pattern) vs
//!   **one** degree-bucketed [`kvcc_graph::kcore::core_numbers`]
//!   decomposition followed by a threshold filter per level. Single-k
//!   extraction measured *faster* on the flag-and-stack cascade at every
//!   peel depth, so [`kvcc_graph::kcore::k_core_vertices`] keeps it (plus an
//!   allocation-free already-a-k-core fast path); the bucket structure is
//!   applied where it actually wins — amortising the peel across the sweep;
//! * `decode` — every adjacency row of the delta+varint payload of the
//!   reordered planted-10k graph through the one-varint-at-a-time
//!   [`decode_row_scalar_into`] vs the masked-quad [`decode_row_into`]. The
//!   payload's one- and two-byte gap varints interleave varint-by-varint, so
//!   the scalar loop's per-byte continuation branches are unpredictable —
//!   exactly the cost the movemask + recipe-table decode removes.
//!
//! Every pair must produce the identical checksum — the optimised paths are
//! behaviour-invariant by construction, and `run_all` asserts it. Timings are
//! single-process wall-clock means; on a 1-core container the *ratios* are
//! the signal (memory-level parallelism and the wider decode window pay more
//! on multicore hosts — re-run there for publishable numbers).

use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use kvcc_flow::dinic::{max_flow_with_scratch, DinicScratch};
use kvcc_flow::{FlowNetwork, NodeId, INFINITE_CAPACITY};
use kvcc_graph::codec::{decode_row_into, decode_row_scalar_into, encode_row};
use kvcc_graph::kcore::core_numbers;
use kvcc_graph::{CsrGraph, GraphView, VertexId};

use crate::pr1::{case_budget, measure_fn, Report};
use crate::pr3::planted10k;

/// Level assigned to nodes the residual BFS did not reach (mirrors the
/// private constant of [`kvcc_flow::dinic`]).
const UNREACHED: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// dinic-probe: Vec<bool> mask vs epoch-stamped bitset
// ---------------------------------------------------------------------------

/// The pre-PR-6 Dinic scratch: a byte-per-node `Vec<bool>` reached mask that
/// is cleared in full (`O(n)`) at the start of every BFS phase. Everything
/// else mirrors [`kvcc_flow::dinic`] exactly, so the two paths route the
/// same flow and the comparison isolates the mask representation.
struct MaskDinic {
    level: Vec<u32>,
    reached: Vec<bool>,
    iter: Vec<usize>,
    queue: Vec<NodeId>,
    path: Vec<u32>,
}

impl MaskDinic {
    fn new(num_nodes: usize) -> Self {
        MaskDinic {
            level: vec![UNREACHED; num_nodes],
            reached: vec![false; num_nodes],
            iter: vec![0; num_nodes],
            queue: Vec::with_capacity(num_nodes),
            path: Vec::new(),
        }
    }

    #[inline]
    fn level_of(&self, v: NodeId) -> u32 {
        if self.reached[v as usize] {
            self.level[v as usize]
        } else {
            UNREACHED
        }
    }

    #[inline]
    fn set_level(&mut self, v: NodeId, level: u32) {
        self.reached[v as usize] = true;
        self.level[v as usize] = level;
    }
}

fn mask_build_levels(
    net: &FlowNetwork,
    source: NodeId,
    sink: NodeId,
    scratch: &mut MaskDinic,
) -> bool {
    // The full-mask clear the epoch bitset replaces with a counter bump.
    scratch.reached.fill(false);
    scratch.queue.clear();
    scratch.set_level(source, 0);
    scratch.queue.push(source);
    let mut head = 0;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        let lu = scratch.level_of(u);
        for &a in net.arcs_from(u) {
            if net.residual(a) == 0 {
                continue;
            }
            let v = net.arc_head(a);
            if scratch.level_of(v) == UNREACHED {
                scratch.set_level(v, lu + 1);
                scratch.queue.push(v);
            }
        }
    }
    for i in 0..scratch.queue.len() {
        scratch.iter[scratch.queue[i] as usize] = 0;
    }
    scratch.level_of(sink) != UNREACHED
}

fn mask_blocking_path(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
    limit: u32,
    scratch: &mut MaskDinic,
) -> u32 {
    scratch.path.clear();
    let mut current = source;
    loop {
        if current == sink {
            let mut bottleneck = limit;
            for &a in &scratch.path {
                bottleneck = bottleneck.min(net.residual(a));
            }
            for &a in &scratch.path {
                net.push(a, bottleneck);
            }
            return bottleneck;
        }
        let mut advanced = false;
        while scratch.iter[current as usize] < net.arcs_from(current).len() {
            let a = net.arcs_from(current)[scratch.iter[current as usize]];
            let v = net.arc_head(a);
            if net.residual(a) > 0 && scratch.level_of(v) == scratch.level_of(current) + 1 {
                scratch.path.push(a);
                current = v;
                advanced = true;
                break;
            }
            scratch.iter[current as usize] += 1;
        }
        if advanced {
            continue;
        }
        scratch.set_level(current, UNREACHED);
        match scratch.path.pop() {
            Some(last) => {
                let tail = net.arc_head(last ^ 1);
                scratch.iter[tail as usize] += 1;
                current = tail;
            }
            None => return 0,
        }
    }
}

fn mask_max_flow(
    net: &mut FlowNetwork,
    source: NodeId,
    sink: NodeId,
    limit: u32,
    scratch: &mut MaskDinic,
) -> u32 {
    if source == sink || limit == 0 {
        return 0;
    }
    let mut flow = 0u32;
    while flow < limit {
        if !mask_build_levels(net, source, sink, scratch) {
            break;
        }
        loop {
            let pushed = mask_blocking_path(net, source, sink, limit - flow, scratch);
            if pushed == 0 {
                break;
            }
            flow += pushed;
            if flow >= limit {
                break;
            }
        }
    }
    flow
}

/// Vertex-split flow network (Fig. 3) of the subgraph induced by the vertex
/// window `[lo, hi)` of `g`, relabelled to local ids: `v_in = 2(v - lo) →
/// v_out = 2(v - lo) + 1` with unit capacity, and infinite-capacity arcs
/// `u_out → v_in` per edge direction.
fn window_network(g: &CsrGraph, lo: usize, hi: usize) -> FlowNetwork {
    let n = hi - lo;
    let mut net = FlowNetwork::new(2 * n);
    for v in 0..n as NodeId {
        net.add_arc(2 * v, 2 * v + 1, 1);
    }
    for v in lo..hi {
        for &u in g.neighbors(v as VertexId) {
            let u = u as usize;
            // `u > v` keeps one direction per edge and implies `u >= lo`.
            if u > v && u < hi {
                let (lv, lu) = ((v - lo) as NodeId, (u - lo) as NodeId);
                net.add_arc(2 * lv + 1, 2 * lu, INFINITE_CAPACITY);
                net.add_arc(2 * lu + 1, 2 * lv, INFINITE_CAPACITY);
            }
        }
    }
    net
}

/// Deterministic xorshift64* generator shared by the probe selection.
fn xorshift64(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Number of vertex windows cut from the reordered planted-10k graph.
const FLOW_WINDOWS: usize = 32;
/// Vertices per window (the network then has `2 * FLOW_WINDOW_SPAN` nodes).
const FLOW_WINDOW_SPAN: usize = 128;
/// k-bounded probes issued inside each window.
const FLOW_PROBES_PER_WINDOW: usize = 3;

/// The flow-probe workload: many small per-window networks, all probed
/// through **one** scratch (per path) sized at the parent arena bound —
/// mirroring how the enumeration reuses a single never-shrinking scratch
/// across every subgraph recursion. Each probe is `(window, s_out, t_in)` in
/// local node ids.
struct FlowWorkload {
    state: Mutex<(Vec<FlowNetwork>, DinicScratch, MaskDinic)>,
    probes: Vec<(usize, NodeId, NodeId)>,
    limit: u32,
    arena_nodes: usize,
}

fn flow_workload() -> &'static FlowWorkload {
    static WORKLOAD: OnceLock<FlowWorkload> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let w = planted10k();
        let g = &w.reordered;
        let n = g.num_vertices();
        // The arena bound the enumeration would size its scratch with: the
        // vertex-split network of the whole parent graph.
        let arena_nodes = 2 * n;
        let mut next = xorshift64(0xB175);
        let mut nets = Vec::with_capacity(FLOW_WINDOWS);
        let mut probes = Vec::with_capacity(FLOW_WINDOWS * FLOW_PROBES_PER_WINDOW);
        for w_idx in 0..FLOW_WINDOWS {
            // Windows spread evenly across the reordered vertex range, the
            // last one ending exactly at `n`.
            let lo = w_idx * (n - FLOW_WINDOW_SPAN) / (FLOW_WINDOWS - 1);
            nets.push(window_network(g, lo, lo + FLOW_WINDOW_SPAN));
            for _ in 0..FLOW_PROBES_PER_WINDOW {
                let (s, t) = loop {
                    let s = (next() % FLOW_WINDOW_SPAN as u64) as NodeId;
                    let t = (next() % FLOW_WINDOW_SPAN as u64) as NodeId;
                    if s != t {
                        break (s, t);
                    }
                };
                // Probe from s_out to t_in, the LOC-CUT orientation.
                probes.push((w_idx, 2 * s + 1, 2 * t));
            }
        }
        let scratch = DinicScratch::new(arena_nodes);
        let mask = MaskDinic::new(arena_nodes);
        FlowWorkload {
            state: Mutex::new((nets, scratch, mask)),
            probes,
            limit: w.k,
            arena_nodes,
        }
    })
}

fn dinic_vecbool() -> usize {
    let w = flow_workload();
    let mut guard = w.state.lock().unwrap();
    let (nets, _, mask) = &mut *guard;
    let mut acc = 0usize;
    for &(idx, s, t) in &w.probes {
        let net = &mut nets[idx];
        net.reset();
        let f = mask_max_flow(net, s, t, w.limit, mask);
        acc = acc.wrapping_mul(31).wrapping_add(f as usize);
    }
    acc
}

fn dinic_epoch_bitset() -> usize {
    let w = flow_workload();
    let mut guard = w.state.lock().unwrap();
    let (nets, scratch, _) = &mut *guard;
    let mut acc = 0usize;
    for &(idx, s, t) in &w.probes {
        let net = &mut nets[idx];
        net.reset();
        let f = max_flow_with_scratch(net, s, t, w.limit, scratch);
        acc = acc.wrapping_mul(31).wrapping_add(f as usize);
    }
    acc
}

// ---------------------------------------------------------------------------
// kcore-sweep: per-k flagged peels vs one bucketed decomposition
// ---------------------------------------------------------------------------

/// The seed-era peel: seed a `VecDeque` with every under-degree vertex,
/// cascade removals behind a `Vec<bool>` flag array, then re-scan the flags
/// to collect the survivors (sorted ascending).
fn flagged_k_core(g: &CsrGraph, k: usize) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut degree: Vec<usize> = g.degrees();
    let mut removed = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..n {
        if degree[v] < k {
            removed[v] = true;
            queue.push_back(v as VertexId);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            let u = u as usize;
            if removed[u] {
                continue;
            }
            degree[u] -= 1;
            if degree[u] < k {
                removed[u] = true;
                queue.push_back(u as VertexId);
            }
        }
    }
    (0..n as VertexId)
        .filter(|&v| !removed[v as usize])
        .collect()
}

/// Order-sensitive digest of a (sorted) survivor list.
fn checksum_vertices(vertices: &[VertexId]) -> usize {
    let ids: usize = vertices.iter().map(|&v| v as usize + 1).sum();
    ids.wrapping_mul(31).wrapping_add(vertices.len())
}

/// Top of the sweep: the degeneracy of the 60k substrate graph, computed once
/// outside the timed region (both sweep paths walk `k = 1..=max`).
fn sweep_max_k() -> usize {
    static MAX_K: OnceLock<usize> = OnceLock::new();
    *MAX_K.get_or_init(|| {
        let (_, g) = crate::pr1::substrate_graphs();
        kvcc_graph::kcore::degeneracy(g) as usize
    })
}

/// The hierarchy/index pattern before the shared bucket structure: one full
/// flagged peel per level of the sweep.
fn kcore_flagged() -> usize {
    let (_, g) = crate::pr1::substrate_graphs();
    let mut acc = 0usize;
    for k in 1..=sweep_max_k() {
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(checksum_vertices(&flagged_k_core(g, k)));
    }
    acc
}

/// The degree-bucketed path: one [`core_numbers`] decomposition, then each
/// level is a threshold filter over the core array — `{v : core(v) >= k}` is
/// exactly the k-core, already in ascending vertex order.
fn kcore_bucketed() -> usize {
    let (_, g) = crate::pr1::substrate_graphs();
    let core = core_numbers(g);
    let mut acc = 0usize;
    let mut survivors: Vec<VertexId> = Vec::with_capacity(core.len());
    for k in 1..=sweep_max_k() {
        survivors.clear();
        survivors.extend((0..core.len() as VertexId).filter(|&v| core[v as usize] as usize >= k));
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(checksum_vertices(&survivors));
    }
    acc
}

// ---------------------------------------------------------------------------
// decode: scalar vs batched delta+varint row decode
// ---------------------------------------------------------------------------

/// Every adjacency row of the reordered planted-10k graph, delta+varint
/// encoded into one flat buffer — byte-for-byte the payload a
/// [`kvcc_graph::CompressedCsrGraph`] of that graph stores. Its ~101k gap
/// varints are 29% one-byte and 71% two-byte, interleaved varint-by-varint
/// within rows (locality reordering pulls a few neighbours close, the rest
/// stay hundreds of ids away) — the distribution the masked quad decoder
/// must beat the scalar loop on.
struct DecodeWorkload {
    data: Vec<u8>,
    starts: Vec<usize>,
    counts: Vec<usize>,
    total_values: usize,
}

fn decode_workload() -> &'static DecodeWorkload {
    static WORKLOAD: OnceLock<DecodeWorkload> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let g = &planted10k().reordered;
        let n = g.num_vertices();
        let mut data = Vec::new();
        let mut starts = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            starts.push(data.len());
            counts.push(g.degree(v));
            encode_row(g.neighbors(v), &mut data);
        }
        DecodeWorkload {
            data,
            starts,
            counts,
            total_values: 2 * g.num_edges(),
        }
    })
}

fn decode_all(decode: fn(&[u8], usize, usize, &mut Vec<VertexId>) -> Option<usize>) -> usize {
    let w = decode_workload();
    let mut row = Vec::new();
    let mut acc = 0usize;
    for (&start, &count) in w.starts.iter().zip(&w.counts) {
        decode(&w.data, start, count, &mut row).expect("bench payload is valid by construction");
        // Cheap digest: last id + length per row. The decoders still have to
        // materialise every value; summing them all would just dilute the
        // measured decode time with checksum arithmetic.
        acc = acc
            .wrapping_mul(31)
            .wrapping_add(row.last().map_or(0, |&v| v as usize))
            .wrapping_add(row.len());
    }
    acc
}

fn decode_scalar() -> usize {
    decode_all(decode_row_scalar_into)
}

fn decode_batched() -> usize {
    decode_all(decode_row_into)
}

// ---------------------------------------------------------------------------
// harness
// ---------------------------------------------------------------------------

/// One named case with its minimum iteration count.
type Pr6Case = (&'static str, fn() -> usize, u64);

fn cases() -> Vec<Pr6Case> {
    vec![
        ("pr6/dinic-probe/vecbool-mask", dinic_vecbool, 3),
        ("pr6/dinic-probe/epoch-bitset", dinic_epoch_bitset, 3),
        ("pr6/kcore-sweep/flagged-per-k", kcore_flagged, 5),
        ("pr6/kcore-sweep/bucketed-decomposition", kcore_bucketed, 5),
        ("pr6/decode/scalar", decode_scalar, 20),
        ("pr6/decode/batched", decode_batched, 20),
    ]
}

/// Runs the PR 6 cases, asserting that each before/after pair produces the
/// identical checksum (the optimised hot loops are behaviour-invariant).
pub fn run_all(smoke: bool) -> Report {
    let mut report = Report::default();
    for (name, run, min_iters) in cases() {
        let (warmup, budget, min_iters) = case_budget(
            smoke,
            Duration::from_millis(150),
            Duration::from_millis(900),
            min_iters,
        );
        report
            .entries
            .push(measure_fn(name, run, warmup, budget, min_iters));
    }
    for prefix in ["pr6/dinic-probe", "pr6/kcore-sweep", "pr6/decode"] {
        let sums: Vec<(&str, usize)> = report
            .entries
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .map(|e| (e.name, e.checksum))
            .collect();
        assert!(
            sums.windows(2).all(|w| w[0].1 == w[1].1),
            "hot-loop variants disagree: {sums:?}"
        );
    }
    report
}

/// Speedup pairs reported in `BENCH_pr6.json` — one per optimisation.
pub fn speedup_pairs() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "pr6/dinic-probe/vecbool-mask",
            "pr6/dinic-probe/epoch-bitset",
            "dinic_epoch_bitset_vs_vecbool_mask",
        ),
        (
            "pr6/kcore-sweep/flagged-per-k",
            "pr6/kcore-sweep/bucketed-decomposition",
            "kcore_sweep_bucketed_vs_flagged_per_k",
        ),
        (
            "pr6/decode/scalar",
            "pr6/decode/batched",
            "decode_batched_vs_scalar",
        ),
    ]
}

/// JSON payload for `BENCH_pr6.json` (hand-assembled like the other bench
/// reports; no third-party serializer in the offline environment).
pub fn render_json(report: &Report) -> String {
    let flow = flow_workload();
    let (_, peel_graph) = crate::pr1::substrate_graphs();
    let decode = decode_workload();
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 6,\n");
    out.push_str(
        "  \"description\": \"Hot-loop microarchitecture pass: Vec<bool>-mask vs epoch-bitset \
         Dinic scratch on k-bounded vertex-split probes (small per-window networks sharing one \
         arena-sized scratch, the enumeration's LOC-CUT shape; the mask baseline clears the full \
         arena per BFS phase, faithful to the seed-era scratch), per-k flagged peels vs one \
         degree-bucketed core decomposition across the k = 1..=degeneracy sweep, and scalar vs \
         masked-quad (movemask + recipe table, four gap varints per window) delta+varint row \
         decode of the reordered planted-10k payload. Checksums are identical within each pair. \
         Single-process wall-clock means on the build container; the ratios are the signal — \
         re-run on a multicore host for publishable numbers.\",\n",
    );
    out.push_str(&format!(
        "  \"workloads\": {{\n    \"dinic_probe\": {{\"arena_nodes\": {}, \"subgraphs\": {}, \
         \"window_vertices\": {}, \"probes\": {}, \"flow_limit\": {}}},\n    \"kcore_sweep\": \
         {{\"vertices\": {}, \"edges\": {}, \"max_k\": {}}},\n    \"decode\": {{\"rows\": {}, \
         \"values\": {}, \"payload_bytes\": {}}}\n  }},\n",
        flow.arena_nodes,
        FLOW_WINDOWS,
        FLOW_WINDOW_SPAN,
        flow.probes.len(),
        flow.limit,
        peel_graph.num_vertices(),
        peel_graph.num_edges(),
        sweep_max_k(),
        decode.starts.len(),
        decode.total_values,
        decode.data.len(),
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
            e.name,
            e.mean_ns,
            e.iterations,
            e.checksum,
            if i + 1 < report.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": {\n");
    let mut parts = Vec::new();
    for (baseline, contender, label) in speedup_pairs() {
        if let Some(s) = report.speedup(baseline, contender) {
            parts.push(format!("    \"{label}\": {s:.3}"));
        }
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::kcore::k_core_vertices;

    /// Two K6 blocks sharing a 3-vertex overlap, plus a pendant tail — small
    /// enough for debug-mode tests, rich enough to exercise retreats and
    /// multi-phase flows.
    fn small_graph() -> CsrGraph {
        let mut edges = Vec::new();
        for base in [0u32, 3] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((8, 9));
        edges.push((9, 10));
        CsrGraph::from_edges(11, edges).unwrap()
    }

    #[test]
    fn mask_and_epoch_dinic_route_the_same_flow() {
        let g = small_graph();
        let mut net = window_network(&g, 0, g.num_vertices());
        // Scratches deliberately over-sized past the network, as in the
        // bench workload (one arena-bound scratch, many small networks).
        let mut mask = MaskDinic::new(4 * net.num_nodes());
        let mut scratch = DinicScratch::new(4 * net.num_nodes());
        for s in 0..g.num_vertices() as NodeId {
            for t in 0..g.num_vertices() as NodeId {
                if s == t {
                    continue;
                }
                for limit in [1u32, 3, 16] {
                    net.reset();
                    let a = mask_max_flow(&mut net, 2 * s + 1, 2 * t, limit, &mut mask);
                    net.reset();
                    let b = max_flow_with_scratch(&mut net, 2 * s + 1, 2 * t, limit, &mut scratch);
                    assert_eq!(a, b, "probe {s}->{t} limit {limit}");
                }
            }
        }
    }

    #[test]
    fn flagged_and_bucketed_peels_agree() {
        let g = small_graph();
        let core = core_numbers(&g);
        for k in 0..=7usize {
            let flagged = flagged_k_core(&g, k);
            // The production single-k peel...
            assert_eq!(flagged, k_core_vertices(&g, k), "k = {k}");
            // ...and the thresholded decomposition the sweep path uses.
            let by_core: Vec<VertexId> = (0..g.num_vertices() as VertexId)
                .filter(|&v| core[v as usize] as usize >= k)
                .collect();
            assert_eq!(flagged, by_core, "k = {k}");
        }
    }

    #[test]
    fn decode_paths_agree_on_the_full_payload() {
        assert_eq!(decode_scalar(), decode_batched());
    }

    #[test]
    fn smoke_report_is_complete_and_well_formed() {
        let report = run_all(true);
        assert_eq!(report.entries.len(), 6);
        let json = render_json(&report);
        assert!(json.contains("\"pr\": 6"));
        assert!(json.contains("dinic_epoch_bitset_vs_vecbool_mask"));
        assert!(json.contains("kcore_sweep_bucketed_vs_flagged_per_k"));
        assert!(json.contains("decode_batched_vs_scalar"));
        assert!(json.trim_end().ends_with('}'));
    }
}
