//! `pr1-bench` — record the refactor-trajectory baselines.
//!
//! PR 1 section (written to `BENCH_pr1.json`), on the planted-partition
//! suite:
//!
//! * graph-substrate primitives (BFS, k-core peel) on the legacy
//!   `Vec<Vec<VertexId>>` adjacency vs the new CSR representation;
//! * the seed-style sequential enumeration path (fresh copies + fresh flow
//!   network per probe) vs the new CSR + scratch-arena enumerator, sequential
//!   and parallel.
//!
//! PR 2 section (written to `BENCH_pr2.json`):
//!
//! * `ConnectivityIndex` build time, and a fixed batch of seed queries
//!   answered through the index / by per-query re-enumeration / through the
//!   `kvcc-service` batch engine. The `indexed_vs_reenumerate` speedup is the
//!   PR 2 acceptance number (must be ≥ 10×).
//!
//! Usage: `pr1-bench [pr1-output.json [pr2-output.json]]`
//! (defaults `BENCH_pr1.json` and `BENCH_pr2.json`).

use kvcc_bench::{pr1, pr2};

fn write_or_die(path: &str, payload: String) {
    if let Err(e) = std::fs::write(path, payload) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn main() {
    let pr1_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr1.json".to_string());
    let pr2_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());

    let report = pr1::run_all();
    println!("{}", report.render_text());
    write_or_die(&pr1_path, report.render_json());

    let pr2_report = pr2::run_all();
    println!("PR 2 index/serving section (planted-partition suite)");
    for e in &pr2_report.entries {
        println!(
            "{:<36} {:>14.1} ns/run  ({} runs, checksum {})",
            e.name, e.mean_ns, e.iterations, e.checksum
        );
    }
    for (baseline, contender, label) in pr2::speedup_pairs() {
        if let Some(s) = pr2_report.speedup(baseline, contender) {
            println!("speedup {label}: {s:.2}x");
        }
    }
    write_or_die(&pr2_path, pr2::render_json(&pr2_report));
}
