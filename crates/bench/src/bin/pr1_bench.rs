//! `pr1-bench` — record the refactor-trajectory baselines.
//!
//! PR 1 section (written to `BENCH_pr1.json`), on the planted-partition
//! suite:
//!
//! * graph-substrate primitives (BFS, k-core peel) on the legacy
//!   `Vec<Vec<VertexId>>` adjacency vs the new CSR representation;
//! * the seed-style sequential enumeration path (fresh copies + fresh flow
//!   network per probe) vs the new CSR + scratch-arena enumerator, sequential
//!   and parallel.
//!
//! PR 2 section (written to `BENCH_pr2.json`):
//!
//! * `ConnectivityIndex` build time, and a fixed batch of seed queries
//!   answered through the index / by per-query re-enumeration / through the
//!   `kvcc-service` batch engine. The `indexed_vs_reenumerate` speedup is the
//!   PR 2 acceptance number (must be ≥ 10×).
//!
//! PR 3 section (written to `BENCH_pr3.json`):
//!
//! * the substrate × flow-probe matrix — {baseline CSR, hybrid-reordered,
//!   delta+varint compressed} × {exact, k-bounded} — on the ~10k-vertex
//!   planted suite and the collaboration graph, plus the index
//!   build-vs-restore persistence cases. Checksums are identical across all
//!   variants.
//!
//! PR 4 section (written to `BENCH_pr4.json`):
//!
//! * protocol v2: the seed-query batch through the in-process engine vs the
//!   full framed byte path, a `TopKComponents` page walk over frames, a
//!   sharded enumeration across a loopback transport, and the
//!   varint-vs-fixed wire payload sizes of the work-item/index/CSR formats.
//!
//! PR 5 section (written to `BENCH_pr5.json`):
//!
//! * the work-stealing runtime on a skewed planted suite — {shared-queue,
//!   stealing} × {static, skew-split} scheduling rows plus the sequential
//!   baseline (checksums identical across all five), and the deadline
//!   time-to-interrupt probe.
//!
//! PR 6 section (written to `BENCH_pr6.json`):
//!
//! * the hot-loop microarchitecture pass — `Vec<bool>`-mask vs epoch-bitset
//!   Dinic scratch on k-bounded probes, per-k flagged peels vs one
//!   degree-bucketed core decomposition across the k-sweep, and scalar vs
//!   batched delta+varint row decode; checksums are identical within each
//!   pair.
//!
//! PR 7 section (written to `BENCH_pr7.json`):
//!
//! * SNAP-scale ingestion — whole-file `GraphBuilder` ingestion vs the
//!   chunk/sort/merge streaming loader on a ~1M-line streamed edge list,
//!   and delta+varint compact decode vs borrowing the aligned `KCSR` v3
//!   file zero-copy; checksums are identical across all four paths.
//!
//! PR 8 section (written to `BENCH_pr8.json`):
//!
//! * the shard fleet — a work-item round trip over the in-process loopback
//!   transport vs a real TCP socket through a `ShardPool`, and a chaos
//!   sweep completing a fixed enumeration under seeded message-drop rates
//!   with the coordinator's retry/requeue/fallback counters recorded per
//!   rate; checksums are identical across transports and fault schedules.
//!
//! PR 9 section (written to `BENCH_pr9.json`):
//!
//! * mutable graphs — incremental connectivity-index maintenance
//!   (`ConnectivityIndex::apply_updates`) vs a from-scratch rebuild on the
//!   post-update graph, for one representative small batch and across a
//!   whole replayed update stream (per-batch blast radius, repair size and
//!   speedup recorded); index bytes are asserted identical on both paths at
//!   every step.
//!
//! PR 10 section (written to `BENCH_pr10.json`):
//!
//! * query-serving QoS — a replayed repetitive query log through the
//!   framed byte path with the result cache + coalescing armed vs the
//!   pre-v6 uncached engine (p50/p99/mean per-request latency, hit rate,
//!   response-frame fingerprints asserted identical), plus the
//!   admission-control shedding record (every priced request shed under an
//!   infeasible cost prior; the retry pass fingerprints identically to the
//!   baseline).
//!
//! Usage: `pr1-bench [--smoke] [--only=prN] [pr1.json [pr2.json [pr3.json
//! [pr4.json [pr5.json [pr6.json [pr7.json [pr8.json [pr9.json
//! [pr10.json]]]]]]]]]]`
//! (defaults `BENCH_pr1.json` … `BENCH_pr10.json`). `--smoke` runs every case exactly
//! once with no warm-up — the CI mode that keeps this binary from
//! bit-rotting without spending bench budget. `--only=prN` runs (and writes)
//! a single section, so one record can be regenerated without re-measuring —
//! and overwriting — the committed anchors of the others; an unknown section
//! name is an error listing the valid ones.

use kvcc_bench::{pr1, pr10, pr2, pr3, pr4, pr5, pr6, pr7, pr8, pr9};

fn write_or_die(path: &str, payload: String) {
    if let Err(e) = std::fs::write(path, payload) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn print_section(report: &kvcc_bench::pr1::Report, title: &str) {
    println!("{title}");
    for e in &report.entries {
        println!(
            "{:<44} {:>14.1} ns/run  ({} runs, checksum {})",
            e.name, e.mean_ns, e.iterations, e.checksum
        );
    }
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut smoke = false;
    let mut only: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if let Some(section) = arg.strip_prefix("--only=") {
            only = Some(section.to_string());
        } else {
            paths.push(arg);
        }
    }
    const SECTIONS: [&str; 10] = [
        "pr1", "pr2", "pr3", "pr4", "pr5", "pr6", "pr7", "pr8", "pr9", "pr10",
    ];
    if let Some(section) = only.as_deref() {
        if !SECTIONS.contains(&section) {
            eprintln!(
                "error: unknown section '{section}' for --only; valid sections: {}",
                SECTIONS.join(", ")
            );
            std::process::exit(2);
        }
    }
    let path =
        |i: usize, default: &str| paths.get(i).cloned().unwrap_or_else(|| default.to_string());
    let want = |section: &str| only.as_deref().is_none_or(|o| o == section);
    let pr1_path = path(0, "BENCH_pr1.json");
    let pr2_path = path(1, "BENCH_pr2.json");
    let pr3_path = path(2, "BENCH_pr3.json");
    let pr4_path = path(3, "BENCH_pr4.json");
    let pr5_path = path(4, "BENCH_pr5.json");
    let pr6_path = path(5, "BENCH_pr6.json");
    let pr7_path = path(6, "BENCH_pr7.json");
    let pr8_path = path(7, "BENCH_pr8.json");
    let pr9_path = path(8, "BENCH_pr9.json");
    let pr10_path = path(9, "BENCH_pr10.json");

    if want("pr1") {
        let report = pr1::run_all(smoke);
        println!("{}", report.render_text());
        write_or_die(&pr1_path, report.render_json());
    }

    if want("pr2") {
        let pr2_report = pr2::run_all(smoke);
        print_section(
            &pr2_report,
            "PR 2 index/serving section (planted-partition suite)",
        );
        for (baseline, contender, label) in pr2::speedup_pairs() {
            if let Some(s) = pr2_report.speedup(baseline, contender) {
                println!("speedup {label}: {s:.2}x");
            }
        }
        write_or_die(&pr2_path, pr2::render_json(&pr2_report));
    }

    if want("pr3") {
        let pr3_report = pr3::run_all(smoke);
        print_section(
            &pr3_report,
            "PR 3 substrate section (planted 10k + collaboration)",
        );
        for (baseline, contender, label) in pr3::speedup_pairs() {
            if let Some(s) = pr3_report.speedup(baseline, contender) {
                println!("speedup {label}: {s:.2}x");
            }
        }
        write_or_die(&pr3_path, pr3::render_json(&pr3_report));
    }

    if want("pr4") {
        let pr4_report = pr4::run_all(smoke);
        print_section(
            &pr4_report,
            "PR 4 protocol section (framed queries + wire payloads)",
        );
        for (baseline, contender, label) in pr4::speedup_pairs() {
            if let Some(s) = pr4_report.speedup(baseline, contender) {
                println!("ratio {label}: {s:.2}x");
            }
        }
        for row in pr4::payload_sizes() {
            println!(
                "{:<44} {:>10} varint bytes vs {:>10} fixed ({:.2}x smaller)",
                row.name,
                row.varint_bytes,
                row.fixed_bytes,
                1.0 / row.ratio()
            );
        }
        write_or_die(&pr4_path, pr4::render_json(&pr4_report));
    }

    if want("pr5") {
        let pr5_report = pr5::run_all(smoke);
        print_section(
            &pr5_report,
            "PR 5 scheduling section (skewed planted suite, 4 workers)",
        );
        for (baseline, contender, label) in pr5::speedup_pairs() {
            if let Some(s) = pr5_report.speedup(baseline, contender) {
                println!("speedup {label}: {s:.2}x");
            }
        }
        let deadline = pr5::deadline_probe(if smoke { 1 } else { 9 });
        println!(
            "deadline {} ms: p50 interrupt {:.2} ms, p99 {:.2} ms ({} samples)",
            deadline.deadline_ms,
            deadline.percentile_ns(50.0) as f64 / 1e6,
            deadline.percentile_ns(99.0) as f64 / 1e6,
            deadline.elapsed_ns.len()
        );
        write_or_die(&pr5_path, pr5::render_json(&pr5_report, &deadline));
    }

    if want("pr6") {
        let pr6_report = pr6::run_all(smoke);
        print_section(
            &pr6_report,
            "PR 6 hot-loop section (bitset Dinic, bucketed core sweep, batched decode)",
        );
        for (baseline, contender, label) in pr6::speedup_pairs() {
            if let Some(s) = pr6_report.speedup(baseline, contender) {
                println!("speedup {label}: {s:.2}x");
            }
        }
        write_or_die(&pr6_path, pr6::render_json(&pr6_report));
    }

    if want("pr7") {
        let pr7_report = pr7::run_all(smoke);
        print_section(
            &pr7_report,
            "PR 7 ingestion section (streamed edge list + zero-copy KCSR)",
        );
        for (baseline, contender, label) in pr7::speedup_pairs() {
            if let Some(s) = pr7_report.speedup(baseline, contender) {
                println!("speedup {label}: {s:.2}x");
            }
        }
        write_or_die(&pr7_path, pr7::render_json(&pr7_report));
    }

    if want("pr8") {
        let pr8_report = pr8::run_all(smoke);
        print_section(
            &pr8_report,
            "PR 8 fleet section (socket round trips + chaos completion)",
        );
        for (baseline, contender, label) in pr8::speedup_pairs() {
            if let Some(s) = pr8_report.speedup(baseline, contender) {
                println!("ratio {label}: {s:.2}x");
            }
        }
        let fault_rates = pr8::fault_rate_rows(smoke);
        for row in &fault_rates {
            println!(
                "drop rate {:>3} per mille: {:>10.2} ms/run  ({} retries, {} timeouts, \
                 {} requeues, {} local fallbacks over {} runs)",
                row.drop_per_mille,
                row.mean_ns / 1e6,
                row.retries,
                row.timeouts,
                row.requeues,
                row.local_fallbacks,
                row.runs
            );
        }
        write_or_die(&pr8_path, pr8::render_json(&pr8_report, &fault_rates));
    }

    if want("pr9") {
        let pr9_report = pr9::run_all(smoke);
        print_section(
            &pr9_report,
            "PR 9 mutable-graph section (incremental repair vs full rebuild)",
        );
        for (baseline, contender, label) in pr9::speedup_pairs() {
            if let Some(s) = pr9_report.speedup(baseline, contender) {
                println!("ratio {label}: {s:.2}x");
            }
        }
        let replay = pr9::replay_rows(smoke);
        for row in &replay {
            println!(
                "{:<14} batch {}: {:>3} updates, blast {:>4} vertices, {:>3} nodes repaired\
                 {}  incremental {:>9} ns vs rebuild {:>9} ns ({:.1}x)",
                row.workload,
                row.batch,
                row.updates,
                row.affected_vertices,
                row.repaired_nodes,
                if row.rebuilt { " (full rebuild)" } else { "" },
                row.incremental_ns,
                row.rebuild_ns,
                row.speedup
            );
        }
        write_or_die(&pr9_path, pr9::render_json(&pr9_report, &replay));
    }

    if want("pr10") {
        println!("PR 10 QoS section (replayed repetitive query log)");
        let rows = pr10::latency_rows(smoke);
        for row in &rows {
            println!(
                "{:<10} p50 {:>10} ns  p99 {:>10} ns  mean {:>12.1} ns  \
                 (hits {}, misses {}, coalesced {}, hit rate {:.1}%, checksum {})",
                row.name,
                row.p50_ns,
                row.p99_ns,
                row.mean_ns,
                row.cache_hits,
                row.cache_misses,
                row.coalesced,
                row.hit_rate * 100.0,
                row.checksum
            );
        }
        let shed = pr10::shed_rows(smoke);
        println!(
            "shedding: {} of {} requests shed with the retryable Overloaded code, \
             retry pass checksum {} == baseline {}",
            shed.shed, shed.requests, shed.retry_checksum, shed.baseline_checksum
        );
        write_or_die(&pr10_path, pr10::render_json(&rows, &shed));
    }
}
