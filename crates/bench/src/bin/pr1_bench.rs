//! `pr1-bench` — record the refactor-trajectory baselines.
//!
//! PR 1 section (written to `BENCH_pr1.json`), on the planted-partition
//! suite:
//!
//! * graph-substrate primitives (BFS, k-core peel) on the legacy
//!   `Vec<Vec<VertexId>>` adjacency vs the new CSR representation;
//! * the seed-style sequential enumeration path (fresh copies + fresh flow
//!   network per probe) vs the new CSR + scratch-arena enumerator, sequential
//!   and parallel.
//!
//! PR 2 section (written to `BENCH_pr2.json`):
//!
//! * `ConnectivityIndex` build time, and a fixed batch of seed queries
//!   answered through the index / by per-query re-enumeration / through the
//!   `kvcc-service` batch engine. The `indexed_vs_reenumerate` speedup is the
//!   PR 2 acceptance number (must be ≥ 10×).
//!
//! PR 3 section (written to `BENCH_pr3.json`):
//!
//! * the substrate × flow-probe matrix — {baseline CSR, hybrid-reordered,
//!   delta+varint compressed} × {exact, k-bounded} — on the ~10k-vertex
//!   planted suite and the collaboration graph, plus the index
//!   build-vs-restore persistence cases. Checksums are identical across all
//!   variants.
//!
//! Usage: `pr1-bench [--smoke] [pr1-output.json [pr2-output.json [pr3-output.json]]]`
//! (defaults `BENCH_pr1.json`, `BENCH_pr2.json` and `BENCH_pr3.json`).
//! `--smoke` runs every case exactly once with no warm-up — the CI mode that
//! keeps this binary from bit-rotting without spending bench budget.

use kvcc_bench::{pr1, pr2, pr3};

fn write_or_die(path: &str, payload: String) {
    if let Err(e) = std::fs::write(path, payload) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn print_section(report: &kvcc_bench::pr1::Report, title: &str) {
    println!("{title}");
    for e in &report.entries {
        println!(
            "{:<44} {:>14.1} ns/run  ({} runs, checksum {})",
            e.name, e.mean_ns, e.iterations, e.checksum
        );
    }
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            paths.push(arg);
        }
    }
    let path =
        |i: usize, default: &str| paths.get(i).cloned().unwrap_or_else(|| default.to_string());
    let pr1_path = path(0, "BENCH_pr1.json");
    let pr2_path = path(1, "BENCH_pr2.json");
    let pr3_path = path(2, "BENCH_pr3.json");

    let report = pr1::run_all(smoke);
    println!("{}", report.render_text());
    write_or_die(&pr1_path, report.render_json());

    let pr2_report = pr2::run_all(smoke);
    print_section(
        &pr2_report,
        "PR 2 index/serving section (planted-partition suite)",
    );
    for (baseline, contender, label) in pr2::speedup_pairs() {
        if let Some(s) = pr2_report.speedup(baseline, contender) {
            println!("speedup {label}: {s:.2}x");
        }
    }
    write_or_die(&pr2_path, pr2::render_json(&pr2_report));

    let pr3_report = pr3::run_all(smoke);
    print_section(
        &pr3_report,
        "PR 3 substrate section (planted 10k + collaboration)",
    );
    for (baseline, contender, label) in pr3::speedup_pairs() {
        if let Some(s) = pr3_report.speedup(baseline, contender) {
            println!("speedup {label}: {s:.2}x");
        }
    }
    write_or_die(&pr3_path, pr3::render_json(&pr3_report));
}
