//! `pr1-bench` — record the PR 1 performance baseline into `BENCH_pr1.json`.
//!
//! Compares, on the planted-partition suite:
//!
//! * graph-substrate primitives (BFS, k-core peel) on the legacy
//!   `Vec<Vec<VertexId>>` adjacency vs the new CSR representation;
//! * the seed-style sequential enumeration path (fresh copies + fresh flow
//!   network per probe) vs the new CSR + scratch-arena enumerator, sequential
//!   and parallel.
//!
//! Usage: `pr1-bench [output.json]` (default `BENCH_pr1.json`).

use kvcc_bench::pr1;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr1.json".to_string());
    let report = pr1::run_all();
    println!("{}", report.render_text());
    if let Err(e) = std::fs::write(&path, report.render_json()) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}
