//! PR 10 performance record: query-serving QoS — the epoch-keyed result
//! cache and single-flight coalescing against uncached execution, plus the
//! admission controller's overload shedding, on a replayed repetitive
//! query log.
//!
//! The workload models the paper's §6.4 serving shape: a fixed pool of
//! distinct queries (hot seeds, hot pairwise probes, enumerations) replayed
//! many times over in a seeded pseudo-random order — the regime a result
//! cache exists for. Two engines answer the **same** request log:
//!
//! * `no_qos` — the pre-v6 engine (QoS fully disabled), executing every
//!   request from scratch;
//! * `qos` — cache + coalescing armed ([`QosConfig::serving`]).
//!
//! Per-request latencies are recorded and reported as p50/p99/mean; the
//! FNV-1a fingerprint over every response **frame** is asserted identical
//! between the two engines — the speedup is only meaningful because the
//! cached bytes are exactly the fresh bytes. The `shedding` table replays
//! the same log against an admission-armed engine with an absurd cost
//! prior: every priced (flow-running) request is shed up front with the
//! retryable `Overloaded` code, and the undeadlined retry pass afterwards
//! still fingerprints identically to the baseline — mass shedding corrupts
//! nothing.

use std::sync::OnceLock;
use std::time::Instant;

use kvcc::RankBy;
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::UndirectedGraph;
use kvcc_service::{
    AdmissionConfig, EngineConfig, GraphId, QosConfig, QueryRequest, Request, RequestBody,
    ServiceEngine,
};

/// Replayed requests in full mode (each pool entry recurs ~20×).
const REQUESTS: usize = 240;
/// Replayed requests in `--smoke` mode.
const SMOKE_REQUESTS: usize = 36;
/// Deadline hint used to force the admission controller's infeasibility
/// path in the shedding table.
const SHED_DEADLINE_MS: u32 = 50;

/// The serving-suite graph: a handful of dense communities over a sparse
/// background, sized so an uncached enumeration is real work.
fn suite() -> &'static UndirectedGraph {
    static SUITE: OnceLock<UndirectedGraph> = OnceLock::new();
    SUITE.get_or_init(|| {
        planted_communities(&PlantedConfig {
            num_communities: 6,
            chain_length: 2,
            community_size: (10, 14),
            background_vertices: 300,
            seed: 0xA10,
            ..PlantedConfig::default()
        })
        .graph
    })
}

/// The distinct-query pool the log replays: the §6.4 containment shape for
/// several hot seeds, whole-graph enumerations, pairwise probes and a page
/// read. Stats queries are excluded by design — they are never cacheable.
fn pool(id: GraphId, n: u32) -> Vec<QueryRequest> {
    vec![
        QueryRequest::EnumerateKvccs { graph: id, k: 2 },
        QueryRequest::EnumerateKvccs { graph: id, k: 3 },
        QueryRequest::KvccsContaining {
            graph: id,
            seed: 1,
            k: 2,
        },
        QueryRequest::KvccsContaining {
            graph: id,
            seed: n / 3,
            k: 2,
        },
        QueryRequest::KvccsContaining {
            graph: id,
            seed: n / 2,
            k: 3,
        },
        QueryRequest::MaxConnectivity {
            graph: id,
            u: 0,
            v: n - 1,
        },
        QueryRequest::VertexConnectivityNumber { graph: id, v: 4 },
        QueryRequest::GlobalCutProbe { graph: id, k: 2 },
        QueryRequest::LocalConnectivity {
            graph: id,
            u: 2,
            v: n / 2,
            limit: 4,
        },
        QueryRequest::TopKComponents {
            graph: id,
            rank_by: RankBy::Size,
            page_size: 8,
            cursor: None,
        },
    ]
}

/// Whether the admission controller prices (and can therefore shed) a
/// query — the flow-running kinds of [`kvcc_service`]'s cost model.
fn priced(q: &QueryRequest) -> bool {
    matches!(
        q,
        QueryRequest::EnumerateKvccs { .. }
            | QueryRequest::KvccsContaining { .. }
            | QueryRequest::GlobalCutProbe { .. }
            | QueryRequest::LocalConnectivity { .. }
    )
}

/// The replayed request log: `count` draws from the pool under a seeded
/// LCG, so the sequence is identical on every engine and every run.
fn request_log(id: GraphId, n: u32, count: usize) -> Vec<QueryRequest> {
    let pool = pool(id, n);
    let mut state: u64 = 0x2545_F491_4F6C_DD1D;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            pool[(state >> 33) as usize % pool.len()].clone()
        })
        .collect()
}

/// FNV-1a over response frames — the parity fingerprint of a whole replay.
fn fingerprint(hash: u64, bytes: &[u8]) -> u64 {
    let mut hash = if hash == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        hash
    };
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One engine's replay of the request log: per-request latency
/// percentiles, the response-frame fingerprint, and the QoS counters the
/// engine accumulated while serving it.
#[derive(Clone, Debug)]
pub struct LatencyRow {
    /// Engine variant (`no_qos` / `qos`).
    pub name: &'static str,
    /// Requests replayed.
    pub requests: usize,
    /// Distinct queries in the pool.
    pub distinct: usize,
    /// Median per-request latency.
    pub p50_ns: u64,
    /// 99th-percentile per-request latency.
    pub p99_ns: u64,
    /// Mean per-request latency.
    pub mean_ns: f64,
    /// FNV-1a over every response frame, in order.
    pub checksum: u64,
    /// Result-cache hits after the replay.
    pub cache_hits: u64,
    /// Result-cache misses (= real executions of cacheable queries).
    pub cache_misses: u64,
    /// Queries served by a coalesced in-flight execution.
    pub coalesced: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// `cache_hits / cacheable requests`.
    pub hit_rate: f64,
}

/// The p-th percentile (0–100) of a latency sample.
fn percentile_ns(samples: &[u64], p: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Replays the log through one engine's framed byte path, timing each
/// request and folding every response frame into the fingerprint.
fn replay(
    engine: &ServiceEngine,
    log: &[QueryRequest],
    deadline_hint_ms: Option<u32>,
) -> (Vec<u64>, u64) {
    let mut latencies = Vec::with_capacity(log.len());
    let mut checksum = 0u64;
    for (i, query) in log.iter().enumerate() {
        let frame = Request {
            request_id: i as u64 + 1,
            deadline_hint_ms,
            body: RequestBody::Query(query.clone()),
        }
        .to_bytes();
        let start = Instant::now();
        let response = engine.handle_frame(&frame);
        latencies.push(start.elapsed().as_nanos() as u64);
        checksum = fingerprint(checksum, &response);
    }
    (latencies, checksum)
}

fn engine_with(qos: QosConfig) -> (ServiceEngine, GraphId) {
    let engine = ServiceEngine::new(EngineConfig {
        qos,
        ..EngineConfig::default()
    });
    let id = engine.load_graph("suite", suite());
    (engine, id)
}

fn row_from(
    name: &'static str,
    log: &[QueryRequest],
    latencies: &[u64],
    checksum: u64,
    engine: &ServiceEngine,
) -> LatencyRow {
    let qos = engine.qos_stats();
    let distinct = pool(log[0].graph(), suite().num_vertices() as u32).len();
    LatencyRow {
        name,
        requests: log.len(),
        distinct,
        p50_ns: percentile_ns(latencies, 50.0),
        p99_ns: percentile_ns(latencies, 99.0),
        mean_ns: latencies.iter().sum::<u64>() as f64 / latencies.len() as f64,
        checksum,
        cache_hits: qos.cache_hits,
        cache_misses: qos.cache_misses,
        coalesced: qos.coalesced,
        shed: qos.shed,
        hit_rate: qos.cache_hits as f64 / log.len() as f64,
    }
}

/// The with-vs-without-QoS latency table. Panics if the two engines do not
/// fingerprint identically — the whole point of the record.
pub fn latency_rows(smoke: bool) -> Vec<LatencyRow> {
    let count = if smoke { SMOKE_REQUESTS } else { REQUESTS };
    let (baseline, id) = engine_with(QosConfig::disabled());
    let n = suite().num_vertices() as u32;
    let log = request_log(id, n, count);

    let (base_lat, base_sum) = replay(&baseline, &log, None);
    let (serving, _) = engine_with(QosConfig::serving());
    let (qos_lat, qos_sum) = replay(&serving, &log, None);
    assert_eq!(
        base_sum, qos_sum,
        "cached and uncached replays must fingerprint identically"
    );
    vec![
        row_from("no_qos", &log, &base_lat, base_sum, &baseline),
        row_from("qos", &log, &qos_lat, qos_sum, &serving),
    ]
}

/// The overload-shedding record: the same log under an infeasible cost
/// prior and a tight deadline hint, then the undeadlined retry pass.
#[derive(Clone, Debug)]
pub struct ShedRow {
    /// Requests in the deadlined pass.
    pub requests: usize,
    /// Requests the admission controller shed (all priced kinds).
    pub shed: u64,
    /// Requests answered normally (index lookups are never priced).
    pub served: usize,
    /// Fingerprint of the undeadlined retry pass.
    pub retry_checksum: u64,
    /// Fingerprint of the QoS-free baseline on the same log.
    pub baseline_checksum: u64,
}

/// Runs the shedding table. Panics unless every priced request was shed
/// and the retry pass fingerprints identically to the baseline.
pub fn shed_rows(smoke: bool) -> ShedRow {
    let count = if smoke { SMOKE_REQUESTS } else { REQUESTS };
    let (baseline, id) = engine_with(QosConfig::disabled());
    let n = suite().num_vertices() as u32;
    let log = request_log(id, n, count);
    let (_, baseline_checksum) = replay(&baseline, &log, None);

    // One second per cost unit: every priced request under a 50 ms hint is
    // predicted infeasible and shed before executing.
    let (overloaded, _) = engine_with(QosConfig {
        admission: Some(AdmissionConfig {
            initial_ns_per_cost: 1e9,
            ewma_alpha: 0.5,
            ..AdmissionConfig::default()
        }),
        ..QosConfig::default()
    });
    let (_, _shed_sum) = replay(&overloaded, &log, Some(SHED_DEADLINE_MS));
    let shed = overloaded.qos_stats().shed;
    let expected = log.iter().filter(|q| priced(q)).count() as u64;
    assert_eq!(
        shed, expected,
        "every priced request must be shed under the infeasible prior"
    );

    // The retry pass (no deadline → nothing is infeasible) must reproduce
    // the baseline bytes exactly: shedding never touched engine state.
    let (_, retry_checksum) = replay(&overloaded, &log, None);
    assert_eq!(
        retry_checksum, baseline_checksum,
        "mass shedding must not corrupt subsequent executions"
    );
    ShedRow {
        requests: log.len(),
        shed,
        served: log.len() - shed as usize,
        retry_checksum,
        baseline_checksum,
    }
}

/// JSON payload for `BENCH_pr10.json` (hand-assembled like the other
/// sections).
pub fn render_json(rows: &[LatencyRow], shed: &ShedRow) -> String {
    let g = suite();
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 10,\n");
    out.push_str(
        "  \"description\": \"query-serving QoS: epoch-keyed result cache + single-flight \
         coalescing vs uncached execution on a replayed repetitive query log (response-frame \
         fingerprints identical), and admission-control overload shedding with the retryable \
         Overloaded code\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"vertices\": {}, \"edges\": {}, \"requests\": {}, \
         \"distinct_queries\": {}}},\n",
        g.num_vertices(),
        g.num_edges(),
        rows[0].requests,
        rows[0].distinct,
    ));
    out.push_str("  \"latency\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {:.1}, \
             \"checksum\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"coalesced\": {}, \
             \"shed\": {}, \"hit_rate\": {:.4}}}{}\n",
            r.name,
            r.p50_ns,
            r.p99_ns,
            r.mean_ns,
            r.checksum,
            r.cache_hits,
            r.cache_misses,
            r.coalesced,
            r.shed,
            r.hit_rate,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"shedding\": {{\"deadline_hint_ms\": {}, \"requests\": {}, \"shed\": {}, \
         \"served\": {}, \"retry_checksum\": {}, \"baseline_checksum\": {}}},\n",
        SHED_DEADLINE_MS,
        shed.requests,
        shed.shed,
        shed.served,
        shed.retry_checksum,
        shed.baseline_checksum,
    ));
    out.push_str("  \"ratios\": {\n");
    let mut parts = Vec::new();
    if let [base, qos] = rows {
        parts.push(format!(
            "    \"qos_vs_uncached_p50\": {:.3}",
            base.p50_ns as f64 / qos.p50_ns.max(1) as f64
        ));
        parts.push(format!(
            "    \"qos_vs_uncached_mean\": {:.3}",
            base.mean_ns / qos.mean_ns.max(1.0)
        ));
        parts.push(format!("    \"cache_hit_rate\": {:.4}", qos.hit_rate));
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_replay_fingerprints_match_and_shed_counts_are_exact() {
        let rows = latency_rows(true);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].checksum, rows[1].checksum);
        assert_eq!(
            (rows[0].cache_hits, rows[0].coalesced),
            (0, 0),
            "the baseline engine never touches the QoS layer"
        );
        // Every replay past the first occurrence of a pool entry hits: the
        // log is far longer than the pool, so the hit rate is substantial.
        assert!(rows[1].hit_rate > 0.5, "hit rate {}", rows[1].hit_rate);
        assert_eq!(
            rows[1].cache_misses as usize + rows[1].cache_hits as usize,
            rows[1].requests,
            "sequential replay: every request either hits or executes"
        );
        let shed = shed_rows(true);
        assert!(shed.shed > 0);
        assert_eq!(shed.retry_checksum, shed.baseline_checksum);
        let json = render_json(&rows, &shed);
        assert!(json.contains("\"latency\""));
        assert!(json.contains("cache_hit_rate"));
        assert!(json.trim_end().ends_with('}'));
    }
}
