//! PR 2 performance record: the [`kvcc::ConnectivityIndex`] vs per-query
//! re-enumeration on the planted-partition suite.
//!
//! The serving-layer workload is "many seed queries against one loaded
//! graph" (§6.4 shape). This module measures, on the same planted graph the
//! PR 1 enumeration cases use:
//!
//! * `index/build` — one-time cost of building the full hierarchy index;
//! * `query/indexed-seeds` — answering a fixed batch of seed queries through
//!   the index (ancestor walks, no flow code);
//! * `query/reenumerate-seeds` — the same batch through
//!   [`kvcc::kvccs_containing`], which re-runs component/k-core/enumeration
//!   work per query;
//! * `service/batch` — the same batch through [`kvcc_service::ServiceEngine`]
//!   with a prebuilt index (adds protocol + pool overhead).
//!
//! The `indexed_vs_reenumerate` speedup is the PR 2 acceptance number: the
//! index must answer repeated seed queries at least an order of magnitude
//! faster than re-enumeration.

use std::sync::OnceLock;
use std::time::Duration;

use kvcc::{ConnectivityIndex, KvccOptions};
use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::{UndirectedGraph, VertexId};
use kvcc_service::{EngineConfig, QueryRequest, QueryResponse, ServiceEngine};

use crate::pr1::{case_budget, measure_fn, Report};

/// The planted-partition graph used by the query cases, plus the query `k`
/// and the batch of seed vertices (one per planted community plus a few
/// background vertices, covering both hit and miss paths).
fn query_workload() -> &'static (UndirectedGraph, u32, Vec<VertexId>) {
    static WORKLOAD: OnceLock<(UndirectedGraph, u32, Vec<VertexId>)> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let config = PlantedConfig {
            num_communities: 6,
            chain_length: 3,
            community_size: (10, 14),
            background_vertices: 600,
            seed: 11,
            ..PlantedConfig::default()
        };
        let k = config.k as u32;
        let planted = planted_communities(&config);
        let mut seeds: Vec<VertexId> = planted
            .communities
            .iter()
            .map(|members| members[members.len() / 2])
            .collect();
        // Background seeds: pruned by the k-core, so they exercise the
        // cheap-miss path on both sides.
        seeds.extend((0..4).map(|i| (i * 150) as VertexId));
        (planted.graph, k, seeds)
    })
}

fn prebuilt_index() -> &'static ConnectivityIndex {
    static INDEX: OnceLock<ConnectivityIndex> = OnceLock::new();
    INDEX.get_or_init(|| {
        let (g, _, _) = query_workload();
        ConnectivityIndex::build(g, None, &KvccOptions::default()).unwrap()
    })
}

fn prebuilt_engine() -> &'static (ServiceEngine, kvcc_service::GraphId) {
    static ENGINE: OnceLock<(ServiceEngine, kvcc_service::GraphId)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let (g, _, _) = query_workload();
        let engine = ServiceEngine::new(EngineConfig::default());
        let id = engine.load_graph("planted", g);
        engine.build_index(id).unwrap();
        (engine, id)
    })
}

fn index_build() -> usize {
    let (g, _, _) = query_workload();
    let index = ConnectivityIndex::build(g, None, &KvccOptions::default()).unwrap();
    index.num_nodes()
}

fn indexed_seeds() -> usize {
    let (_, k, seeds) = query_workload();
    let index = prebuilt_index();
    seeds
        .iter()
        .map(|&s| {
            index
                .kvccs_containing(s, *k)
                .unwrap()
                .iter()
                .map(|c| c.len())
                .sum::<usize>()
        })
        .sum()
}

fn reenumerate_seeds() -> usize {
    let (g, k, seeds) = query_workload();
    seeds
        .iter()
        .map(|&s| {
            kvcc::kvccs_containing(g, s, *k, &KvccOptions::default())
                .unwrap()
                .iter()
                .map(|c| c.len())
                .sum::<usize>()
        })
        .sum()
}

fn service_batch() -> usize {
    let (_, k, seeds) = query_workload();
    let (engine, id) = prebuilt_engine();
    let requests: Vec<QueryRequest> = seeds
        .iter()
        .map(|&seed| QueryRequest::KvccsContaining {
            graph: *id,
            seed,
            k: *k,
        })
        .collect();
    engine
        .execute_batch(&requests)
        .into_iter()
        .map(|response| match response {
            QueryResponse::Components(comps) => comps.iter().map(|c| c.len()).sum::<usize>(),
            other => panic!("unexpected response {other:?}"),
        })
        .sum()
}

/// One named case with its minimum iteration count.
type Pr2Case = (&'static str, fn() -> usize, u64);

/// Runs the PR 2 cases and appends them (with the `pr2/` prefix) to a fresh
/// report, asserting that all three query paths return identical answers.
/// With `smoke` every case runs exactly once with no warm-up (the CI mode).
pub fn run_all(smoke: bool) -> Report {
    let mut report = Report::default();
    let cases: [Pr2Case; 4] = [
        ("pr2/index/build", index_build, 3),
        ("pr2/query/indexed-seeds", indexed_seeds, 20),
        ("pr2/query/reenumerate-seeds", reenumerate_seeds, 5),
        ("pr2/service/batch", service_batch, 10),
    ];
    for (name, run, min_iters) in cases {
        let (warmup, budget, min_iters) = case_budget(
            smoke,
            Duration::from_millis(100),
            Duration::from_millis(800),
            min_iters,
        );
        report
            .entries
            .push(measure_fn(name, run, warmup, budget, min_iters));
    }
    let indexed = report.entry("pr2/query/indexed-seeds").unwrap();
    let reenumerated = report.entry("pr2/query/reenumerate-seeds").unwrap();
    let served = report.entry("pr2/service/batch").unwrap();
    assert_eq!(
        indexed.checksum, reenumerated.checksum,
        "indexed and re-enumerating query paths disagree"
    );
    assert_eq!(
        indexed.checksum, served.checksum,
        "service path disagrees with the library paths"
    );
    report
}

/// Speedup pairs reported in `BENCH_pr2.json`.
pub fn speedup_pairs() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "pr2/query/reenumerate-seeds",
            "pr2/query/indexed-seeds",
            "indexed_vs_reenumerate",
        ),
        (
            "pr2/query/reenumerate-seeds",
            "pr2/service/batch",
            "service_vs_reenumerate",
        ),
    ]
}

/// JSON payload for `BENCH_pr2.json` (hand-assembled like the PR 1 report).
pub fn render_json(report: &Report) -> String {
    let (g, k, seeds) = query_workload();
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 2,\n");
    out.push_str(
        "  \"description\": \"ConnectivityIndex build time and repeated seed-query latency \
         (indexed / re-enumerating / served) on the planted-partition suite\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"vertices\": {}, \"edges\": {}, \"k\": {}, \"seed_queries\": {}}},\n",
        g.num_vertices(),
        g.num_edges(),
        k,
        seeds.len()
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
            e.name,
            e.mean_ns,
            e.iterations,
            e.checksum,
            if i + 1 < report.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": {\n");
    let mut parts = Vec::new();
    for (baseline, contender, label) in speedup_pairs() {
        if let Some(s) = report.speedup(baseline, contender) {
            parts.push(format!("    \"{label}\": {s:.3}"));
        }
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_query_paths_agree() {
        assert_eq!(indexed_seeds(), reenumerate_seeds());
        assert_eq!(indexed_seeds(), service_batch());
        assert!(index_build() > 0);
    }

    #[test]
    fn json_contains_the_acceptance_speedup() {
        let report = run_all(true);
        let json = render_json(&report);
        assert!(json.contains("\"indexed_vs_reenumerate\""));
        assert!(json.contains("\"pr\": 2"));
    }
}
