//! PR 4 performance record: protocol v2 — framed queries and varint wire
//! payloads.
//!
//! Two sections, written to `BENCH_pr4.json`:
//!
//! * **timing** — the §6.4 seed-query batch answered (a) in-process through
//!   [`kvcc_service::ServiceEngine::execute_batch`], (b) through the full
//!   framed path (encode the [`kvcc_service::Request`] envelope → the
//!   engine's `handle_frame` → decode the [`kvcc_service::Response`]), and
//!   (c) as a `TopKComponents` page walk over frames; plus a sharded
//!   enumeration where every work item crosses a loopback
//!   [`kvcc_service::Transport`] as length-prefixed frames. Checksums assert
//!   the framed paths answer identically to the in-process ones — the
//!   `framed_vs_direct` ratio is the protocol overhead on index-served
//!   queries.
//! * **payload sizes** — the varint/delta v2 wire formats
//!   ([`kvcc_service::CsrWorkItem`], the `KIDX` index buffer, the compact
//!   CSR graph form) against their fixed-width v1-equivalent byte counts on
//!   the same workload (the ROADMAP "apply the varint codec to the shard
//!   payloads" follow-up, recorded as deltas).

use std::sync::OnceLock;
use std::time::Duration;

use kvcc_datasets::planted::{planted_communities, PlantedConfig};
use kvcc_graph::{UndirectedGraph, VertexId};
use kvcc_service::{
    run_shard_worker, EngineConfig, GraphId, KvccOptions, LoopbackTransport, QueryRequest,
    QueryResponse, RankBy, Request, RequestBody, Response, ResponseBody, ServiceEngine,
};

use crate::pr1::{case_budget, measure_fn, Report};

/// The planted-partition workload shared by every PR 4 case: the graph, the
/// enumeration `k`, and the seed batch (community cores plus background
/// misses, the pr2 shape).
fn workload() -> &'static (UndirectedGraph, u32, Vec<VertexId>) {
    static WORKLOAD: OnceLock<(UndirectedGraph, u32, Vec<VertexId>)> = OnceLock::new();
    WORKLOAD.get_or_init(|| {
        let config = PlantedConfig {
            num_communities: 6,
            chain_length: 3,
            community_size: (10, 14),
            background_vertices: 600,
            seed: 11,
            ..PlantedConfig::default()
        };
        let k = config.k as u32;
        let planted = planted_communities(&config);
        let mut seeds: Vec<VertexId> = planted
            .communities
            .iter()
            .map(|members| members[members.len() / 2])
            .collect();
        seeds.extend((0..4).map(|i| (i * 150) as VertexId));
        (planted.graph, k, seeds)
    })
}

/// One engine with the workload loaded and indexed, shared by the query
/// cases so they measure the protocol, not index construction.
fn prebuilt_engine() -> &'static (ServiceEngine, GraphId) {
    static ENGINE: OnceLock<(ServiceEngine, GraphId)> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let (g, _, _) = workload();
        let engine = ServiceEngine::new(EngineConfig::default());
        let id = engine.load_graph("planted", g);
        engine.build_index(id).unwrap();
        (engine, id)
    })
}

fn seed_queries() -> Vec<QueryRequest> {
    let (_, k, seeds) = workload();
    let (_, id) = prebuilt_engine();
    seeds
        .iter()
        .map(|&seed| QueryRequest::KvccsContaining {
            graph: *id,
            seed,
            k: *k,
        })
        .collect()
}

fn checksum_responses(responses: &[QueryResponse]) -> usize {
    responses
        .iter()
        .map(|response| match response {
            QueryResponse::Components(comps) => comps.iter().map(|c| c.len()).sum::<usize>(),
            other => panic!("unexpected response {other:?}"),
        })
        .sum()
}

/// (a) The in-process baseline: the batch straight into the worker pool.
fn batch_direct() -> usize {
    let (engine, _) = prebuilt_engine();
    checksum_responses(&engine.execute_batch(&seed_queries()))
}

/// (b) The same batch through the full byte path: envelope encode, frame
/// handling, response decode — what a network client pays on top of (a).
fn batch_framed() -> usize {
    let (engine, _) = prebuilt_engine();
    let request = Request {
        request_id: 7,
        deadline_hint_ms: None,
        body: RequestBody::Batch(seed_queries()),
    };
    let frame = engine.handle_frame(&request.to_bytes());
    let response = Response::from_bytes(&frame).unwrap();
    match response.body {
        ResponseBody::Batch(responses) => checksum_responses(&responses),
        other => panic!("unexpected body {other:?}"),
    }
}

/// (c) A full `TopKComponents` page walk over frames (density ranking,
/// small pages, every component of the forest exactly once).
fn topk_framed() -> usize {
    let (engine, id) = prebuilt_engine();
    let mut checksum = 0usize;
    let mut cursor: Option<Vec<u8>> = None;
    let mut request_id = 0u64;
    loop {
        request_id += 1;
        let request = Request::query(
            request_id,
            QueryRequest::TopKComponents {
                graph: *id,
                rank_by: RankBy::Density,
                page_size: 4,
                cursor: cursor.take(),
            },
        );
        let frame = engine.handle_frame(&request.to_bytes());
        let response = Response::from_bytes(&frame).unwrap();
        let (entries, next) = match response.body {
            ResponseBody::Query(QueryResponse::Page {
                entries,
                next_cursor,
            }) => (entries, next_cursor),
            other => panic!("unexpected body {other:?}"),
        };
        checksum += entries
            .iter()
            .map(|e| e.component.len() + e.internal_edges as usize)
            .sum::<usize>();
        match next {
            Some(next) => cursor = Some(next),
            None => return checksum,
        }
    }
}

/// The sharded path: every work item ships to a loopback shard worker as
/// length-prefixed frames and the merged answer must equal the whole-graph
/// enumeration.
fn sharded_frames() -> usize {
    let (engine, id) = prebuilt_engine();
    let (_, k, _) = workload();
    let (client, server) = LoopbackTransport::pair();
    let worker =
        std::thread::spawn(move || run_shard_worker(&server, &KvccOptions::default()).unwrap());
    let merged = engine.enumerate_sharded(*id, *k, &[&client]).unwrap();
    drop(client);
    worker.join().unwrap();
    merged.iter().map(|c| c.len()).sum()
}

/// One payload-size comparison row: the v2 varint bytes next to the byte
/// count the same data costs in the fixed-width v1 layout.
#[derive(Clone, Debug)]
pub struct SizeRow {
    /// What was serialised.
    pub name: &'static str,
    /// Bytes in the v2 varint/delta format (measured).
    pub varint_bytes: usize,
    /// Bytes in the fixed-width v1-equivalent layout (computed from the
    /// same structure; the v1 encoders no longer exist).
    pub fixed_bytes: usize,
}

impl SizeRow {
    /// Varint-over-fixed ratio (`< 1` means the varint format is smaller).
    pub fn ratio(&self) -> f64 {
        self.varint_bytes as f64 / self.fixed_bytes as f64
    }
}

/// Measures the wire payload sizes of the workload's shard items, index
/// buffer and graph against their v1-equivalent fixed-width layouts.
pub fn payload_sizes() -> Vec<SizeRow> {
    let (g, k, _) = workload();
    let (engine, id) = prebuilt_engine();

    let items = engine.partition_work(*id, *k).unwrap();
    let varint_items: usize = items.iter().map(|item| item.to_bytes().len()).sum();
    // v1 work item: 9-byte header + fixed CSR (13-byte header + 4(n+1)
    // offsets + 4·2m neighbours) + (4 + 4n) id map.
    let fixed_items: usize = items
        .iter()
        .map(|item| {
            let (n, m) = (item.graph().num_vertices(), item.graph().num_edges());
            9 + 13 + 4 * (n + 1) + 8 * m + 4 + 4 * n
        })
        .sum();

    let index_bytes = engine.index_bytes(*id).unwrap();
    let index = kvcc_service::ConnectivityIndex::from_bytes(&index_bytes).unwrap();
    // v1 index: 17-byte header + per node (k, parent, count = 12 bytes) +
    // 4 bytes per member.
    let fixed_index: usize = 17
        + index
            .ranked_components(RankBy::Size, index.num_nodes())
            .iter()
            .map(|e| 12 + 4 * e.component.len())
            .sum::<usize>();

    let csr = kvcc_service::CsrGraph::from_view(g);
    vec![
        SizeRow {
            name: "workitems/planted-kcore",
            varint_bytes: varint_items,
            fixed_bytes: fixed_items,
        },
        SizeRow {
            name: "index/planted-full",
            varint_bytes: index_bytes.len(),
            fixed_bytes: fixed_index,
        },
        SizeRow {
            name: "csr/planted-graph",
            varint_bytes: csr.to_bytes_compact().len(),
            fixed_bytes: csr.to_bytes().len(),
        },
    ]
}

/// One named case with its minimum iteration count.
type Pr4Case = (&'static str, fn() -> usize, u64);

/// Runs the PR 4 timing cases, asserting that the framed paths answer
/// identically to the in-process ones and that the sharded merge equals the
/// whole-graph enumeration. With `smoke` every case runs exactly once (the
/// CI contract keeping the codec and transport from bit-rotting).
pub fn run_all(smoke: bool) -> Report {
    let mut report = Report::default();
    let cases: [Pr4Case; 4] = [
        ("pr4/query/batch-direct", batch_direct, 10),
        ("pr4/query/batch-framed", batch_framed, 10),
        ("pr4/query/topk-framed", topk_framed, 10),
        ("pr4/shard/loopback-frames", sharded_frames, 3),
    ];
    for (name, run, min_iters) in cases {
        let (warmup, budget, min_iters) = case_budget(
            smoke,
            Duration::from_millis(100),
            Duration::from_millis(800),
            min_iters,
        );
        report
            .entries
            .push(measure_fn(name, run, warmup, budget, min_iters));
    }
    let direct = report.entry("pr4/query/batch-direct").unwrap();
    let framed = report.entry("pr4/query/batch-framed").unwrap();
    assert_eq!(
        direct.checksum, framed.checksum,
        "framed and in-process batch paths disagree"
    );
    let sharded = report.entry("pr4/shard/loopback-frames").unwrap();
    let (g, k, _) = workload();
    let expected: usize = kvcc::enumerate_kvccs(g, *k, &KvccOptions::default())
        .unwrap()
        .iter()
        .map(|c| c.len())
        .sum();
    assert_eq!(
        sharded.checksum, expected,
        "sharded enumeration over frames disagrees with the direct run"
    );
    report
}

/// Speedup pairs reported in `BENCH_pr4.json` (the framed-over-direct ratio
/// reads as protocol overhead, not a speedup).
pub fn speedup_pairs() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![(
        "pr4/query/batch-framed",
        "pr4/query/batch-direct",
        "framed_vs_direct",
    )]
}

/// JSON payload for `BENCH_pr4.json` (hand-assembled like the other
/// sections).
pub fn render_json(report: &Report) -> String {
    let (g, k, seeds) = workload();
    let mut out = String::from("{\n");
    out.push_str("  \"pr\": 4,\n");
    out.push_str(
        "  \"description\": \"protocol v2: framed vs in-process query batches, TopK page \
         walks, sharded enumeration over loopback frames, and varint-vs-fixed wire payload \
         sizes on the planted-partition suite\",\n",
    );
    out.push_str(&format!(
        "  \"workload\": {{\"vertices\": {}, \"edges\": {}, \"k\": {}, \"seed_queries\": {}}},\n",
        g.num_vertices(),
        g.num_edges(),
        k,
        seeds.len()
    ));
    out.push_str("  \"results\": [\n");
    for (i, e) in report.entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}, \"checksum\": {}}}{}\n",
            e.name,
            e.mean_ns,
            e.iterations,
            e.checksum,
            if i + 1 < report.entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"payload_sizes\": [\n");
    let sizes = payload_sizes();
    for (i, row) in sizes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"varint_bytes\": {}, \"fixed_bytes\": {}, \
             \"varint_over_fixed\": {:.3}}}{}\n",
            row.name,
            row.varint_bytes,
            row.fixed_bytes,
            row.ratio(),
            if i + 1 < sizes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"ratios\": {\n");
    let mut parts = Vec::new();
    for (baseline, contender, label) in speedup_pairs() {
        if let Some(s) = report.speedup(baseline, contender) {
            parts.push(format!("    \"{label}\": {s:.3}"));
        }
    }
    out.push_str(&parts.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_paths_agree_with_in_process_answers() {
        assert_eq!(batch_direct(), batch_framed());
        assert!(topk_framed() > 0);
        assert!(sharded_frames() > 0);
    }

    #[test]
    fn varint_payloads_beat_fixed_width() {
        for row in payload_sizes() {
            assert!(
                row.varint_bytes < row.fixed_bytes,
                "{}: varint {} vs fixed {}",
                row.name,
                row.varint_bytes,
                row.fixed_bytes
            );
        }
    }

    #[test]
    fn smoke_report_is_complete_and_valid_json_shape() {
        let report = run_all(true);
        assert_eq!(report.entries.len(), 4);
        let json = render_json(&report);
        assert!(json.contains("\"payload_sizes\""));
        assert!(json.contains("framed_vs_direct"));
    }
}
