//! Table 2: proportion of phase-1 vertices handled by each sweep rule.
//!
//! For every dataset the paper runs `VCCE*` for k = 20..40, tracks how many
//! of the vertices reached by the phase-1 loop of `GLOBAL-CUT*` were pruned by
//! neighbor-sweep rule 1 (strong side-vertex), neighbor-sweep rule 2 (vertex
//! deposit), group sweep, or had to be tested with a flow computation
//! ("Non-Pru"), and reports the averages.

use kvcc::{enumerate_kvccs, EnumerationStats, KvccOptions};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};

use crate::report::{fmt_percent, Table};

/// Aggregated sweep proportions for one dataset.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepProportions {
    /// Neighbor-sweep rule 1 share.
    pub ns1: f64,
    /// Neighbor-sweep rule 2 share.
    pub ns2: f64,
    /// Group-sweep share.
    pub gs: f64,
    /// Non-pruned (actually tested) share.
    pub non_pruned: f64,
}

/// Runs `VCCE*` over the efficiency k-range and aggregates the sweep counters.
pub fn proportions_for(dataset: SuiteDataset, scale: SuiteScale) -> SweepProportions {
    let g = dataset.generate(scale);
    let mut merged = EnumerationStats::default();
    for &k in scale.efficiency_k_values() {
        let result = enumerate_kvccs(&g, k, &KvccOptions::full()).expect("enumeration succeeds");
        merged.merge(result.stats());
    }
    SweepProportions {
        ns1: merged.proportion_neighbor_rule1(),
        ns2: merged.proportion_neighbor_rule2(),
        gs: merged.proportion_group_sweep(),
        non_pruned: merged.proportion_tested(),
    }
}

/// Reproduces Table 2 at the given scale.
pub fn run(scale: SuiteScale) -> Table {
    let mut table = Table::new(
        "Table 2 — proportion of phase-1 vertices per sweep rule (VCCE*)",
        &["Rule", "Stanford", "DBLP", "ND", "Google", "Cit", "Cnr"],
    );
    let datasets = SuiteDataset::efficiency_subset();
    let proportions: Vec<SweepProportions> = datasets
        .iter()
        .map(|&d| proportions_for(d, scale))
        .collect();

    type Extractor = fn(&SweepProportions) -> f64;
    let rows: [(&str, Extractor); 4] = [
        ("NS 1", |p| p.ns1),
        ("NS 2", |p| p.ns2),
        ("GS", |p| p.gs),
        ("Non-Pru", |p| p.non_pruned),
    ];
    for (label, extract) in rows {
        let mut cells = vec![label.to_string()];
        // Order columns as in the paper: Stanford, DBLP, ND, Google, Cit, Cnr.
        for p in &proportions {
            cells.push(fmt_percent(extract(p)));
        }
        table.add_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_sum_to_at_most_one() {
        let p = proportions_for(SuiteDataset::Dblp, SuiteScale::Tiny);
        let total = p.ns1 + p.ns2 + p.gs + p.non_pruned;
        assert!(total <= 1.0 + 1e-9);
        assert!(
            total > 0.0,
            "some phase-1 vertices must have been processed"
        );
    }

    #[test]
    fn table_has_four_rule_rows() {
        let table = run(SuiteScale::Tiny);
        assert_eq!(table.num_rows(), 4);
        let text = table.render();
        assert!(text.contains("Non-Pru"));
    }
}
