//! Figure 10: processing time of the four algorithm variants.
//!
//! For every dataset of the efficiency subset and every k in the efficiency
//! range, all four variants (VCCE, VCCE-N, VCCE-G, VCCE*) are run and their
//! wall-clock time is reported. The paper's qualitative findings are:
//!
//! * time decreases as k grows (fewer and smaller k-VCCs survive);
//! * both sweep variants beat the basic algorithm;
//! * VCCE* is the fastest in every configuration.

use std::time::Duration;

use kvcc::{enumerate_kvccs, AlgorithmVariant, KvccOptions};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};
use kvcc_graph::UndirectedGraph;

use crate::report::{fmt_secs, Table};

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct TimingRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Connectivity parameter.
    pub k: u32,
    /// Wall-clock time per variant, in the order VCCE, VCCE-N, VCCE-G, VCCE*.
    pub times: [Duration; 4],
    /// Number of k-VCCs found (identical across variants).
    pub components: usize,
}

/// Times all four variants on one graph for one k.
pub fn time_variants(g: &UndirectedGraph, k: u32) -> ([Duration; 4], usize) {
    let mut times = [Duration::ZERO; 4];
    let mut components = 0usize;
    for (i, variant) in AlgorithmVariant::all().into_iter().enumerate() {
        let result = enumerate_kvccs(g, k, &KvccOptions::for_variant(variant))
            .expect("enumeration succeeds");
        times[i] = result.stats().elapsed;
        components = result.num_components();
    }
    (times, components)
}

/// Produces the Fig. 10 rows for one dataset.
pub fn rows_for(dataset: SuiteDataset, scale: SuiteScale) -> Vec<TimingRow> {
    let g = dataset.generate(scale);
    scale
        .efficiency_k_values()
        .iter()
        .map(|&k| {
            let (times, components) = time_variants(&g, k);
            TimingRow {
                dataset: dataset.name(),
                k,
                times,
                components,
            }
        })
        .collect()
}

/// Reproduces Fig. 10 at the given scale.
pub fn run(scale: SuiteScale) -> Table {
    let mut table = Table::new(
        "Fig. 10 — processing time (seconds)",
        &[
            "Dataset", "k", "VCCE", "VCCE-N", "VCCE-G", "VCCE*", "#k-VCCs",
        ],
    );
    for dataset in SuiteDataset::efficiency_subset() {
        for row in rows_for(dataset, scale) {
            table.add_row(vec![
                row.dataset.to_string(),
                row.k.to_string(),
                fmt_secs(row.times[0]),
                fmt_secs(row.times[1]),
                fmt_secs(row.times[2]),
                fmt_secs(row.times[3]),
                row.components.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_rows_and_positive_times() {
        let rows = rows_for(SuiteDataset::Youtube, SuiteScale::Tiny);
        assert_eq!(rows.len(), SuiteScale::Tiny.efficiency_k_values().len());
        for row in &rows {
            for t in &row.times {
                assert!(t.as_nanos() > 0);
            }
        }
    }
}
