//! Figure 14: case study on a collaboration network.
//!
//! Reproduces the §6.4 experiment on a DBLP-style synthetic collaboration
//! graph: take the ego network of a prolific hub author, enumerate its
//! 4-VCCs (the author's research groups, with multi-group authors appearing
//! in several of them) and compare against the single 4-ECC / 4-core blob.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_baselines::{k_core_components, k_edge_connected_components};
use kvcc_datasets::collaboration::{collaboration_graph, ego_subgraph, CollaborationConfig};

use crate::report::Table;

/// Summary of the case study.
#[derive(Clone, Debug)]
pub struct CaseStudy {
    /// Number of authors in the ego network.
    pub ego_authors: usize,
    /// Number of 4-VCCs (detected research groups).
    pub num_vccs: usize,
    /// Number of 4-ECCs of the ego network.
    pub num_eccs: usize,
    /// Number of 4-core connected components of the ego network.
    pub num_cores: usize,
    /// Authors belonging to more than one 4-VCC (the black vertices of
    /// Fig. 14).
    pub multi_group_authors: usize,
    /// Planted number of research groups (ground truth of the generator).
    pub planted_groups: usize,
}

/// Runs the case study with the default generator configuration.
pub fn case_study() -> CaseStudy {
    let config = CollaborationConfig::default();
    let collab = collaboration_graph(&config);
    let ego = ego_subgraph(&collab.graph, collab.hub);
    let k = config.group_connectivity as u32;

    let vccs = enumerate_kvccs(&ego.graph, k, &KvccOptions::default()).expect("enumeration");
    let eccs = k_edge_connected_components(&ego.graph, k as usize);
    let cores = k_core_components(&ego.graph, k as usize);
    let multi_group_authors = (0..ego.graph.num_vertices() as u32)
        .filter(|&v| vccs.components_containing(v).len() > 1)
        .count();

    CaseStudy {
        ego_authors: ego.graph.num_vertices(),
        num_vccs: vccs.num_components(),
        num_eccs: eccs.len(),
        num_cores: cores.len(),
        multi_group_authors,
        planted_groups: collab.groups.len(),
    }
}

/// Reproduces Fig. 14 as a summary table.
pub fn run() -> Table {
    let cs = case_study();
    let mut table = Table::new(
        "Fig. 14 — collaboration case study (ego network of the hub author, k = 4)",
        &["Quantity", "Value"],
    );
    table.add_row(vec![
        "authors in the ego network".into(),
        cs.ego_authors.to_string(),
    ]);
    table.add_row(vec![
        "planted research groups".into(),
        cs.planted_groups.to_string(),
    ]);
    table.add_row(vec!["4-VCCs found".into(), cs.num_vccs.to_string()]);
    table.add_row(vec!["4-ECCs found".into(), cs.num_eccs.to_string()]);
    table.add_row(vec![
        "4-core components found".into(),
        cs.num_cores.to_string(),
    ]);
    table.add_row(vec![
        "authors in more than one 4-VCC".into(),
        cs.multi_group_authors.to_string(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vccs_separate_groups_that_the_baselines_merge() {
        let cs = case_study();
        assert!(
            cs.num_vccs > 1,
            "the 4-VCCs must reveal several research groups"
        );
        assert!(
            cs.num_vccs >= cs.num_eccs,
            "k-ECC merges groups the k-VCC model separates"
        );
        assert!(cs.num_eccs >= cs.num_cores.min(1));
        assert_eq!(cs.num_cores, 1, "the 4-core of the ego network is one blob");
        assert!(
            cs.multi_group_authors >= 1,
            "the hub belongs to every group"
        );
    }
}
