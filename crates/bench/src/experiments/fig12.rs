//! Figure 12: memory usage of VCCE* as k varies.
//!
//! The paper measures resident memory; this harness reports the enumerator's
//! analytic peak estimate (live partitioned subgraphs + sparse certificate +
//! flow scratch), which captures the same trends: usage shrinks as k grows
//! because the k-core prunes more of the graph and fewer partitions are alive,
//! with occasional upticks where the certificate becomes denser.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};

use crate::report::{fmt_mib, Table};

/// Peak-memory estimates (bytes) of one dataset for every k of the efficiency
/// range.
pub fn memory_for(dataset: SuiteDataset, scale: SuiteScale) -> Vec<(u32, usize)> {
    let g = dataset.generate(scale);
    scale
        .efficiency_k_values()
        .iter()
        .map(|&k| {
            let result = enumerate_kvccs(&g, k, &KvccOptions::full()).expect("enumeration");
            (k, result.stats().peak_memory_bytes)
        })
        .collect()
}

/// Reproduces Fig. 12 at the given scale.
pub fn run(scale: SuiteScale) -> Table {
    let ks = scale.efficiency_k_values();
    let mut header: Vec<String> = vec!["Dataset".to_string()];
    header.extend(ks.iter().map(|k| format!("k={k} (MiB)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new("Fig. 12 — peak memory estimate of VCCE*", &header_refs);
    for dataset in SuiteDataset::efficiency_subset() {
        let memory = memory_for(dataset, scale);
        let mut cells = vec![dataset.name().to_string()];
        cells.extend(memory.iter().map(|(_, bytes)| fmt_mib(*bytes)));
        table.add_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_estimates_are_positive_and_bounded_by_graph_size() {
        let memory = memory_for(SuiteDataset::NotreDame, SuiteScale::Tiny);
        let g = SuiteDataset::NotreDame.generate(SuiteScale::Tiny);
        for (k, bytes) in memory {
            assert!(bytes > 0, "k={k}");
            // The estimate counts the input graph plus bounded duplication
            // (Lemma 8) plus flow scratch; 64x the raw graph is a very
            // generous sanity ceiling.
            assert!(
                bytes < 64 * g.memory_bytes().max(1),
                "k={k} uses {bytes} bytes"
            );
        }
    }

    #[test]
    fn table_covers_every_dataset() {
        let table = run(SuiteScale::Tiny);
        assert_eq!(table.num_rows(), SuiteDataset::efficiency_subset().len());
    }
}
