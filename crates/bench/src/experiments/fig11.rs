//! Figure 11: number of k-VCCs per dataset as k varies.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};

use crate::report::Table;

/// Counts the k-VCCs of one dataset for every k of the efficiency range.
pub fn counts_for(dataset: SuiteDataset, scale: SuiteScale) -> Vec<(u32, usize)> {
    let g = dataset.generate(scale);
    scale
        .efficiency_k_values()
        .iter()
        .map(|&k| {
            let result = enumerate_kvccs(&g, k, &KvccOptions::default()).expect("enumeration");
            (k, result.num_components())
        })
        .collect()
}

/// Reproduces Fig. 11 at the given scale.
pub fn run(scale: SuiteScale) -> Table {
    let ks = scale.efficiency_k_values();
    let mut header: Vec<String> = vec!["Dataset".to_string()];
    header.extend(ks.iter().map(|k| format!("k={k}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new("Fig. 11 — number of k-VCCs", &header_refs);
    for dataset in SuiteDataset::efficiency_subset() {
        let counts = counts_for(dataset, scale);
        let mut cells = vec![dataset.name().to_string()];
        cells.extend(counts.iter().map(|(_, c)| c.to_string()));
        table.add_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_k_value_has_components_in_the_stand_ins() {
        // The stand-ins plant blocks at three connectivity levels covering the
        // whole efficiency k-range, so the count never drops to zero. (The
        // decreasing *trend* of Fig. 11 is a property of the generated numbers
        // and is recorded in EXPERIMENTS.md rather than asserted here, because
        // at tiny scale low k values can merge overlapping blocks.)
        let counts = counts_for(SuiteDataset::Google, SuiteScale::Tiny);
        assert_eq!(counts.len(), SuiteScale::Tiny.efficiency_k_values().len());
        for (k, count) in counts {
            assert!(count > 0, "expected some {k}-VCCs");
        }
    }

    #[test]
    fn table_has_one_row_per_dataset() {
        let table = run(SuiteScale::Tiny);
        assert_eq!(table.num_rows(), SuiteDataset::efficiency_subset().len());
    }
}
