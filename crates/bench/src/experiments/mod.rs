//! One module per table / figure of the paper's evaluation (§6).
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table 1 — network statistics of the datasets |
//! | [`table2`] | Table 2 — proportion of vertices pruned by each sweep rule |
//! | [`effectiveness`] | Figs. 7, 8, 9 — diameter / edge density / clustering of k-CC vs k-ECC vs k-VCC |
//! | [`fig10`] | Fig. 10 — processing time of VCCE, VCCE-N, VCCE-G, VCCE* |
//! | [`fig11`] | Fig. 11 — number of k-VCCs |
//! | [`fig12`] | Fig. 12 — memory usage of VCCE* |
//! | [`fig13`] | Fig. 13 — scalability when sampling vertices / edges |
//! | [`fig14`] | Fig. 14 — collaboration-network case study |

pub mod effectiveness;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod table1;
pub mod table2;
