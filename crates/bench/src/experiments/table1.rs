//! Table 1: network statistics of the evaluation datasets.

use kvcc_datasets::suite::{SuiteDataset, SuiteScale};
use kvcc_graph::metrics::graph_statistics;

use crate::report::{fmt_f64, Table};

/// Generates every dataset stand-in at the given scale and reports
/// |V|, |E|, density (average degree) and maximum degree — the columns of
/// Table 1.
pub fn run(scale: SuiteScale) -> Table {
    let mut table = Table::new(
        "Table 1 — network statistics (synthetic stand-ins)",
        &["Dataset", "|V|", "|E|", "Density", "Max Degree"],
    );
    for dataset in SuiteDataset::all() {
        let g = dataset.generate(scale);
        let s = graph_statistics(&g);
        table.add_row(vec![
            dataset.name().to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            fmt_f64(s.density),
            s.max_degree.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_one_row_per_dataset() {
        let table = run(SuiteScale::Tiny);
        assert_eq!(table.num_rows(), 7);
        let text = table.render();
        for name in ["Stanford", "DBLP", "Cnr", "ND", "Google", "Youtube", "Cit"] {
            assert!(text.contains(name), "missing dataset {name}");
        }
    }
}
