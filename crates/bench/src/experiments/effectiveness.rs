//! Figures 7, 8 and 9: average diameter, edge density and clustering
//! coefficient of k-core components ("k-CC"), k-ECCs and k-VCCs.
//!
//! For every dataset of the effectiveness subset and every k in the
//! effectiveness range, all three kinds of components are computed and the
//! three quality metrics are averaged over the components of each model.
//! The paper's observation — k-VCCs have the smallest diameter, the highest
//! edge density and the highest clustering coefficient — should be visible in
//! each row.

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_baselines::{k_core_components, k_edge_connected_components};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};
use kvcc_graph::metrics::{average_clustering, diameter_estimate, edge_density};
use kvcc_graph::{UndirectedGraph, VertexId};

use crate::report::{fmt_f64, Table};

/// Which of the three quality metrics to report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Fig. 7: average diameter.
    Diameter,
    /// Fig. 8: average edge density.
    EdgeDensity,
    /// Fig. 9: average clustering coefficient.
    Clustering,
}

impl Metric {
    fn label(self) -> &'static str {
        match self {
            Metric::Diameter => "Average diameter",
            Metric::EdgeDensity => "Average edge density",
            Metric::Clustering => "Average clustering coefficient",
        }
    }

    fn figure(self) -> &'static str {
        match self {
            Metric::Diameter => "Fig. 7",
            Metric::EdgeDensity => "Fig. 8",
            Metric::Clustering => "Fig. 9",
        }
    }
}

/// Average of `metric` over a set of components of `g`.
fn average_metric(g: &UndirectedGraph, components: &[Vec<VertexId>], metric: Metric) -> f64 {
    if components.is_empty() {
        return 0.0;
    }
    let sum: f64 = components
        .iter()
        .map(|members| {
            let sub = g.induced_subgraph(members).graph;
            match metric {
                Metric::Diameter => diameter_estimate(&sub, 4, 400) as f64,
                Metric::EdgeDensity => edge_density(&sub),
                Metric::Clustering => average_clustering(&sub),
            }
        })
        .sum();
    sum / components.len() as f64
}

/// One measured row: dataset, k, and the metric for each of the three models.
#[derive(Clone, Debug)]
pub struct EffectivenessRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// The connectivity parameter.
    pub k: u32,
    /// Metric averaged over the k-core connected components.
    pub kcc: f64,
    /// Metric averaged over the k-ECCs.
    pub kecc: f64,
    /// Metric averaged over the k-VCCs.
    pub kvcc: f64,
}

/// Computes the metric for one dataset across the effectiveness k-range.
pub fn rows_for(dataset: SuiteDataset, scale: SuiteScale, metric: Metric) -> Vec<EffectivenessRow> {
    let g = dataset.generate(scale);
    scale
        .effectiveness_k_values()
        .iter()
        .map(|&k| {
            let kcc = k_core_components(&g, k as usize);
            let kecc = k_edge_connected_components(&g, k as usize);
            let kvcc: Vec<Vec<VertexId>> = enumerate_kvccs(&g, k, &KvccOptions::default())
                .expect("enumeration succeeds")
                .iter()
                .map(|c| c.vertices().to_vec())
                .collect();
            EffectivenessRow {
                dataset: dataset.name(),
                k,
                kcc: average_metric(&g, &kcc, metric),
                kecc: average_metric(&g, &kecc, metric),
                kvcc: average_metric(&g, &kvcc, metric),
            }
        })
        .collect()
}

/// Reproduces one of Figs. 7–9 at the given scale.
pub fn run(scale: SuiteScale, metric: Metric) -> Table {
    let mut table = Table::new(
        &format!(
            "{} — {} (k-CC vs k-ECC vs k-VCC)",
            metric.figure(),
            metric.label()
        ),
        &["Dataset", "k", "k-CC", "k-ECC", "k-VCC"],
    );
    for dataset in SuiteDataset::effectiveness_subset() {
        for row in rows_for(dataset, scale, metric) {
            table.add_row(vec![
                row.dataset.to_string(),
                row.k.to_string(),
                fmt_f64(row.kcc),
                fmt_f64(row.kecc),
                fmt_f64(row.kvcc),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvccs_are_at_least_as_cohesive_as_the_baselines() {
        // On the Tiny DBLP stand-in, for one k value, check the paper's
        // qualitative claim: k-VCC density >= k-ECC density >= (roughly)
        // k-CC density, and k-VCC diameter <= k-CC diameter.
        let rows = rows_for(SuiteDataset::Dblp, SuiteScale::Tiny, Metric::EdgeDensity);
        assert!(!rows.is_empty());
        for row in &rows {
            if row.kvcc > 0.0 && row.kecc > 0.0 {
                assert!(
                    row.kvcc + 1e-9 >= row.kecc,
                    "k={}: k-VCC density {} < k-ECC density {}",
                    row.k,
                    row.kvcc,
                    row.kecc
                );
            }
        }
        let diam = rows_for(SuiteDataset::Dblp, SuiteScale::Tiny, Metric::Diameter);
        for row in &diam {
            if row.kvcc > 0.0 && row.kcc > 0.0 {
                assert!(
                    row.kvcc <= row.kcc + 1e-9,
                    "k={}: diameter regression",
                    row.k
                );
            }
        }
    }

    #[test]
    fn tables_have_one_row_per_dataset_and_k() {
        let table = run(SuiteScale::Tiny, Metric::Clustering);
        let expected = SuiteDataset::effectiveness_subset().len()
            * SuiteScale::Tiny.effectiveness_k_values().len();
        assert_eq!(table.num_rows(), expected);
    }
}
