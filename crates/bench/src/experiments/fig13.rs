//! Figure 13: scalability when varying the graph size and density.
//!
//! Following §6.3, the Google and Cit stand-ins are down-sampled to 20%–100%
//! of their vertices (induced subgraph) and, separately, of their edges, and
//! all four algorithm variants are timed on every sample.

use std::time::Duration;

use kvcc::{enumerate_kvccs, AlgorithmVariant, KvccOptions};
use kvcc_datasets::sampling::{sample_edges, sample_vertices, SCALABILITY_FRACTIONS};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};
use kvcc_graph::UndirectedGraph;

use crate::report::{fmt_secs, Table};

/// Which quantity is being sampled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleMode {
    /// Sample vertices and take the induced subgraph ("Vary |V|").
    Vertices,
    /// Sample edges and keep the full vertex set ("Vary |E|").
    Edges,
}

impl SampleMode {
    fn label(self) -> &'static str {
        match self {
            SampleMode::Vertices => "Vary |V|",
            SampleMode::Edges => "Vary |E|",
        }
    }
}

/// One measured sample point.
#[derive(Clone, Debug)]
pub struct ScalabilityRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Sampling mode.
    pub mode: SampleMode,
    /// Sampling fraction (0.2 .. 1.0).
    pub fraction: f64,
    /// Wall-clock time per variant, ordered VCCE, VCCE-N, VCCE-G, VCCE*.
    pub times: [Duration; 4],
}

fn time_all(g: &UndirectedGraph, k: u32) -> [Duration; 4] {
    let mut times = [Duration::ZERO; 4];
    for (i, variant) in AlgorithmVariant::all().into_iter().enumerate() {
        let result =
            enumerate_kvccs(g, k, &KvccOptions::for_variant(variant)).expect("enumeration");
        times[i] = result.stats().elapsed;
    }
    times
}

/// Runs the scalability sweep for one dataset and mode. `k` is fixed to the
/// smallest value of the efficiency range (as large k values trivialise the
/// sampled graphs).
pub fn rows_for(dataset: SuiteDataset, scale: SuiteScale, mode: SampleMode) -> Vec<ScalabilityRow> {
    let g = dataset.generate(scale);
    let k = scale.efficiency_k_values()[0];
    SCALABILITY_FRACTIONS
        .iter()
        .map(|&fraction| {
            let sampled = match mode {
                SampleMode::Vertices => sample_vertices(&g, fraction, 0xF1613),
                SampleMode::Edges => sample_edges(&g, fraction, 0xF1613),
            };
            ScalabilityRow {
                dataset: dataset.name(),
                mode,
                fraction,
                times: time_all(&sampled, k),
            }
        })
        .collect()
}

/// Reproduces Fig. 13 at the given scale (both modes, Google and Cit).
pub fn run(scale: SuiteScale) -> Table {
    let mut table = Table::new(
        "Fig. 13 — scalability (seconds)",
        &[
            "Dataset", "Mode", "Sample", "VCCE", "VCCE-N", "VCCE-G", "VCCE*",
        ],
    );
    for dataset in [SuiteDataset::Google, SuiteDataset::Cit] {
        for mode in [SampleMode::Vertices, SampleMode::Edges] {
            for row in rows_for(dataset, scale, mode) {
                table.add_row(vec![
                    row.dataset.to_string(),
                    row.mode.label().to_string(),
                    format!("{:.0}%", row.fraction * 100.0),
                    fmt_secs(row.times[0]),
                    fmt_secs(row.times[1]),
                    fmt_secs(row.times[2]),
                    fmt_secs(row.times[3]),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_five_sample_points_per_mode() {
        let rows = rows_for(SuiteDataset::Cit, SuiteScale::Tiny, SampleMode::Vertices);
        assert_eq!(rows.len(), SCALABILITY_FRACTIONS.len());
        assert!(rows
            .iter()
            .all(|r| r.times.iter().all(|t| t.as_nanos() > 0)));
        assert_eq!(rows[0].mode.label(), "Vary |V|");
        assert_eq!(SampleMode::Edges.label(), "Vary |E|");
    }
}
