//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! sparse certificate on/off, distance-descending processing order on/off and
//! strong-side-vertex source selection on/off, all measured on the full
//! VCCE* algorithm.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};

fn bench_ablations(c: &mut Criterion) {
    let graph = SuiteDataset::Google.generate(SuiteScale::Tiny);
    let k = 8u32;

    let mut configurations: Vec<(&'static str, KvccOptions)> = Vec::new();
    configurations.push(("full", KvccOptions::full()));

    let mut no_certificate = KvccOptions::full();
    no_certificate.use_sparse_certificate = false;
    configurations.push(("no_sparse_certificate", no_certificate));

    let mut no_order = KvccOptions::full();
    no_order.order_by_distance = false;
    configurations.push(("no_distance_order", no_order));

    let mut no_ssv_source = KvccOptions::full();
    no_ssv_source.prefer_side_vertex_source = false;
    configurations.push(("no_side_vertex_source", no_ssv_source));

    let mut no_ssv_at_all = KvccOptions::full();
    no_ssv_at_all.max_degree_for_side_vertex_check = Some(0);
    configurations.push(("side_vertex_check_disabled", no_ssv_at_all));

    let mut group = c.benchmark_group("ablations_vcce_star");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, options) in &configurations {
        group.bench_with_input(BenchmarkId::from_parameter(name), options, |b, options| {
            b.iter(|| {
                let result = enumerate_kvccs(&graph, k, options).expect("enumeration");
                std::hint::black_box(result.num_components())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
