//! PR 1 criterion bench: vec-adjacency vs CSR substrates and sequential vs
//! parallel enumeration on the planted-partition suite.
//!
//! The measurement logic is shared with the `pr1-bench` binary (which also
//! emits `BENCH_pr1.json`); this harness exposes the same comparisons through
//! the criterion interface.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kvcc_bench::pr1;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("pr1_substrate");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for case in pr1::substrate_cases() {
        group.bench_with_input(BenchmarkId::from_parameter(case.name), &case, |b, case| {
            b.iter(|| std::hint::black_box((case.run)()))
        });
    }
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("pr1_enumeration");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for case in pr1::enumeration_cases() {
        group.bench_with_input(BenchmarkId::from_parameter(case.name), &case, |b, case| {
            b.iter(|| std::hint::black_box((case.run)()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrates, bench_enumeration);
criterion_main!(benches);
