//! Criterion micro-benchmarks of the substrates the enumeration is built on:
//! k-core peeling, sparse-certificate construction, local connectivity
//! (LOC-CUT) flow queries and strong side-vertex detection.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kvcc::certificate::sparse_certificate;
use kvcc::side_vertex::strong_side_vertices;
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};
use kvcc_flow::VertexFlowGraph;
use kvcc_graph::kcore::k_core_vertices;

fn bench_kcore(c: &mut Criterion) {
    let graph = SuiteDataset::Google.generate(SuiteScale::Tiny);
    let mut group = c.benchmark_group("substrate_kcore");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| std::hint::black_box(k_core_vertices(&graph, k).len()))
        });
    }
    group.finish();
}

fn bench_certificate(c: &mut Criterion) {
    let graph = SuiteDataset::Cnr.generate(SuiteScale::Tiny);
    let mut group = c.benchmark_group("substrate_sparse_certificate");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [4u32, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| std::hint::black_box(sparse_certificate(&graph, k).num_edges()))
        });
    }
    group.finish();
}

fn bench_loc_cut(c: &mut Criterion) {
    // LOC-CUT on the densest planted block: build the flow graph once and
    // query distant pairs, as GLOBAL-CUT does.
    let graph = SuiteDataset::Stanford.generate(SuiteScale::Tiny);
    let core = k_core_vertices(&graph, 12);
    let sub = graph.induced_subgraph(&core).graph;
    let mut flow = VertexFlowGraph::build(&sub);
    let n = sub.num_vertices() as u32;
    let mut group = c.benchmark_group("substrate_loc_cut");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [4u32, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut certified = 0usize;
                for v in (1..n.min(32)).step_by(3) {
                    if flow.local_connectivity(&sub, 0, v, k).is_at_least_k() {
                        certified += 1;
                    }
                }
                std::hint::black_box(certified)
            })
        });
    }
    group.finish();
}

fn bench_side_vertices(c: &mut Criterion) {
    let graph = SuiteDataset::Dblp.generate(SuiteScale::Tiny);
    let core = k_core_vertices(&graph, 6);
    let sub = graph.induced_subgraph(&core).graph;
    let mut group = c.benchmark_group("substrate_strong_side_vertices");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for k in [6u32, 9, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let strong = strong_side_vertices(&sub, k, Some(4096));
                std::hint::black_box(strong.iter().filter(|&&s| s).count())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kcore,
    bench_certificate,
    bench_loc_cut,
    bench_side_vertices
);
criterion_main!(benches);
