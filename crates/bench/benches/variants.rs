//! Criterion benchmark backing Fig. 10: the four algorithm variants on the
//! dataset stand-ins (tiny scale so `cargo bench` stays fast; the full-size
//! sweep is produced by `kvcc-bench fig10`).

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kvcc::{enumerate_kvccs, AlgorithmVariant, KvccOptions};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_variants");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for dataset in [SuiteDataset::Google, SuiteDataset::Dblp] {
        let graph = dataset.generate(SuiteScale::Tiny);
        let k = 8u32;
        for variant in AlgorithmVariant::all() {
            let options = KvccOptions::for_variant(variant);
            group.bench_with_input(
                BenchmarkId::new(dataset.name(), variant.paper_name()),
                &graph,
                |b, g| {
                    b.iter(|| {
                        let result = enumerate_kvccs(g, k, &options).expect("enumeration");
                        std::hint::black_box(result.num_components())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_k_sweep_vcce_star");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let graph = SuiteDataset::Stanford.generate(SuiteScale::Tiny);
    for &k in SuiteScale::Tiny.efficiency_k_values() {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let result = enumerate_kvccs(&graph, k, &KvccOptions::full()).expect("enumeration");
                std::hint::black_box(result.num_components())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_k_sweep);
criterion_main!(benches);
