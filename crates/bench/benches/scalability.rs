//! Criterion benchmark backing Fig. 13: VCCE* on vertex- and edge-sampled
//! versions of the Cit stand-in.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kvcc::{enumerate_kvccs, KvccOptions};
use kvcc_datasets::sampling::{sample_edges, sample_vertices, SCALABILITY_FRACTIONS};
use kvcc_datasets::suite::{SuiteDataset, SuiteScale};

fn bench_vertex_sampling(c: &mut Criterion) {
    let graph = SuiteDataset::Cit.generate(SuiteScale::Tiny);
    let k = 6u32;
    let mut group = c.benchmark_group("fig13_vary_vertices");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &fraction in &SCALABILITY_FRACTIONS {
        let sampled = sample_vertices(&graph, fraction, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", fraction * 100.0)),
            &sampled,
            |b, g| {
                b.iter(|| {
                    let result = enumerate_kvccs(g, k, &KvccOptions::full()).expect("enumeration");
                    std::hint::black_box(result.num_components())
                })
            },
        );
    }
    group.finish();
}

fn bench_edge_sampling(c: &mut Criterion) {
    let graph = SuiteDataset::Cit.generate(SuiteScale::Tiny);
    let k = 6u32;
    let mut group = c.benchmark_group("fig13_vary_edges");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &fraction in &SCALABILITY_FRACTIONS {
        let sampled = sample_edges(&graph, fraction, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", fraction * 100.0)),
            &sampled,
            |b, g| {
                b.iter(|| {
                    let result = enumerate_kvccs(g, k, &KvccOptions::full()).expect("enumeration");
                    std::hint::black_box(result.num_components())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vertex_sampling, bench_edge_sampling);
criterion_main!(benches);
