//! Strong side-vertex detection (§5.1.1).
//!
//! A *side-vertex* is a vertex that is not contained in any vertex cut of size
//! `< k` (Definition 9). Testing that exactly would itself require
//! connectivity computations, so the paper uses the sufficient structural
//! condition of Theorem 8: `u` is a **strong side-vertex** if every pair of
//! its neighbours is either adjacent or shares at least `k` common neighbours
//! (both facts imply the pair is k-local-connected by Lemma 5 / Lemma 13).
//!
//! Strong side-vertices drive two optimisations of `GLOBAL-CUT*`:
//!
//! * neighbor-sweep rule 1 — once the source is known to be k-connected to a
//!   strong side-vertex `v`, every neighbour of `v` can be swept;
//! * source selection — a strong side-vertex cannot belong to any small cut,
//!   so choosing one as the source makes phase 2 unnecessary.

use kvcc_graph::{GraphView, VertexId};

/// Computes the strong side-vertex flag for every vertex of `g`.
///
/// `max_degree` optionally caps the degree of vertices that are examined:
/// vertices with a larger degree are conservatively reported as *not* strong
/// side-vertices. The cap bounds the `O(Σ d(w)²)` cost of the check
/// (Lemma 14) on graphs with extreme hubs and never affects correctness, only
/// pruning power.
pub fn strong_side_vertices<G: GraphView>(g: &G, k: u32, max_degree: Option<usize>) -> Vec<bool> {
    let n = g.num_vertices();
    let mut strong = vec![false; n];
    for u in 0..n as VertexId {
        strong[u as usize] = is_strong_side_vertex(g, u, k, max_degree);
    }
    strong
}

/// Tests the Theorem 8 condition for a single vertex.
pub fn is_strong_side_vertex<G: GraphView>(
    g: &G,
    u: VertexId,
    k: u32,
    max_degree: Option<usize>,
) -> bool {
    let neighbors = g.neighbors(u);
    if let Some(cap) = max_degree {
        if neighbors.len() > cap {
            return false;
        }
    }
    for (i, &v) in neighbors.iter().enumerate() {
        for &w in &neighbors[i + 1..] {
            if g.has_edge(v, w) {
                continue;
            }
            if g.common_neighbors_at_least(v, w, k as usize) >= k as usize {
                continue;
            }
            return false;
        }
    }
    true
}

/// Returns the indices of all strong side-vertices (convenience wrapper used
/// by the source-selection step of Algorithm 3).
pub fn strong_side_vertex_list<G: GraphView>(
    g: &G,
    k: u32,
    max_degree: Option<usize>,
) -> Vec<VertexId> {
    strong_side_vertices(g, k, max_degree)
        .into_iter()
        .enumerate()
        .filter_map(|(v, s)| if s { Some(v as VertexId) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn every_clique_vertex_is_a_strong_side_vertex() {
        let g = complete(6);
        let strong = strong_side_vertices(&g, 3, None);
        assert!(strong.iter().all(|&s| s));
        assert_eq!(strong_side_vertex_list(&g, 3, None).len(), 6);
    }

    #[test]
    fn cut_vertex_of_two_triangles_is_not_strong() {
        // Two triangles sharing vertex 2: the neighbours of 2 include one
        // vertex from each triangle, which are neither adjacent nor share k
        // common neighbours.
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
                .unwrap();
        assert!(!is_strong_side_vertex(&g, 2, 2, None));
        // A degree-2 vertex inside one triangle has adjacent neighbours.
        assert!(is_strong_side_vertex(&g, 0, 2, None));
        assert!(is_strong_side_vertex(&g, 4, 2, None));
    }

    #[test]
    fn common_neighbour_condition_applies_without_adjacency() {
        // Complete bipartite K_{2,4}: vertices 0,1 on one side, 2..5 on the
        // other. Neighbours of 2 are {0, 1}, non-adjacent but with 4 common
        // neighbours, so for k <= 4 vertex 2 is strong.
        let g = UndirectedGraph::from_edges(
            6,
            vec![
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
            ],
        )
        .unwrap();
        assert!(is_strong_side_vertex(&g, 2, 4, None));
        assert!(!is_strong_side_vertex(&g, 2, 5, None));
        // Vertex 0's neighbours {2,3,4,5} pairwise share only {0,1}: strong
        // for k <= 2, not for k = 3.
        assert!(is_strong_side_vertex(&g, 0, 2, None));
        assert!(!is_strong_side_vertex(&g, 0, 3, None));
    }

    #[test]
    fn degree_cap_disables_detection_conservatively() {
        let g = complete(8);
        assert!(is_strong_side_vertex(&g, 0, 3, None));
        assert!(!is_strong_side_vertex(&g, 0, 3, Some(5)));
        let strong = strong_side_vertices(&g, 3, Some(5));
        assert!(strong.iter().all(|&s| !s));
    }

    #[test]
    fn isolated_and_pendant_vertices_are_vacuously_strong() {
        // The condition quantifies over pairs of neighbours, so degree <= 1
        // vertices satisfy it vacuously. (After k-core pruning such vertices
        // never reach the detector; see the module docs.)
        let g = UndirectedGraph::from_edges(3, vec![(0, 1)]).unwrap();
        assert!(is_strong_side_vertex(&g, 2, 2, None));
        assert!(is_strong_side_vertex(&g, 0, 2, None));
    }
}
