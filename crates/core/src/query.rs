//! Localized queries: the k-VCCs containing a given seed vertex.
//!
//! The case study of §6.4 asks for "all 4-VCCs containing author *Jiawei
//! Han*". Answering such a query does not require enumerating the whole
//! graph: every k-VCC containing the seed lies inside the seed's connected
//! component, and inside the k-core of that component. The query therefore
//!
//! 1. collects the seed's connected component with a single BFS (cost
//!    proportional to the component, not the graph);
//! 2. peels the k-core *inside that component only* on a [`SubgraphView`]
//!    vertex mask;
//! 3. extracts the seed's surviving component once into CSR form and runs the
//!    full enumeration on just that work item.
//!
//! On large graphs with many unrelated dense regions this is dramatically
//! cheaper than a full enumeration — and for repeated queries the
//! [`crate::index::ConnectivityIndex`] answers from a precomputed hierarchy
//! without touching flow code at all.

use kvcc_graph::traversal::component_of;
use kvcc_graph::{CsrGraph, GraphView, SubgraphView, VertexId};

use crate::enumerate::enumerate_kvccs;
use crate::error::KvccError;
use crate::options::KvccOptions;
use crate::result::KVertexConnectedComponent;

/// Enumerates the k-VCCs of `graph` that contain the vertex `seed`.
///
/// Returns an empty vector when the seed is pruned by the k-core (its degree
/// in every dense region is below `k`) or when no k-VCC covers it. Errors for
/// `k == 0` or a seed outside the graph.
pub fn kvccs_containing<G: GraphView>(
    graph: &G,
    seed: VertexId,
    k: u32,
    options: &KvccOptions,
) -> Result<Vec<KVertexConnectedComponent>, KvccError> {
    if k == 0 {
        return Err(KvccError::InvalidK);
    }
    if seed as usize >= graph.num_vertices() {
        return Err(KvccError::SeedOutOfRange { seed });
    }

    // Restrict to the seed's connected component *before* any peeling: the
    // k-core reduction then never touches unrelated regions of the graph,
    // which matters when the seed sits in a tiny component of a huge graph.
    let component = component_of(graph, seed);
    if component.len() <= k as usize {
        return Ok(Vec::new());
    }

    // Peel the k-core inside the component on a vertex mask; if the seed does
    // not survive it cannot be in any k-VCC (Theorem 3).
    let mut view = SubgraphView::from_vertices(graph, &component);
    view.k_core_reduce(k as usize);
    if !view.is_alive(seed) {
        return Ok(Vec::new());
    }

    // The peel may have split the component; keep only the piece that still
    // contains the seed and materialise it once as a CSR work item.
    let seed_component = view
        .components()
        .into_iter()
        .find(|comp| comp.binary_search(&seed).is_ok())
        .expect("the seed is alive, so it belongs to a component");
    if seed_component.len() <= k as usize {
        return Ok(Vec::new());
    }
    let mut map = Vec::new();
    let local = CsrGraph::extract_induced(graph, &seed_component, &mut map);
    let seed_local = seed_component
        .binary_search(&seed)
        .expect("seed is in its own component") as VertexId;

    // Full enumeration of just that work item, then filter and map back.
    let result = enumerate_kvccs(&local, k, options)?;
    let mut hits: Vec<KVertexConnectedComponent> = result
        .iter()
        .filter(|c| c.contains(seed_local))
        .map(|c| {
            let original: Vec<VertexId> = c
                .vertices()
                .iter()
                .map(|&v| seed_component[v as usize])
                .collect();
            KVertexConnectedComponent::new(original)
        })
        .collect();
    hits.sort();
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_kvccs;
    use kvcc_graph::UndirectedGraph;

    /// Two triangles sharing vertex 2 plus an unrelated K4 on {5,6,7,8}.
    fn mixed_graph() -> UndirectedGraph {
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(9, edges).unwrap()
    }

    #[test]
    fn query_matches_filtering_the_full_enumeration() {
        let g = mixed_graph();
        for k in 1..=3u32 {
            for seed in 0..g.num_vertices() as VertexId {
                let full = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
                let expected: Vec<_> = full.iter().filter(|c| c.contains(seed)).cloned().collect();
                let got = kvccs_containing(&g, seed, k, &KvccOptions::default()).unwrap();
                assert_eq!(got, expected, "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn csr_input_matches_vec_input() {
        let g = mixed_graph();
        let csr = CsrGraph::from_view(&g);
        for seed in [0u32, 2, 6] {
            let a = kvccs_containing(&g, seed, 2, &KvccOptions::default()).unwrap();
            let b = kvccs_containing(&csr, seed, 2, &KvccOptions::default()).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn shared_vertex_belongs_to_both_triangles() {
        let g = mixed_graph();
        let hits = kvccs_containing(&g, 2, 2, &KvccOptions::default()).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|c| c.contains(2)));
    }

    #[test]
    fn pruned_seed_returns_nothing() {
        let g = mixed_graph();
        // Vertex 0 has degree 2, so it cannot be in any 3-VCC.
        assert!(kvccs_containing(&g, 0, 3, &KvccOptions::default())
            .unwrap()
            .is_empty());
        // The K4 vertices are in a 3-VCC though.
        let hits = kvccs_containing(&g, 6, 3, &KvccOptions::default()).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].vertices(), &[5, 6, 7, 8]);
    }

    #[test]
    fn seed_in_a_tiny_component_never_peels_the_rest() {
        // An isolated edge next to a K5: the query for the edge endpoints
        // must answer from the 2-vertex component alone.
        let mut edges = vec![(0, 1)];
        for i in 2..7u32 {
            for j in (i + 1)..7 {
                edges.push((i, j));
            }
        }
        let g = UndirectedGraph::from_edges(7, edges).unwrap();
        assert!(kvccs_containing(&g, 0, 2, &KvccOptions::default())
            .unwrap()
            .is_empty());
        let hits = kvccs_containing(&g, 0, 1, &KvccOptions::default()).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].vertices(), &[0, 1]);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = mixed_graph();
        assert!(matches!(
            kvccs_containing(&g, 0, 0, &KvccOptions::default()),
            Err(KvccError::InvalidK)
        ));
        assert!(matches!(
            kvccs_containing(&g, 99, 2, &KvccOptions::default()),
            Err(KvccError::SeedOutOfRange { seed: 99 })
        ));
    }
}
