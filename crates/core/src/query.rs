//! Localized queries: the k-VCCs containing a given seed vertex.
//!
//! The case study of §6.4 asks for "all 4-VCCs containing author *Jiawei
//! Han*". Answering such a query does not require enumerating the whole
//! graph: every k-VCC containing the seed lies inside the connected component
//! of the k-core that contains the seed, so it is enough to enumerate that
//! single component and keep the components covering the seed. On large graphs
//! with many unrelated dense regions this is dramatically cheaper than a full
//! enumeration.

use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::traversal::connected_components;
use kvcc_graph::{UndirectedGraph, VertexId};

use crate::enumerate::enumerate_kvccs;
use crate::error::KvccError;
use crate::options::KvccOptions;
use crate::result::KVertexConnectedComponent;

/// Enumerates the k-VCCs of `graph` that contain the vertex `seed`.
///
/// Returns an empty vector when the seed is pruned by the k-core (its degree
/// in every dense region is below `k`) or when no k-VCC covers it. Errors for
/// `k == 0` or a seed outside the graph.
pub fn kvccs_containing(
    graph: &UndirectedGraph,
    seed: VertexId,
    k: u32,
    options: &KvccOptions,
) -> Result<Vec<KVertexConnectedComponent>, KvccError> {
    if k == 0 {
        return Err(KvccError::InvalidK);
    }
    if seed as usize >= graph.num_vertices() {
        return Err(KvccError::SeedOutOfRange { seed });
    }

    // Restrict to the k-core; if the seed does not survive it cannot be in any
    // k-VCC (Theorem 3).
    let core_vertices = k_core_vertices(graph, k as usize);
    let mut in_core = vec![false; graph.num_vertices()];
    for &v in &core_vertices {
        in_core[v as usize] = true;
    }
    if !in_core[seed as usize] {
        return Ok(Vec::new());
    }
    let core = graph.induced_subgraph(&core_vertices);
    let seed_local = core
        .to_parent
        .iter()
        .position(|&orig| orig == seed)
        .expect("seed survives the k-core") as VertexId;

    // Restrict further to the seed's connected component of the k-core.
    let components = connected_components(&core.graph);
    let seed_component = components
        .into_iter()
        .find(|comp| comp.binary_search(&seed_local).is_ok())
        .expect("every core vertex belongs to a component");
    if seed_component.len() <= k as usize {
        return Ok(Vec::new());
    }
    let local = core.graph.induced_subgraph(&seed_component);
    let seed_in_local = local
        .to_parent
        .iter()
        .position(|&core_local| core_local == seed_local)
        .expect("seed is in its own component") as VertexId;

    // Full enumeration of just that component, then filter and map back.
    let result = enumerate_kvccs(&local.graph, k, options)?;
    let mut hits: Vec<KVertexConnectedComponent> = result
        .iter()
        .filter(|c| c.contains(seed_in_local))
        .map(|c| {
            let original: Vec<VertexId> = c
                .vertices()
                .iter()
                .map(|&v| core.to_parent[local.to_parent[v as usize] as usize])
                .collect();
            KVertexConnectedComponent::new(original)
        })
        .collect();
    hits.sort();
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_kvccs;

    /// Two triangles sharing vertex 2 plus an unrelated K4 on {5,6,7,8}.
    fn mixed_graph() -> UndirectedGraph {
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(9, edges).unwrap()
    }

    #[test]
    fn query_matches_filtering_the_full_enumeration() {
        let g = mixed_graph();
        for k in 1..=3u32 {
            for seed in 0..g.num_vertices() as VertexId {
                let full = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
                let expected: Vec<_> = full.iter().filter(|c| c.contains(seed)).cloned().collect();
                let got = kvccs_containing(&g, seed, k, &KvccOptions::default()).unwrap();
                assert_eq!(got, expected, "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn shared_vertex_belongs_to_both_triangles() {
        let g = mixed_graph();
        let hits = kvccs_containing(&g, 2, 2, &KvccOptions::default()).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|c| c.contains(2)));
    }

    #[test]
    fn pruned_seed_returns_nothing() {
        let g = mixed_graph();
        // Vertex 0 has degree 2, so it cannot be in any 3-VCC.
        assert!(kvccs_containing(&g, 0, 3, &KvccOptions::default())
            .unwrap()
            .is_empty());
        // The K4 vertices are in a 3-VCC though.
        let hits = kvccs_containing(&g, 6, 3, &KvccOptions::default()).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].vertices(), &[5, 6, 7, 8]);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = mixed_graph();
        assert!(matches!(
            kvccs_containing(&g, 0, 0, &KvccOptions::default()),
            Err(KvccError::InvalidK)
        ));
        assert!(matches!(
            kvccs_containing(&g, 99, 2, &KvccOptions::default()),
            Err(KvccError::SeedOutOfRange { seed: 99 })
        ));
    }
}
