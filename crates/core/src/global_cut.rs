//! Finding a vertex cut smaller than `k`: `GLOBAL-CUT` (Algorithm 2) and
//! `GLOBAL-CUT*` (Algorithm 3).
//!
//! Both algorithms follow the two-phase scheme of Esfahanian & Hakimi:
//!
//! 1. pick a source vertex `u` and test the local connectivity `κ(u, v)`
//!    against every other vertex `v` (covers every cut not containing `u`);
//! 2. test every pair of neighbours of `u` (covers cuts containing `u`,
//!    Lemma 4).
//!
//! `GLOBAL-CUT*` adds: the sparse certificate as the flow substrate, strong
//! side-vertex source selection, the distance-descending processing order and
//! — crucially — the neighbor-sweep and group-sweep rules that skip most
//! `LOC-CUT` invocations (§5, Table 2).
//!
//! The functions are generic over [`GraphView`], and the flow network lives
//! in a caller-owned [`CutScratch`] arena so that a worklist issuing many
//! probes (the enumerator) performs no per-probe allocation in steady state.

use kvcc_flow::{Budget, Interrupted, LocalConnectivity, VertexFlowGraph};
use kvcc_graph::traversal::vertices_by_descending_distance;
use kvcc_graph::{GraphView, VertexId};

use crate::certificate::{sparse_certificate, SparseCertificate, NO_GROUP};
use crate::options::KvccOptions;
use crate::side_vertex::strong_side_vertices;
use crate::stats::EnumerationStats;
use crate::sweep::{SweepCause, SweepContext, SweepState};

/// Result of one `GLOBAL-CUT`/`GLOBAL-CUT*` invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalCutOutcome {
    /// A vertex cut with fewer than `k` vertices, or `None` when the graph is
    /// k-vertex connected.
    pub cut: Option<Vec<VertexId>>,
    /// Approximate bytes of scratch memory (certificate + flow graph) that
    /// were live during the call; consumed by the Fig. 12 memory tracker.
    pub scratch_memory_bytes: usize,
}

/// Reusable scratch arena for `GLOBAL-CUT` invocations.
///
/// Owns the vertex-split flow network (see the scratch-arena contract on
/// [`VertexFlowGraph`]); one `CutScratch` per worker thread is the intended
/// usage. Buffers grow to the largest subgraph probed and are then reused,
/// so repeated probes allocate nothing.
#[derive(Debug, Default)]
pub struct CutScratch {
    flow: VertexFlowGraph,
}

impl CutScratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs `GLOBAL-CUT` (basic variant) or `GLOBAL-CUT*` (any sweep variant) on a
/// connected graph `g`, looking for a vertex cut of size `< k`.
///
/// Convenience wrapper around [`global_cut_with_scratch`] that allocates a
/// fresh [`CutScratch`]; hot loops should hold their own arena instead.
///
/// Errors with [`Interrupted`] when [`KvccOptions::budget`] expires mid-call
/// (polled once per `LOC-CUT` probe and per Dinic BFS phase); the scratch
/// arena stays reusable afterwards.
pub fn global_cut<G: GraphView>(
    g: &G,
    k: u32,
    options: &KvccOptions,
    stats: &mut EnumerationStats,
) -> Result<GlobalCutOutcome, Interrupted> {
    let mut scratch = CutScratch::new();
    global_cut_with_scratch(g, k, options, stats, &mut scratch)
}

/// [`global_cut`] with a caller-provided scratch arena.
///
/// The caller is expected to pass a connected graph with minimum degree `>= k`
/// (guaranteed by the k-core pruning of `KVCC-ENUM`); the function remains
/// correct for other inputs but the degree-based shortcuts of the paper then
/// do not apply.
pub fn global_cut_with_scratch<G: GraphView>(
    g: &G,
    k: u32,
    options: &KvccOptions,
    stats: &mut EnumerationStats,
    scratch: &mut CutScratch,
) -> Result<GlobalCutOutcome, Interrupted> {
    let budget = &options.budget;
    budget.check()?;
    stats.global_cut_calls += 1;
    let n = g.num_vertices();
    if n <= k as usize {
        // Too small to be k-connected: its entire vertex set minus one vertex
        // is technically a "cut", but KVCC-ENUM never calls us in this
        // situation; report "no cut" and let the caller's size filter decide.
        return Ok(GlobalCutOutcome {
            cut: None,
            scratch_memory_bytes: 0,
        });
    }

    let neighbor_sweep = options.variant.neighbor_sweep();
    let group_sweep = options.variant.group_sweep();
    let optimised = neighbor_sweep || group_sweep;

    // --- Certificate and side-groups (§4.2, §5.2). ---
    let needs_certificate = options.use_sparse_certificate || group_sweep;
    let certificate: Option<SparseCertificate> = if needs_certificate {
        Some(sparse_certificate(g, k))
    } else {
        None
    };
    if let Some(cert) = &certificate {
        stats.certificate_edges += cert.num_edges() as u64;
        stats.side_groups += cert.side_groups.len() as u64;
    }
    let (side_groups, group_of): (&[Vec<VertexId>], Vec<u32>) = match (&certificate, group_sweep) {
        (Some(cert), true) => (&cert.side_groups, cert.group_of.clone()),
        _ => (&[], vec![NO_GROUP; n]),
    };

    // --- Strong side-vertices (§5.1.1). ---
    // Computed on the current subgraph `g` rather than the certificate: the
    // Theorem 8 condition over the *full* neighbourhood of a vertex is what
    // makes the sweep rules provably safe (see DESIGN.md), and `g` has already
    // been shrunk by k-core pruning and earlier partitions.
    let strong: Vec<bool> = if optimised {
        let s = strong_side_vertices(g, k, options.max_degree_for_side_vertex_check);
        stats.strong_side_vertices += s.iter().filter(|&&x| x).count() as u64;
        s
    } else {
        Vec::new()
    };

    // --- Source selection (Algorithm 3, lines 4-7). ---
    let source = select_source(g, &strong, options, optimised);

    // --- Flow arena over the substrate (certificate when enabled, otherwise
    // the subgraph itself). Rebuilding reuses the buffers of previous probes.
    let flow = &mut scratch.flow;
    match (&certificate, options.use_sparse_certificate) {
        (Some(cert), true) => flow.rebuild(&cert.graph),
        _ => flow.rebuild(g),
    }
    let scratch_memory_bytes =
        flow.memory_bytes() + certificate.as_ref().map(|c| c.memory_bytes()).unwrap_or(0);

    // Flow cap per LOC-CUT probe: `k` (stop at the k-th augmenting path,
    // Lemma 6) unless the unbounded ablation asks for the exact value, in
    // which case `n` exceeds any possible local connectivity.
    let probe_limit = if options.k_bounded_flow { k } else { n as u32 };

    // --- Phase 1. ---
    let mut state = SweepState::new(n, side_groups.len());
    let ctx = SweepContext {
        graph: g,
        k,
        strong_side: &strong,
        group_of: &group_of,
        side_groups,
        neighbor_sweep,
        group_sweep,
        budget,
    };
    if optimised {
        state.sweep(&ctx, source, SweepCause::SourceOrTested);
    }

    let order: Vec<VertexId> = if optimised && options.order_by_distance {
        vertices_by_descending_distance(g, source)
    } else {
        (0..n as VertexId).filter(|&v| v != source).collect()
    };

    for v in order {
        if optimised && state.is_pruned(v) {
            if options.collect_statistics {
                match state.cause(v) {
                    SweepCause::NeighborRule1 => stats.pruned_neighbor_rule1 += 1,
                    SweepCause::NeighborRule2 => stats.pruned_neighbor_rule2 += 1,
                    SweepCause::GroupSweep => stats.pruned_group_sweep += 1,
                    SweepCause::SourceOrTested => {}
                }
            }
            continue;
        }
        budget.check()?;
        stats.tested_vertices += 1;
        if let Some(cut) = loc_cut(flow, g, source, v, k, probe_limit, stats, budget)? {
            return Ok(GlobalCutOutcome {
                cut: Some(cut),
                scratch_memory_bytes,
            });
        }
        if optimised {
            state.sweep(&ctx, v, SweepCause::SourceOrTested);
        }
    }

    // --- Phase 2: the source itself may belong to the cut (Lemma 4). ---
    let source_is_strong = strong.get(source as usize).copied().unwrap_or(false);
    if !source_is_strong {
        let neighbors = g.neighbors(source).to_vec();
        for (i, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[i + 1..] {
                if group_sweep {
                    let ga = group_of[a as usize];
                    if ga != NO_GROUP && ga == group_of[b as usize] {
                        // Group-sweep rule 3: members of the same side-group
                        // are k-local-connected by Theorem 10.
                        stats.phase2_pairs_skipped += 1;
                        continue;
                    }
                }
                budget.check()?;
                stats.phase2_pairs_tested += 1;
                if let Some(cut) = loc_cut(flow, g, a, b, k, probe_limit, stats, budget)? {
                    return Ok(GlobalCutOutcome {
                        cut: Some(cut),
                        scratch_memory_bytes,
                    });
                }
            }
        }
    }

    Ok(GlobalCutOutcome {
        cut: None,
        scratch_memory_bytes,
    })
}

/// Chooses the source vertex: a strong side-vertex when available and allowed
/// (which makes phase 2 unnecessary), otherwise a vertex of minimum degree.
fn select_source<G: GraphView>(
    g: &G,
    strong: &[bool],
    options: &KvccOptions,
    optimised: bool,
) -> VertexId {
    if optimised && options.prefer_side_vertex_source {
        let candidate = strong
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(v, _)| v as VertexId)
            .min_by_key(|&v| g.degree(v));
        if let Some(v) = candidate {
            return v;
        }
    }
    g.min_degree_vertex()
        .expect("global_cut requires a non-empty graph")
}

/// `LOC-CUT(u, v)` (Algorithm 2, lines 12-17): answers trivially for adjacent
/// or identical vertices (Lemma 5), otherwise runs a max-flow on the arena's
/// substrate capped at `probe_limit` and converts the residual min-cut into a
/// vertex cut when it has fewer than `k` vertices.
///
/// `probe_limit` is `k` on the default k-bounded path (the flow stops at the
/// k-th augmenting path); the unbounded ablation passes `n`, in which case
/// the exact minimum cut comes back and is discarded when it is not smaller
/// than `k`.
///
/// The adjacency shortcut is evaluated on the current subgraph `g`; the flow
/// runs on whatever substrate the arena was last rebuilt with (the sparse
/// certificate, a subgraph of `g`, or `g` itself). Non-adjacency in `g`
/// implies non-adjacency in any subgraph, so the unchecked flow entry point
/// is safe.
#[allow(clippy::too_many_arguments)]
fn loc_cut<G: GraphView>(
    flow: &mut VertexFlowGraph,
    g: &G,
    u: VertexId,
    v: VertexId,
    k: u32,
    probe_limit: u32,
    stats: &mut EnumerationStats,
    budget: &Budget,
) -> Result<Option<Vec<VertexId>>, Interrupted> {
    if u == v || g.has_edge(u, v) {
        stats.loc_cut_trivial_calls += 1;
        return Ok(None);
    }
    stats.loc_cut_flow_calls += 1;
    Ok(
        match flow.local_connectivity_budgeted(u, v, probe_limit, budget)? {
            LocalConnectivity::AtLeast(_) => None,
            LocalConnectivity::Cut(cut) if (cut.len() as u32) < k => Some(cut),
            LocalConnectivity::Cut(_) => None,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::AlgorithmVariant;
    use kvcc_graph::traversal::connected_components_filtered;
    use kvcc_graph::{CsrGraph, UndirectedGraph};

    fn options_for(variant: AlgorithmVariant) -> KvccOptions {
        KvccOptions {
            variant,
            ..KvccOptions::default()
        }
    }

    /// Test-local shadow of [`super::global_cut`]: every test here runs with
    /// an unlimited budget, which must never interrupt.
    fn global_cut<G: GraphView>(
        g: &G,
        k: u32,
        options: &KvccOptions,
        stats: &mut EnumerationStats,
    ) -> GlobalCutOutcome {
        super::global_cut(g, k, options, stats).expect("an unlimited budget never interrupts")
    }

    /// Test-local shadow of [`super::global_cut_with_scratch`], same
    /// contract.
    fn global_cut_with_scratch<G: GraphView>(
        g: &G,
        k: u32,
        options: &KvccOptions,
        stats: &mut EnumerationStats,
        scratch: &mut CutScratch,
    ) -> GlobalCutOutcome {
        super::global_cut_with_scratch(g, k, options, stats, scratch)
            .expect("an unlimited budget never interrupts")
    }

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    /// Two K5 blocks sharing two vertices (6 and 7): the only cut with fewer
    /// than 3 vertices is {6, 7}.
    fn two_blocks() -> UndirectedGraph {
        let mut edges = Vec::new();
        for block in [[0u32, 1, 2, 6, 7], [3u32, 4, 5, 6, 7]] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((block[i], block[j]));
                }
            }
        }
        UndirectedGraph::from_edges(8, edges).unwrap()
    }

    fn assert_valid_cut(g: &UndirectedGraph, cut: &[VertexId], k: u32) {
        assert!(!cut.is_empty());
        assert!(
            (cut.len() as u32) < k,
            "cut {cut:?} must have fewer than k vertices"
        );
        let mut alive = kvcc_graph::bitset::BitSet::filled(g.num_vertices());
        for &v in cut {
            alive.remove(v as usize);
        }
        let comps = connected_components_filtered(g, &alive);
        assert!(
            comps.len() >= 2,
            "removing {cut:?} must disconnect the graph"
        );
    }

    #[test]
    fn complete_graph_has_no_cut_for_any_variant() {
        let g = complete(7);
        for variant in AlgorithmVariant::all() {
            let mut stats = EnumerationStats::default();
            let out = global_cut(&g, 4, &options_for(variant), &mut stats);
            assert!(
                out.cut.is_none(),
                "variant {variant:?} found a spurious cut"
            );
            assert_eq!(stats.global_cut_calls, 1);
        }
    }

    #[test]
    fn two_block_graph_yields_the_portal_cut() {
        let g = two_blocks();
        for variant in AlgorithmVariant::all() {
            let mut stats = EnumerationStats::default();
            let out = global_cut(&g, 3, &options_for(variant), &mut stats);
            let cut = out.cut.expect("graph is not 3-connected");
            assert_valid_cut(&g, &cut, 3);
        }
    }

    #[test]
    fn csr_and_vec_representations_agree() {
        let g = two_blocks();
        let csr = CsrGraph::from_view(&g);
        for variant in AlgorithmVariant::all() {
            let mut s1 = EnumerationStats::default();
            let mut s2 = EnumerationStats::default();
            let a = global_cut(&g, 3, &options_for(variant), &mut s1);
            let b = global_cut(&csr, 3, &options_for(variant), &mut s2);
            assert_eq!(a.cut, b.cut, "variant {variant:?}");
            assert_eq!(s1.tested_vertices, s2.tested_vertices);
            assert_eq!(s1.loc_cut_flow_calls, s2.loc_cut_flow_calls);
        }
    }

    #[test]
    fn scratch_arena_is_reusable_across_probes() {
        let blocks = two_blocks();
        let clique = complete(7);
        let mut scratch = CutScratch::new();
        for _ in 0..3 {
            let mut stats = EnumerationStats::default();
            let out = global_cut_with_scratch(
                &blocks,
                3,
                &KvccOptions::default(),
                &mut stats,
                &mut scratch,
            );
            assert_valid_cut(&blocks, &out.cut.expect("not 3-connected"), 3);
            let mut stats = EnumerationStats::default();
            let out = global_cut_with_scratch(
                &clique,
                4,
                &KvccOptions::default(),
                &mut stats,
                &mut scratch,
            );
            assert!(out.cut.is_none());
        }
    }

    #[test]
    fn no_cut_found_when_graph_is_k_connected() {
        let g = two_blocks();
        // The graph *is* 2-vertex connected, so no cut of size < 2 exists.
        for variant in AlgorithmVariant::all() {
            let mut stats = EnumerationStats::default();
            let out = global_cut(&g, 2, &options_for(variant), &mut stats);
            assert!(out.cut.is_none(), "variant {variant:?}");
        }
    }

    #[test]
    fn ablation_options_still_produce_valid_results() {
        let g = two_blocks();
        let opts = KvccOptions {
            use_sparse_certificate: false,
            order_by_distance: false,
            prefer_side_vertex_source: false,
            ..KvccOptions::default()
        };
        let mut stats = EnumerationStats::default();
        let out = global_cut(&g, 3, &opts, &mut stats);
        assert_valid_cut(&g, &out.cut.expect("cut must be found"), 3);
        let mut stats = EnumerationStats::default();
        assert!(global_cut(&complete(6), 3, &opts, &mut stats).cut.is_none());
    }

    #[test]
    fn unbounded_flow_ablation_matches_the_bounded_default() {
        let g = two_blocks();
        for k in 2..=4u32 {
            for variant in AlgorithmVariant::all() {
                let mut s1 = EnumerationStats::default();
                let mut s2 = EnumerationStats::default();
                let bounded = global_cut(&g, k, &options_for(variant), &mut s1);
                let unbounded_opts = options_for(variant).with_k_bounded_flow(false);
                let unbounded = global_cut(&g, k, &unbounded_opts, &mut s2);
                // A cut below k is found before either probe saturates, so
                // the exact-flow ablation must return the identical cut (and
                // do the identical amount of LOC-CUT work selecting it).
                assert_eq!(bounded.cut, unbounded.cut, "variant {variant:?}, k {k}");
                assert_eq!(s1.loc_cut_flow_calls, s2.loc_cut_flow_calls);
            }
        }
    }

    #[test]
    fn sweep_statistics_are_recorded_for_the_full_variant() {
        let g = two_blocks();
        let mut stats = EnumerationStats::default();
        let _ = global_cut(&g, 3, &KvccOptions::default(), &mut stats);
        // With sweeps enabled, phase-1 bookkeeping must cover every non-source
        // vertex that was reached before the cut was returned.
        assert!(stats.phase1_vertices() <= (g.num_vertices() as u64 - 1));
        assert!(stats.loc_cut_flow_calls + stats.loc_cut_trivial_calls > 0);
    }

    #[test]
    fn tiny_graph_shortcut() {
        let g = complete(3);
        let mut stats = EnumerationStats::default();
        let out = global_cut(&g, 5, &KvccOptions::default(), &mut stats);
        assert!(out.cut.is_none());
        assert_eq!(out.scratch_memory_bytes, 0);
    }

    #[test]
    fn expired_budget_interrupts_and_scratch_stays_reusable() {
        let g = two_blocks();
        let expired =
            KvccOptions::default().with_budget(Budget::with_timeout(std::time::Duration::ZERO));
        let mut stats = EnumerationStats::default();
        let mut scratch = CutScratch::new();
        assert_eq!(
            super::global_cut_with_scratch(&g, 3, &expired, &mut stats, &mut scratch),
            Err(Interrupted)
        );
        // The same scratch answers the identical probe afterwards.
        let mut stats = EnumerationStats::default();
        let out = global_cut_with_scratch(&g, 3, &KvccOptions::default(), &mut stats, &mut scratch);
        assert_valid_cut(&g, &out.cut.expect("graph is not 3-connected"), 3);
        // A cancelled token interrupts the same way as a passed deadline.
        let cancelled = Budget::cancellable();
        cancelled.cancel();
        let opts = KvccOptions::default().with_budget(cancelled);
        let mut stats = EnumerationStats::default();
        assert_eq!(
            super::global_cut_with_scratch(&g, 3, &opts, &mut stats, &mut scratch),
            Err(Interrupted)
        );
    }
}
