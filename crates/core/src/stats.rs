//! Run statistics collected by the enumerator.
//!
//! The counters mirror the quantities the paper reports in its evaluation:
//! the per-rule pruning proportions of Table 2, the processing time of
//! Fig. 10, the number of k-VCCs of Fig. 11 and the memory usage of Fig. 12.

use std::time::Duration;

/// Counters describing one full `enumerate_kvccs` run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnumerationStats {
    /// Number of `GLOBAL-CUT` / `GLOBAL-CUT*` invocations.
    pub global_cut_calls: u64,
    /// Number of `LOC-CUT` calls that actually ran a max-flow computation.
    pub loc_cut_flow_calls: u64,
    /// Number of `LOC-CUT` calls answered by the adjacency shortcut (Lemma 5)
    /// or the same-vertex shortcut without running a flow.
    pub loc_cut_trivial_calls: u64,
    /// Phase-1 vertices that were actually tested with a flow computation
    /// (the "Non-Pru" row of Table 2).
    pub tested_vertices: u64,
    /// Phase-1 vertices skipped thanks to neighbor-sweep rule 1
    /// (strong side-vertex neighbourhood, §5.1.1) — "NS 1" in Table 2.
    pub pruned_neighbor_rule1: u64,
    /// Phase-1 vertices skipped thanks to neighbor-sweep rule 2
    /// (vertex deposit ≥ k, §5.1.2) — "NS 2" in Table 2.
    pub pruned_neighbor_rule2: u64,
    /// Phase-1 vertices skipped thanks to a group sweep (§5.2) — "GS" in
    /// Table 2.
    pub pruned_group_sweep: u64,
    /// Phase-2 neighbour pairs tested with a flow computation.
    pub phase2_pairs_tested: u64,
    /// Phase-2 neighbour pairs skipped by group-sweep rule 3.
    pub phase2_pairs_skipped: u64,
    /// Number of overlapped partitions performed (Lemma 10 bounds this by
    /// `(n − k − 1) / 2`).
    pub partitions: u64,
    /// Vertices removed by k-core pruning across all recursive calls.
    pub kcore_removed_vertices: u64,
    /// Total number of edges across all sparse certificates built.
    pub certificate_edges: u64,
    /// Number of strong side-vertices detected across all `GLOBAL-CUT*` calls.
    pub strong_side_vertices: u64,
    /// Number of side-groups (size > k) collected across all calls.
    pub side_groups: u64,
    /// Times the defensive "recompute the cut on the full subgraph" fallback
    /// fired (expected to stay 0; see `DESIGN.md`).
    pub fallback_recuts: u64,
    /// Work items drained from the `KVCC-ENUM` worklist (initial k-core
    /// components + partition pieces + deferred splits). Deterministic for a
    /// fixed [`crate::KvccOptions::split_threshold`], independent of thread
    /// count and scheduler.
    pub work_items_executed: u64,
    /// Work items a worker took from another worker's deque
    /// ([`crate::options::Scheduler::WorkStealing`] only). The one counter
    /// that is genuinely scheduling-dependent: it varies run to run and is
    /// reported for observability, never compared for parity.
    pub steals: u64,
    /// Components deferred back onto the worklist by skew-aware splitting
    /// instead of being cut in-worker (see
    /// [`crate::KvccOptions::split_threshold`]). Deterministic for a fixed
    /// threshold.
    pub splits: u64,
    /// Whether the run was interrupted by its [`crate::KvccOptions::budget`]
    /// before completing. Set on the partial statistics carried by
    /// [`crate::KvccError::Interrupted`]; always `false` on a completed run.
    pub cancelled: bool,
    /// Peak of the approximate *working* memory estimate in bytes: live
    /// partitioned subgraphs plus the certificate and flow scratch of the
    /// `GLOBAL-CUT` call in flight. The caller's input graph is not included
    /// (it is never copied). Reproduces the trends of Fig. 12.
    pub peak_memory_bytes: usize,
    /// Wall-clock time of the whole enumeration.
    pub elapsed: Duration,
}

impl EnumerationStats {
    /// Total number of phase-1 vertices that were either swept or tested.
    pub fn phase1_vertices(&self) -> u64 {
        self.tested_vertices
            + self.pruned_neighbor_rule1
            + self.pruned_neighbor_rule2
            + self.pruned_group_sweep
    }

    /// Fraction of phase-1 vertices pruned by neighbor-sweep rule 1
    /// (Table 2, "NS 1").
    pub fn proportion_neighbor_rule1(&self) -> f64 {
        ratio(self.pruned_neighbor_rule1, self.phase1_vertices())
    }

    /// Fraction of phase-1 vertices pruned by neighbor-sweep rule 2
    /// (Table 2, "NS 2").
    pub fn proportion_neighbor_rule2(&self) -> f64 {
        ratio(self.pruned_neighbor_rule2, self.phase1_vertices())
    }

    /// Fraction of phase-1 vertices pruned by group sweep (Table 2, "GS").
    pub fn proportion_group_sweep(&self) -> f64 {
        ratio(self.pruned_group_sweep, self.phase1_vertices())
    }

    /// Fraction of phase-1 vertices that could not be pruned
    /// (Table 2, "Non-Pru").
    pub fn proportion_tested(&self) -> f64 {
        ratio(self.tested_vertices, self.phase1_vertices())
    }

    /// Merges the counters of another run into this one (used when a harness
    /// aggregates multiple datasets or k values).
    pub fn merge(&mut self, other: &EnumerationStats) {
        self.global_cut_calls += other.global_cut_calls;
        self.loc_cut_flow_calls += other.loc_cut_flow_calls;
        self.loc_cut_trivial_calls += other.loc_cut_trivial_calls;
        self.tested_vertices += other.tested_vertices;
        self.pruned_neighbor_rule1 += other.pruned_neighbor_rule1;
        self.pruned_neighbor_rule2 += other.pruned_neighbor_rule2;
        self.pruned_group_sweep += other.pruned_group_sweep;
        self.phase2_pairs_tested += other.phase2_pairs_tested;
        self.phase2_pairs_skipped += other.phase2_pairs_skipped;
        self.partitions += other.partitions;
        self.kcore_removed_vertices += other.kcore_removed_vertices;
        self.certificate_edges += other.certificate_edges;
        self.strong_side_vertices += other.strong_side_vertices;
        self.side_groups += other.side_groups;
        self.fallback_recuts += other.fallback_recuts;
        self.work_items_executed += other.work_items_executed;
        self.steals += other.steals;
        self.splits += other.splits;
        self.cancelled |= other.cancelled;
        self.peak_memory_bytes = self.peak_memory_bytes.max(other.peak_memory_bytes);
        self.elapsed += other.elapsed;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Tracks an approximate "currently resident" byte count and its peak.
///
/// The enumerator charges every live partitioned subgraph, the sparse
/// certificate and the flow graph of the `GLOBAL-CUT` call in flight; Fig. 12
/// of the paper is reproduced from the peak of this estimate.
#[derive(Clone, Debug, Default)]
pub struct MemoryTracker {
    current: usize,
    peak: usize,
}

impl MemoryTracker {
    /// Creates a tracker with zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `bytes` of newly allocated data.
    pub fn allocate(&mut self, bytes: usize) {
        self.current += bytes;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Registers that `bytes` of data were released.
    pub fn release(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Current estimate in bytes.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Peak estimate in bytes since creation.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_sum_to_one_when_counters_cover_phase1() {
        let stats = EnumerationStats {
            tested_vertices: 10,
            pruned_neighbor_rule1: 20,
            pruned_neighbor_rule2: 30,
            pruned_group_sweep: 40,
            ..Default::default()
        };
        let total = stats.proportion_tested()
            + stats.proportion_neighbor_rule1()
            + stats.proportion_neighbor_rule2()
            + stats.proportion_group_sweep();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(stats.phase1_vertices(), 100);
    }

    #[test]
    fn empty_stats_have_zero_proportions() {
        let stats = EnumerationStats::default();
        assert_eq!(stats.proportion_tested(), 0.0);
        assert_eq!(stats.phase1_vertices(), 0);
    }

    #[test]
    fn merge_accumulates_and_takes_peak_memory() {
        let mut a = EnumerationStats {
            tested_vertices: 5,
            partitions: 2,
            peak_memory_bytes: 100,
            elapsed: Duration::from_millis(10),
            ..Default::default()
        };
        let b = EnumerationStats {
            tested_vertices: 7,
            partitions: 1,
            peak_memory_bytes: 300,
            elapsed: Duration::from_millis(5),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tested_vertices, 12);
        assert_eq!(a.partitions, 3);
        assert_eq!(a.peak_memory_bytes, 300);
        assert_eq!(a.elapsed, Duration::from_millis(15));
    }

    #[test]
    fn memory_tracker_tracks_peak() {
        let mut t = MemoryTracker::new();
        t.allocate(100);
        t.allocate(50);
        assert_eq!(t.current(), 150);
        assert_eq!(t.peak(), 150);
        t.release(120);
        assert_eq!(t.current(), 30);
        t.allocate(10);
        assert_eq!(t.peak(), 150);
        t.release(1000);
        assert_eq!(t.current(), 0);
    }
}
