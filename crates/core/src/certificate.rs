//! Sparse certificates for k-vertex connectivity and side-groups.
//!
//! Following §4.2 (Theorem 5, after Cheriyan–Kao–Thurimella), the union of `k`
//! successive scan-first-search forests — each computed on the graph minus the
//! edges already taken by earlier forests — is a *sparse certificate*: a
//! subgraph with at most `k·(n − 1)` edges that preserves every vertex cut of
//! size `< k`. Running the flow computations of `LOC-CUT` on the certificate
//! instead of the full graph is the first optimisation of `GLOBAL-CUT`.
//!
//! The k-th forest additionally yields the **side-groups** of §5.2
//! (Theorem 10): every connected component of `F_k` is a set of vertices that
//! are pairwise k-local-connected, which powers the group-sweep rules.

use kvcc_graph::{CsrGraph, GraphView, VertexId};

/// Sentinel meaning "this vertex belongs to no (retained) side-group".
pub const NO_GROUP: u32 = u32::MAX;

/// The sparse certificate of a graph together with the side-groups derived
/// from its last scan-first forest.
#[derive(Clone, Debug)]
pub struct SparseCertificate {
    /// The certificate subgraph `SC` (same vertex ids as the input graph,
    /// subset of its edges), stored in CSR form because it is the substrate
    /// of all flow computations.
    pub graph: CsrGraph,
    /// Number of edges contributed by each of the `k` forests, in order.
    /// Forests that would be empty are omitted, so the vector may be shorter
    /// than `k`.
    pub forest_sizes: Vec<usize>,
    /// Side-groups: connected components of the k-th forest with more than
    /// `k` vertices, each sorted ascending (Theorem 10 + the size filter of
    /// Algorithm 3, line 1).
    pub side_groups: Vec<Vec<VertexId>>,
    /// `group_of[v]` is the index into [`side_groups`](Self::side_groups) of
    /// the group containing `v`, or [`NO_GROUP`].
    pub group_of: Vec<u32>,
}

impl SparseCertificate {
    /// Total number of edges of the certificate.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Approximate heap bytes used by the certificate (graph + group index).
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self.group_of.capacity() * std::mem::size_of::<u32>()
            + self
                .side_groups
                .iter()
                .map(|g| g.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>()
    }
}

/// Builds the sparse certificate of `g` for parameter `k` (Theorem 5) and the
/// side-groups of its k-th scan-first forest (Theorem 10).
///
/// `k = 0` is accepted and yields an edgeless certificate.
pub fn sparse_certificate<G: GraphView>(g: &G, k: u32) -> SparseCertificate {
    let n = g.num_vertices();
    let m = g.num_edges();

    // Edge-indexed adjacency: for every vertex, the list of (neighbour,
    // edge id) pairs, where both directions of an undirected edge share the
    // same id. This lets the forests mark consumed edges with a flat bitmap
    // instead of hashing.
    let mut indexed_adj: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); n];
    for (edge_id, (u, v)) in g.edges().enumerate() {
        let edge_id = edge_id as u32;
        indexed_adj[u as usize].push((v, edge_id));
        indexed_adj[v as usize].push((u, edge_id));
    }

    let mut edge_used = kvcc_graph::BitSet::new(m);
    let mut certificate_edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut forest_sizes = Vec::new();

    // The scan order of the BFS queue for the *last* forest determines the
    // side-groups, so remember the roots of that forest.
    let mut last_forest_component: Vec<u32> = vec![NO_GROUP; n];
    let mut last_forest_edge_count = 0usize;

    let mut queue: Vec<VertexId> = Vec::with_capacity(n);
    let mut visited = kvcc_graph::BitSet::new(n);
    for round in 0..k {
        visited.clear_all();
        let mut forest_edges = 0usize;
        let mut component: Vec<u32> = vec![NO_GROUP; n];
        let mut component_count = 0u32;

        for start in 0..n as VertexId {
            if visited.contains(start as usize) {
                continue;
            }
            let comp_id = component_count;
            component_count += 1;
            visited.insert(start as usize);
            component[start as usize] = comp_id;
            queue.clear();
            queue.push(start);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                for &(v, edge_id) in &indexed_adj[u as usize] {
                    if edge_used.contains(edge_id as usize) || visited.contains(v as usize) {
                        continue;
                    }
                    visited.insert(v as usize);
                    component[v as usize] = comp_id;
                    edge_used.insert(edge_id as usize);
                    certificate_edges.push((u, v));
                    forest_edges += 1;
                    queue.push(v);
                }
            }
        }

        if round + 1 == k {
            last_forest_component = component;
            last_forest_edge_count = forest_edges;
        }
        if forest_edges == 0 {
            // The remaining graph has no edges: later forests are all empty,
            // and the k-th forest (if not yet reached) has only singleton
            // components, i.e. no side-groups.
            if round + 1 < k {
                last_forest_component = vec![NO_GROUP; n];
                last_forest_edge_count = 0;
            }
            break;
        }
        forest_sizes.push(forest_edges);
    }

    let graph = CsrGraph::from_edges(n, certificate_edges)
        .expect("certificate edges come from the input graph and are always in range");

    // Side-groups: components of the k-th forest with more than k vertices.
    let (side_groups, group_of) = if last_forest_edge_count == 0 {
        (Vec::new(), vec![NO_GROUP; n])
    } else {
        collect_side_groups(&last_forest_component, n, k as usize)
    };

    SparseCertificate {
        graph,
        forest_sizes,
        side_groups,
        group_of,
    }
}

/// Groups vertices by their component id in the last forest, keeping only
/// components with more than `k` vertices, and builds the reverse index.
fn collect_side_groups(component: &[u32], n: usize, k: usize) -> (Vec<Vec<VertexId>>, Vec<u32>) {
    let mut buckets: std::collections::HashMap<u32, Vec<VertexId>> =
        std::collections::HashMap::new();
    for (v, &c) in component.iter().enumerate() {
        if c != NO_GROUP {
            buckets.entry(c).or_default().push(v as VertexId);
        }
    }
    let mut groups: Vec<Vec<VertexId>> = buckets
        .into_values()
        .filter(|members| members.len() > k)
        .collect();
    // Deterministic order: by smallest member.
    groups.sort_by_key(|members| members[0]);
    let mut group_of = vec![NO_GROUP; n];
    for (idx, members) in groups.iter().enumerate() {
        for &v in members {
            group_of[v as usize] = idx as u32;
        }
    }
    (groups, group_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_flow::global_vertex_connectivity;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    #[test]
    fn certificate_has_bounded_size() {
        let g = complete(12);
        for k in 1..=5u32 {
            let cert = sparse_certificate(&g, k);
            assert!(
                cert.num_edges() <= k as usize * (g.num_vertices() - 1),
                "certificate must have at most k(n-1) edges"
            );
            assert!(cert.forest_sizes.len() <= k as usize);
            assert!(cert.memory_bytes() > 0);
        }
    }

    #[test]
    fn certificate_preserves_k_connectivity() {
        // K8 is 7-connected; its k-certificate must be at least k-connected
        // for every k <= 7 and the full graph must match the definition.
        let g = complete(8);
        for k in 1..=7u32 {
            let cert = sparse_certificate(&g, k);
            let conn = global_vertex_connectivity(&cert.graph);
            assert!(
                conn >= k,
                "certificate for k={k} has connectivity {conn}, expected >= {k}"
            );
        }
    }

    #[test]
    fn certificate_of_sparse_graph_is_the_graph_itself() {
        // A tree has n-1 edges; every forest after the first is empty.
        let g = UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        let cert = sparse_certificate(&g, 3);
        assert_eq!(cert.num_edges(), g.num_edges());
        assert_eq!(cert.forest_sizes, vec![4]);
        assert!(cert.side_groups.is_empty());
    }

    #[test]
    fn side_groups_are_pairwise_k_connected() {
        // Two K6 blocks joined by a single edge; with k = 3 the third forest
        // still has non-trivial components inside each block.
        let mut edges = Vec::new();
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 6));
        let g = UndirectedGraph::from_edges(12, edges).unwrap();
        let k = 3u32;
        let cert = sparse_certificate(&g, k);
        for group in &cert.side_groups {
            assert!(group.len() > k as usize);
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    let conn = kvcc_flow::local_vertex_connectivity(&g, a, b, k);
                    assert!(
                        conn >= k,
                        "side-group members {a},{b} must be {k}-connected"
                    );
                }
            }
        }
        // The group index is consistent with the group lists.
        for (idx, group) in cert.side_groups.iter().enumerate() {
            for &v in group {
                assert_eq!(cert.group_of[v as usize], idx as u32);
            }
        }
    }

    #[test]
    fn k_zero_gives_edgeless_certificate() {
        let g = complete(4);
        let cert = sparse_certificate(&g, 0);
        assert_eq!(cert.num_edges(), 0);
        assert!(cert.side_groups.is_empty());
        assert_eq!(cert.group_of, vec![NO_GROUP; 4]);
    }

    #[test]
    fn certificate_edges_are_a_subset_of_the_graph() {
        let g = complete(7);
        let cert = sparse_certificate(&g, 3);
        for (u, v) in cert.graph.edges() {
            assert!(g.has_edge(u, v));
        }
    }
}
