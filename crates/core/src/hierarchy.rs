//! The k-VCC hierarchy: nested decompositions for every k.
//!
//! Whitney's theorem (Theorem 3) and the nesting argument of §2.2 imply that
//! every (k+1)-VCC is contained in exactly one k-VCC. Enumerating the
//! components level by level therefore yields a *hierarchy* (a forest): level
//! 1 holds the connected components, level 2 the biconnected cores, and so on
//! up to the largest k for which any component survives (bounded by the graph
//! degeneracy).
//!
//! The construction exploits the nesting: the (k+1)-VCCs are enumerated
//! *inside* each k-VCC instead of on the whole graph, which keeps the total
//! cost close to the cost of the deepest level. Every nested level is sliced
//! out of the (arbitrary [`GraphView`]) input as a compact CSR work item
//! through one reusable relabelling buffer — no per-level whole-graph copies
//! — and each per-component enumeration drains on the parallel worklist when
//! [`KvccOptions::threads`] asks for it. This module is an extension of the
//! paper's algorithm (the paper fixes a single k); it powers the `hierarchy`
//! example and is the substrate of [`crate::index::ConnectivityIndex`].

use kvcc_graph::kcore::degeneracy;
use kvcc_graph::{CsrGraph, GraphView, VertexId};

use crate::enumerate::enumerate_kvccs;
use crate::error::KvccError;
use crate::options::KvccOptions;
use crate::result::KVertexConnectedComponent;

/// One level of the hierarchy: all k-VCCs for a fixed `k`, plus the index of
/// each component's parent in the previous level.
#[derive(Clone, Debug)]
pub struct HierarchyLevel {
    /// The connectivity parameter of this level.
    pub k: u32,
    /// The k-VCCs of the input graph, sorted by smallest member.
    pub components: Vec<KVertexConnectedComponent>,
    /// `parents[i]` is the index (in the previous level) of the component that
    /// contains `components[i]`; `None` for the first level.
    pub parents: Vec<Option<usize>>,
}

/// The full nested decomposition of a graph.
#[derive(Clone, Debug)]
pub struct KvccHierarchy {
    levels: Vec<HierarchyLevel>,
    num_vertices: usize,
}

impl KvccHierarchy {
    /// All levels, in increasing order of `k` (starting at `k = 1`).
    pub fn levels(&self) -> &[HierarchyLevel] {
        &self.levels
    }

    /// Number of vertices of the graph the hierarchy was built from.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The largest `k` for which at least one k-VCC exists (0 for an edgeless
    /// graph).
    pub fn max_k(&self) -> u32 {
        self.levels.last().map(|l| l.k).unwrap_or(0)
    }

    /// The components at a specific level, if that level exists.
    pub fn components_at(&self, k: u32) -> Option<&[KVertexConnectedComponent]> {
        self.levels
            .iter()
            .find(|l| l.k == k)
            .map(|l| l.components.as_slice())
    }

    /// The *vertex connectivity number* of `v`: the largest `k` such that `v`
    /// belongs to some k-VCC (0 if the vertex is isolated or outside every
    /// component). This is the vertex-connectivity analogue of the core
    /// number.
    pub fn connectivity_number(&self, v: VertexId) -> u32 {
        let mut best = 0;
        for level in &self.levels {
            if level.components.iter().any(|c| c.contains(v)) {
                best = level.k;
            }
        }
        best
    }

    /// Vertex connectivity numbers for every vertex of the input graph.
    pub fn connectivity_numbers(&self) -> Vec<u32> {
        let mut numbers = vec![0u32; self.num_vertices];
        for level in &self.levels {
            for comp in &level.components {
                for &v in comp.vertices() {
                    numbers[v as usize] = numbers[v as usize].max(level.k);
                }
            }
        }
        numbers
    }

    /// Total number of components across all levels.
    pub fn total_components(&self) -> usize {
        self.levels.iter().map(|l| l.components.len()).sum()
    }
}

/// Builds the k-VCC hierarchy of `graph` for `k = 1 ..= max_k`.
///
/// `max_k = None` uses the graph degeneracy as the upper bound (no k-VCC can
/// exist beyond it, because a k-VCC has minimum degree `>= k`). Construction
/// stops early at the first level with no components.
pub fn build_hierarchy<G: GraphView>(
    graph: &G,
    max_k: Option<u32>,
    options: &KvccOptions,
) -> Result<KvccHierarchy, KvccError> {
    let limit = max_k.unwrap_or_else(|| degeneracy(graph)).max(1);
    let mut levels: Vec<HierarchyLevel> = Vec::new();
    // One relabelling buffer shared by every slice of the whole construction.
    let mut map: Vec<VertexId> = Vec::new();

    for k in 1..=limit {
        let level = match levels.last() {
            None => {
                // Level 1 is enumerated on the whole graph.
                let components = enumerate_kvccs(graph, k, options)?.components().to_vec();
                let parents = vec![None; components.len()];
                HierarchyLevel {
                    k,
                    components,
                    parents,
                }
            }
            Some(previous) => {
                // Deeper levels are enumerated inside each parent component:
                // slice the parent out of the input as one CSR work item
                // (component vertex lists are sorted, so the rows come out
                // sorted for free) and let the enumerator's worklist — the
                // parallel one when `options.threads` says so — drain it.
                let mut components: Vec<KVertexConnectedComponent> = Vec::new();
                let mut parents: Vec<Option<usize>> = Vec::new();
                for (parent_idx, parent) in previous.components.iter().enumerate() {
                    if parent.len() <= k as usize {
                        continue;
                    }
                    let sub = CsrGraph::extract_induced(graph, parent.vertices(), &mut map);
                    let nested = enumerate_kvccs(&sub, k, options)?;
                    for comp in nested.iter() {
                        let mapped: Vec<VertexId> = comp
                            .vertices()
                            .iter()
                            .map(|&local| parent.vertices()[local as usize])
                            .collect();
                        components.push(KVertexConnectedComponent::new(mapped));
                        parents.push(Some(parent_idx));
                    }
                }
                // Keep the deterministic ordering used everywhere else.
                let mut order: Vec<usize> = (0..components.len()).collect();
                order.sort_by(|&a, &b| components[a].cmp(&components[b]));
                let components: Vec<_> = order.iter().map(|&i| components[i].clone()).collect();
                let parents: Vec<_> = order.iter().map(|&i| parents[i]).collect();
                HierarchyLevel {
                    k,
                    components,
                    parents,
                }
            }
        };
        if level.components.is_empty() {
            break;
        }
        levels.push(level);
    }

    Ok(KvccHierarchy {
        levels,
        num_vertices: graph.num_vertices(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::KvccOptions;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    /// Two triangles sharing vertex 2, plus a pendant vertex 5.
    fn two_triangles_with_pendant() -> UndirectedGraph {
        UndirectedGraph::from_edges(
            6,
            vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (0, 5)],
        )
        .unwrap()
    }

    #[test]
    fn hierarchy_of_a_clique() {
        let g = complete(6);
        let h = build_hierarchy(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(h.max_k(), 5);
        assert_eq!(h.levels().len(), 5);
        for level in h.levels() {
            assert_eq!(level.components.len(), 1);
            assert_eq!(level.components[0].len(), 6);
        }
        assert_eq!(h.connectivity_number(0), 5);
        assert_eq!(h.connectivity_numbers(), vec![5; 6]);
        assert_eq!(h.total_components(), 5);
    }

    #[test]
    fn hierarchy_of_glued_triangles() {
        let g = two_triangles_with_pendant();
        let h = build_hierarchy(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(h.max_k(), 2);
        // Level 1: one connected component with all 6 vertices.
        let level1 = h.components_at(1).unwrap();
        assert_eq!(level1.len(), 1);
        assert_eq!(level1[0].len(), 6);
        // Level 2: the two triangles, both children of the level-1 component.
        let level2 = &h.levels()[1];
        assert_eq!(level2.components.len(), 2);
        assert!(level2.parents.iter().all(|p| *p == Some(0)));
        // Connectivity numbers: triangle members 2, pendant vertex 1.
        assert_eq!(h.connectivity_number(2), 2);
        assert_eq!(h.connectivity_number(5), 1);
        assert_eq!(h.components_at(3), None);
    }

    #[test]
    fn parents_contain_their_children() {
        let g = two_triangles_with_pendant();
        let h = build_hierarchy(&g, Some(3), &KvccOptions::default()).unwrap();
        for window in h.levels().windows(2) {
            let (upper, lower) = (&window[0], &window[1]);
            for (comp, parent) in lower.components.iter().zip(&lower.parents) {
                let parent = &upper.components[parent.expect("non-root level has parents")];
                for &v in comp.vertices() {
                    assert!(parent.contains(v));
                }
            }
        }
    }

    #[test]
    fn explicit_max_k_truncates_the_hierarchy() {
        let g = complete(8);
        let h = build_hierarchy(&g, Some(3), &KvccOptions::default()).unwrap();
        assert_eq!(h.max_k(), 3);
        assert_eq!(h.levels().len(), 3);
    }

    #[test]
    fn csr_input_builds_the_same_hierarchy() {
        let g = two_triangles_with_pendant();
        let csr = kvcc_graph::CsrGraph::from_view(&g);
        let a = build_hierarchy(&g, None, &KvccOptions::default()).unwrap();
        let b = build_hierarchy(&csr, None, &KvccOptions::default()).unwrap();
        assert_eq!(a.max_k(), b.max_k());
        for (la, lb) in a.levels().iter().zip(b.levels()) {
            assert_eq!(la.components, lb.components);
            assert_eq!(la.parents, lb.parents);
        }
    }

    #[test]
    fn empty_graph_has_an_empty_hierarchy() {
        let g = UndirectedGraph::new(4);
        let h = build_hierarchy(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(h.max_k(), 0);
        assert_eq!(h.total_components(), 0);
        assert_eq!(h.connectivity_number(1), 0);
    }
}
