//! Error type of the k-VCC enumeration API.

use std::fmt;

/// Errors returned by [`crate::enumerate_kvccs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvccError {
    /// `k` must be at least 1 (a "0-vertex-connected component" is not
    /// defined by the paper).
    InvalidK,
    /// Internal invariant violation: a vertex cut reported by `GLOBAL-CUT`
    /// failed to split the graph even after the defensive full-graph
    /// recomputation. This indicates a bug and is surfaced instead of looping.
    DegeneratePartition {
        /// Number of vertices of the subgraph that could not be partitioned.
        subgraph_vertices: usize,
    },
    /// A seed vertex passed to [`crate::query::kvccs_containing`] does not
    /// exist in the graph.
    SeedOutOfRange {
        /// The offending vertex id.
        seed: u32,
    },
}

impl fmt::Display for KvccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvccError::InvalidK => write!(f, "k must be at least 1"),
            KvccError::DegeneratePartition { subgraph_vertices } => write!(
                f,
                "internal error: a reported vertex cut failed to partition a subgraph \
                 with {subgraph_vertices} vertices"
            ),
            KvccError::SeedOutOfRange { seed } => {
                write!(f, "seed vertex {seed} does not exist in the graph")
            }
        }
    }
}

impl std::error::Error for KvccError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(KvccError::InvalidK.to_string().contains("k"));
        let e = KvccError::DegeneratePartition {
            subgraph_vertices: 7,
        };
        assert!(e.to_string().contains('7'));
    }
}
