//! Error type of the k-VCC enumeration API.

use std::fmt;

use crate::stats::EnumerationStats;

/// Errors returned by [`crate::enumerate_kvccs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvccError {
    /// `k` must be at least 1 (a "0-vertex-connected component" is not
    /// defined by the paper).
    InvalidK,
    /// Internal invariant violation: a vertex cut reported by `GLOBAL-CUT`
    /// failed to split the graph even after the defensive full-graph
    /// recomputation. This indicates a bug and is surfaced instead of looping.
    DegeneratePartition {
        /// Number of vertices of the subgraph that could not be partitioned.
        subgraph_vertices: usize,
    },
    /// A seed vertex passed to [`crate::query::kvccs_containing`] does not
    /// exist in the graph.
    SeedOutOfRange {
        /// The offending vertex id.
        seed: u32,
    },
    /// The enumeration was interrupted mid-run by its
    /// [`crate::KvccOptions::budget`] (deadline passed or token cancelled).
    ///
    /// Carries the **partial** statistics of the work completed before the
    /// interrupt — every counter reflects exactly the items, probes and
    /// sweeps that ran, `cancelled` is set, and `elapsed` is the
    /// time-to-interrupt — so callers can report how far a cancelled run
    /// got. No component list is returned: a partial component set would be
    /// indistinguishable from a complete one.
    Interrupted {
        /// Statistics of the work completed before the interrupt
        /// (`stats.cancelled` is always `true`).
        stats: Box<EnumerationStats>,
    },
}

impl fmt::Display for KvccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvccError::InvalidK => write!(f, "k must be at least 1"),
            KvccError::DegeneratePartition { subgraph_vertices } => write!(
                f,
                "internal error: a reported vertex cut failed to partition a subgraph \
                 with {subgraph_vertices} vertices"
            ),
            KvccError::SeedOutOfRange { seed } => {
                write!(f, "seed vertex {seed} does not exist in the graph")
            }
            KvccError::Interrupted { stats } => {
                write!(
                    f,
                    "enumeration interrupted by its budget after {} work items ({:?})",
                    stats.work_items_executed, stats.elapsed
                )
            }
        }
    }
}

impl From<kvcc_flow::Interrupted> for KvccError {
    /// Lifts a flow-level interrupt into the enumeration error space. The
    /// statistics box is empty at this point; [`crate::KvccEnumerator::run`]
    /// replaces it with the merged partial statistics of the whole run
    /// before the error reaches the caller.
    fn from(_: kvcc_flow::Interrupted) -> Self {
        KvccError::Interrupted {
            stats: Box::new(EnumerationStats {
                cancelled: true,
                ..EnumerationStats::default()
            }),
        }
    }
}

impl std::error::Error for KvccError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(KvccError::InvalidK.to_string().contains("k"));
        let e = KvccError::DegeneratePartition {
            subgraph_vertices: 7,
        };
        assert!(e.to_string().contains('7'));
    }
}
