//! The `KVCC-ENUM` framework (Algorithm 1).
//!
//! Starting from the whole input graph, the enumerator repeatedly:
//!
//! 1. peels vertices of degree `< k` (k-core pruning; every k-VCC is inside a
//!    k-core by Theorem 3);
//! 2. splits the remainder into connected components;
//! 3. asks `GLOBAL-CUT`/`GLOBAL-CUT*` for a vertex cut of size `< k` in each
//!    component — if none exists the component is a k-VCC, otherwise the
//!    component is partitioned along the cut with the cut vertices duplicated
//!    into every side (`OVERLAP-PARTITION`) and the pieces are pushed back
//!    onto the work list.
//!
//! Lemma 10 and Theorem 6 bound the total number of partitions and of
//! k-VCCs, which keeps the whole process polynomial (Theorem 7).
//!
//! # Implementation notes
//!
//! * The input graph may be any [`GraphView`]; every internal work item is a
//!   compact [`CsrGraph`].
//! * k-core peeling and component splitting run on a [`SubgraphView`] vertex
//!   mask — no copy is made until a component survives both filters, at which
//!   point it is extracted once into CSR form through a reusable relabelling
//!   buffer ([`CsrGraph::extract_induced`]).
//! * Each `GLOBAL-CUT` probe reuses a per-worker [`CutScratch`] flow arena
//!   instead of rebuilding its network from scratch.
//! * The work items created by `OVERLAP-PARTITION` are independent, so with
//!   [`KvccOptions::threads`] ≠ 1 they are processed by a pool of workers;
//!   results and statistics merge deterministically (see
//!   [`KvccOptions::threads`]).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::{CsrGraph, GraphView, SubgraphView, VertexId};

use crate::error::KvccError;
use crate::global_cut::{global_cut_with_scratch, CutScratch};
use crate::options::{AlgorithmVariant, KvccOptions};
use crate::partition::overlap_partition;
use crate::result::{KVertexConnectedComponent, KvccResult};
use crate::stats::{EnumerationStats, MemoryTracker};

/// A reusable enumerator configured once and run against any number of graphs.
#[derive(Clone, Debug, Default)]
pub struct KvccEnumerator {
    options: KvccOptions,
}

/// A unit of pending work: a subgraph (in its own compact id space) plus the
/// mapping of its vertex ids back to the ids of the input graph.
struct WorkItem {
    graph: CsrGraph,
    to_original: Vec<VertexId>,
}

impl WorkItem {
    /// Bytes charged to the memory tracker while the item sits on the work
    /// list.
    fn bytes(&self) -> usize {
        self.graph.memory_bytes() + self.to_original.len() * std::mem::size_of::<VertexId>()
    }
}

/// Per-worker scratch: the `GLOBAL-CUT` flow arena plus the relabelling
/// buffer used by CSR extraction. Lives for the whole enumeration, so steady
/// state work allocates only the extracted subgraphs themselves.
#[derive(Default)]
struct WorkerScratch {
    cut: CutScratch,
    map: Vec<VertexId>,
}

impl KvccEnumerator {
    /// Creates an enumerator with the given options.
    pub fn new(options: KvccOptions) -> Self {
        KvccEnumerator { options }
    }

    /// Convenience constructor for one of the paper's four variants.
    pub fn with_variant(variant: AlgorithmVariant) -> Self {
        KvccEnumerator {
            options: KvccOptions::for_variant(variant),
        }
    }

    /// The options this enumerator runs with.
    pub fn options(&self) -> &KvccOptions {
        &self.options
    }

    /// Enumerates all k-VCCs of `graph`.
    ///
    /// Errors if `k == 0` (the model is undefined) or — which would indicate an
    /// internal bug — if a reported cut repeatedly fails to split a subgraph.
    pub fn run<G: GraphView>(&self, graph: &G, k: u32) -> Result<KvccResult, KvccError> {
        if k == 0 {
            return Err(KvccError::InvalidK);
        }
        let start = Instant::now();
        let mut stats = EnumerationStats::default();
        let mut results: Vec<KVertexConnectedComponent> = Vec::new();

        // Apply the first round of k-core pruning directly on the caller's
        // graph so the working set never contains a full copy of the input —
        // only the (usually much smaller) k-core and its descendants. The
        // memory tracker therefore measures the algorithm's *working* memory,
        // which is what Fig. 12 of the paper tracks trends of.
        let mut initial: Vec<WorkItem> = Vec::new();
        let core_vertices = k_core_vertices(graph, k as usize);
        stats.kcore_removed_vertices += (graph.num_vertices() - core_vertices.len()) as u64;
        if !core_vertices.is_empty() {
            let mut map = Vec::new();
            let core = CsrGraph::extract_induced(graph, &core_vertices, &mut map);
            initial.push(WorkItem {
                graph: core,
                to_original: core_vertices,
            });
        }

        let threads = effective_threads(self.options.threads);
        if threads <= 1 {
            self.run_sequential(k, initial, &mut results, &mut stats)?;
        } else {
            self.run_parallel(k, initial, &mut results, &mut stats, threads)?;
        }

        // Deterministic output order: by smallest member, then by size.
        results.sort();
        stats.elapsed = start.elapsed();
        Ok(KvccResult::new(k, results, stats))
    }

    /// Sequential worklist (LIFO, matching the seed implementation).
    fn run_sequential(
        &self,
        k: u32,
        initial: Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
    ) -> Result<(), KvccError> {
        let mut memory = MemoryTracker::new();
        let mut scratch = WorkerScratch::default();
        let mut work: Vec<WorkItem> = Vec::new();
        let mut created: Vec<WorkItem> = Vec::new();
        for item in initial {
            memory.allocate(item.bytes());
            work.push(item);
        }
        while let Some(item) = work.pop() {
            memory.release(item.bytes());
            self.process_item(
                item,
                k,
                &mut created,
                results,
                stats,
                &mut memory,
                &mut scratch,
            )?;
            for item in created.drain(..) {
                memory.allocate(item.bytes());
                work.push(item);
            }
        }
        stats.peak_memory_bytes = stats.peak_memory_bytes.max(memory.peak());
        Ok(())
    }

    /// Parallel worklist: a shared queue drained by `threads` workers, each
    /// with its own scratch arena and local result/statistics buffers that
    /// are merged after the pool drains.
    ///
    /// The merge is deterministic because the *set* of work items processed
    /// is independent of scheduling: every item is handled identically
    /// regardless of which worker picks it up, counters are sums over items,
    /// and the final component list is sorted. Only `elapsed` and the peak
    /// memory estimate vary between runs.
    fn run_parallel(
        &self,
        k: u32,
        initial: Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        threads: usize,
    ) -> Result<(), KvccError> {
        struct Shared {
            queue: VecDeque<WorkItem>,
            active: usize,
            error: Option<KvccError>,
        }
        let queue_bytes = AtomicUsize::new(0);
        let queue_peak = AtomicUsize::new(0);
        let charge = |delta: usize| {
            let now = queue_bytes.fetch_add(delta, Ordering::Relaxed) + delta;
            queue_peak.fetch_max(now, Ordering::Relaxed);
        };
        for item in &initial {
            charge(item.bytes());
        }
        let shared = Mutex::new(Shared {
            queue: initial.into(),
            active: 0,
            error: None,
        });
        let ready = Condvar::new();

        type WorkerOutput = (Vec<KVertexConnectedComponent>, EnumerationStats, usize);
        let collected: Mutex<Vec<WorkerOutput>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local_results = Vec::new();
                    let mut local_stats = EnumerationStats::default();
                    let mut memory = MemoryTracker::new();
                    let mut scratch = WorkerScratch::default();
                    let mut created: Vec<WorkItem> = Vec::new();
                    loop {
                        // Pop one item, or exit when the queue has drained and
                        // no worker can still produce more.
                        let item = {
                            let mut guard = shared.lock().unwrap();
                            loop {
                                if guard.error.is_some() {
                                    break None;
                                }
                                if let Some(item) = guard.queue.pop_back() {
                                    guard.active += 1;
                                    break Some(item);
                                }
                                if guard.active == 0 {
                                    break None;
                                }
                                guard = ready.wait(guard).unwrap();
                            }
                        };
                        let Some(item) = item else { break };
                        queue_bytes.fetch_sub(item.bytes(), Ordering::Relaxed);

                        let outcome = self.process_item(
                            item,
                            k,
                            &mut created,
                            &mut local_results,
                            &mut local_stats,
                            &mut memory,
                            &mut scratch,
                        );
                        for item in &created {
                            charge(item.bytes());
                        }

                        let mut guard = shared.lock().unwrap();
                        guard.active -= 1;
                        match outcome {
                            Ok(()) => guard.queue.extend(created.drain(..)),
                            Err(e) => {
                                created.clear();
                                guard.error.get_or_insert(e);
                            }
                        }
                        // Wake everyone: new items may be available, or the
                        // drain condition may now hold.
                        ready.notify_all();
                    }
                    collected
                        .lock()
                        .unwrap()
                        .push((local_results, local_stats, memory.peak()));
                });
            }
        });

        if let Some(e) = shared.into_inner().unwrap().error {
            return Err(e);
        }
        let mut scratch_peak = 0usize;
        for (local_results, local_stats, peak) in collected.into_inner().unwrap() {
            results.extend(local_results);
            // Worker-local stats have zero `elapsed` and zero peak memory, so
            // the shared merge only accumulates the order-independent
            // counters here; the peak estimate is assembled below.
            stats.merge(&local_stats);
            scratch_peak = scratch_peak.max(peak);
        }
        // Peak estimate: the queue's high-water mark plus the largest
        // per-worker scratch peak. An approximation (workers run
        // concurrently), but monotone in problem size like Fig. 12.
        stats.peak_memory_bytes = stats
            .peak_memory_bytes
            .max(queue_peak.load(Ordering::Relaxed) + scratch_peak);
        Ok(())
    }

    /// Handles one work item: k-core pruning, component split, cut-or-report.
    ///
    /// New work items are pushed to `created`; the caller owns queueing and
    /// the associated memory accounting.
    #[allow(clippy::too_many_arguments)]
    fn process_item(
        &self,
        item: WorkItem,
        k: u32,
        created: &mut Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        memory: &mut MemoryTracker,
        scratch: &mut WorkerScratch,
    ) -> Result<(), KvccError> {
        // Line 2 of Algorithm 1: iteratively remove vertices of degree < k —
        // on a vertex mask, without copying the graph.
        let mut view = SubgraphView::new(&item.graph);
        let removed = view.k_core_reduce(k as usize);
        stats.kcore_removed_vertices += removed as u64;
        if view.live() == 0 {
            return Ok(());
        }

        // Line 3: identify connected components of the masked subgraph.
        for component in view.components() {
            // A k-VCC needs strictly more than k vertices (Definition 2).
            if component.len() <= k as usize {
                continue;
            }
            // One extraction per surviving component (ids stay sorted, so the
            // relabelled CSR rows come out sorted for free).
            let sub = CsrGraph::extract_induced(&item.graph, &component, &mut scratch.map);
            let to_original: Vec<VertexId> = component
                .iter()
                .map(|&local| item.to_original[local as usize])
                .collect();

            // Lines 5-11: find a cut; report or partition.
            let outcome = global_cut_with_scratch(&sub, k, &self.options, stats, &mut scratch.cut);
            memory.allocate(outcome.scratch_memory_bytes);
            memory.release(outcome.scratch_memory_bytes);

            match outcome.cut {
                None => {
                    results.push(KVertexConnectedComponent::new(to_original));
                }
                Some(cut) => {
                    self.partition_and_push(
                        &sub,
                        &to_original,
                        cut,
                        k,
                        created,
                        results,
                        stats,
                        scratch,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Applies `OVERLAP-PARTITION` and pushes the pieces, handling the
    /// defensive case of a cut that fails to split the subgraph.
    #[allow(clippy::too_many_arguments)]
    fn partition_and_push(
        &self,
        subgraph: &CsrGraph,
        to_original: &[VertexId],
        cut: Vec<VertexId>,
        k: u32,
        created: &mut Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        scratch: &mut WorkerScratch,
    ) -> Result<(), KvccError> {
        let mut parts = overlap_partition(subgraph, &cut);
        if parts.len() < 2 {
            // The certificate-derived cut should always split the graph; if it
            // does not, recompute a cut on the full subgraph with the exact
            // (uncertified) routine and try once more.
            stats.fallback_recuts += 1;
            match kvcc_flow::connectivity::find_vertex_cut(subgraph, k) {
                None => {
                    results.push(KVertexConnectedComponent::new(to_original.to_vec()));
                    return Ok(());
                }
                Some(recut) => {
                    parts = overlap_partition(subgraph, &recut);
                    if parts.len() < 2 {
                        return Err(KvccError::DegeneratePartition {
                            subgraph_vertices: subgraph.num_vertices(),
                        });
                    }
                }
            }
        }
        stats.partitions += 1;
        for part in parts {
            // `part` is sorted and de-duplicated by `overlap_partition`.
            let piece = CsrGraph::extract_induced(subgraph, &part, &mut scratch.map);
            let piece_to_original: Vec<VertexId> = part
                .iter()
                .map(|&local| to_original[local as usize])
                .collect();
            created.push(WorkItem {
                graph: piece,
                to_original: piece_to_original,
            });
        }
        Ok(())
    }
}

/// Resolves [`KvccOptions::threads`] to a concrete worker count.
fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Enumerates all k-vertex connected components of `graph`.
///
/// This is the main entry point of the crate; see the crate-level docs for an
/// example and [`KvccOptions`] for the available algorithm variants.
pub fn enumerate_kvccs<G: GraphView>(
    graph: &G,
    k: u32,
    options: &KvccOptions,
) -> Result<KvccResult, KvccError> {
    KvccEnumerator::new(options.clone()).run(graph, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_kvccs;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    /// Two triangles sharing one vertex.
    fn two_triangles() -> UndirectedGraph {
        UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .unwrap()
    }

    #[test]
    fn rejects_k_zero() {
        let g = complete(4);
        assert!(matches!(
            enumerate_kvccs(&g, 0, &KvccOptions::default()),
            Err(KvccError::InvalidK)
        ));
    }

    #[test]
    fn clique_is_its_own_kvcc() {
        let g = complete(6);
        for k in 1..=5u32 {
            let r = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(r.num_components(), 1, "k = {k}");
            assert_eq!(r.components()[0].len(), 6);
            verify_kvccs(&g, &r, true).unwrap();
        }
        // k = 6 requires more than 6 vertices.
        let r = enumerate_kvccs(&g, 6, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 0);
    }

    #[test]
    fn shared_vertex_triangles_split_into_two_2vccs() {
        let g = two_triangles();
        let r = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 2);
        assert_eq!(r.components()[0].vertices(), &[0, 1, 2]);
        assert_eq!(r.components()[1].vertices(), &[2, 3, 4]);
        verify_kvccs(&g, &r, true).unwrap();
        // Vertex 2 belongs to both (overlap 1 < k = 2).
        assert_eq!(r.components_containing(2).len(), 2);
        assert!(r.stats().partitions >= 1);
    }

    #[test]
    fn csr_input_gives_identical_results() {
        let g = two_triangles();
        let csr = CsrGraph::from_view(&g);
        let a = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        let b = enumerate_kvccs(&csr, 2, &KvccOptions::default()).unwrap();
        assert_eq!(a.components(), b.components());
        assert_eq!(a.stats().partitions, b.stats().partitions);
        assert_eq!(a.stats().tested_vertices, b.stats().tested_vertices);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let g = two_triangles();
        let sequential = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        for threads in [0usize, 2, 4] {
            let opts = KvccOptions::default().with_threads(threads);
            let parallel = enumerate_kvccs(&g, 2, &opts).unwrap();
            assert_eq!(
                parallel.components(),
                sequential.components(),
                "threads {threads}"
            );
            assert_eq!(
                parallel.stats().partitions,
                sequential.stats().partitions,
                "threads {threads}"
            );
            assert_eq!(
                parallel.stats().kcore_removed_vertices,
                sequential.stats().kcore_removed_vertices
            );
            assert!(parallel.stats().peak_memory_bytes > 0);
        }
    }

    #[test]
    fn k1_gives_connected_components_with_at_least_two_vertices() {
        let g = UndirectedGraph::from_edges(7, vec![(0, 1), (1, 2), (3, 4), (5, 5)]).unwrap();
        let r = enumerate_kvccs(&g, 1, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 2);
        assert_eq!(r.components()[0].vertices(), &[0, 1, 2]);
        assert_eq!(r.components()[1].vertices(), &[3, 4]);
        verify_kvccs(&g, &r, false).unwrap();
    }

    #[test]
    fn empty_and_sparse_graphs_have_no_kvccs() {
        let empty = UndirectedGraph::new(0);
        assert_eq!(
            enumerate_kvccs(&empty, 3, &KvccOptions::default())
                .unwrap()
                .num_components(),
            0
        );
        let path = UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(
            enumerate_kvccs(&path, 2, &KvccOptions::default())
                .unwrap()
                .num_components(),
            0
        );
    }

    #[test]
    fn all_variants_return_identical_components() {
        let g = two_triangles();
        let reference = enumerate_kvccs(&g, 2, &KvccOptions::basic()).unwrap();
        for variant in AlgorithmVariant::all() {
            let r = enumerate_kvccs(&g, 2, &KvccOptions::for_variant(variant)).unwrap();
            assert_eq!(
                r.components(),
                reference.components(),
                "variant {variant:?}"
            );
        }
    }

    #[test]
    fn enumerator_is_reusable() {
        let enumerator = KvccEnumerator::with_variant(AlgorithmVariant::Full);
        assert_eq!(enumerator.options().variant, AlgorithmVariant::Full);
        let r1 = enumerator.run(&complete(5), 3).unwrap();
        let r2 = enumerator.run(&two_triangles(), 2).unwrap();
        assert_eq!(r1.num_components(), 1);
        assert_eq!(r2.num_components(), 2);
        assert!(r2.stats().elapsed.as_nanos() > 0);
        assert!(r2.stats().peak_memory_bytes > 0);
    }

    #[test]
    fn component_number_respects_theorem_6_bound() {
        // A long chain of triangles glued at single vertices: many small
        // 2-VCCs, but never more than n / 2.
        let mut edges = Vec::new();
        let blocks = 20u32;
        for b in 0..blocks {
            let base = b * 2;
            edges.push((base, base + 1));
            edges.push((base + 1, base + 2));
            edges.push((base, base + 2));
        }
        let n = (blocks * 2 + 1) as usize;
        let g = UndirectedGraph::from_edges(n, edges).unwrap();
        let r = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), blocks as usize);
        assert!(r.num_components() <= n / 2);
        verify_kvccs(&g, &r, true).unwrap();

        // The chain also exercises the parallel pool with real fan-out.
        let p = enumerate_kvccs(&g, 2, &KvccOptions::parallel().with_threads(3)).unwrap();
        assert_eq!(p.components(), r.components());
        assert_eq!(p.stats().partitions, r.stats().partitions);
        assert_eq!(p.stats().global_cut_calls, r.stats().global_cut_calls);
    }
}
