//! The `KVCC-ENUM` framework (Algorithm 1).
//!
//! Starting from the whole input graph, the enumerator repeatedly:
//!
//! 1. peels vertices of degree `< k` (k-core pruning; every k-VCC is inside a
//!    k-core by Theorem 3);
//! 2. splits the remainder into connected components;
//! 3. asks `GLOBAL-CUT`/`GLOBAL-CUT*` for a vertex cut of size `< k` in each
//!    component — if none exists the component is a k-VCC, otherwise the
//!    component is partitioned along the cut with the cut vertices duplicated
//!    into every side (`OVERLAP-PARTITION`) and the pieces are pushed back
//!    onto the work list.
//!
//! Lemma 10 and Theorem 6 bound the total number of partitions and of
//! k-VCCs, which keeps the whole process polynomial (Theorem 7).
//!
//! # Implementation notes
//!
//! * The input graph may be any [`GraphView`]; every internal work item is a
//!   compact [`CsrGraph`].
//! * k-core peeling and component splitting run on a [`SubgraphView`] vertex
//!   mask — no copy is made until a component survives both filters, at which
//!   point it is extracted once into CSR form through a reusable relabelling
//!   buffer ([`CsrGraph::extract_induced`]).
//! * Each `GLOBAL-CUT` probe reuses a per-worker [`CutScratch`] flow arena
//!   instead of rebuilding its network from scratch.
//! * The work items created by `OVERLAP-PARTITION` are independent, so with
//!   [`KvccOptions::threads`] ≠ 1 they are processed by a pool of workers;
//!   results and statistics merge deterministically (see
//!   [`KvccOptions::threads`]).
//! * The parallel runtime is a **work-stealing** pool by default
//!   ([`crate::Scheduler::WorkStealing`]): each worker owns a deque it pushes
//!   and pops LIFO (depth-first locality), idle workers steal FIFO from a
//!   victim, and an oversized component can be *deferred* back onto the
//!   worklist instead of cut in-worker
//!   ([`KvccOptions::split_threshold`]) so one giant component fans out
//!   across the pool. The PR 1 shared-queue runtime is retained as an
//!   ablation baseline ([`crate::Scheduler::SharedQueue`]).
//! * Every loop polls [`KvccOptions::budget`]; an expired deadline or a
//!   cancelled token interrupts the run at the next checkpoint and returns
//!   [`KvccError::Interrupted`] carrying the partial statistics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use kvcc_flow::Interrupted;
use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::{CsrGraph, GraphView, SubgraphView, VertexId};

use crate::error::KvccError;
use crate::global_cut::{global_cut_with_scratch, CutScratch};
use crate::options::{effective_threads, split_cost, AlgorithmVariant, KvccOptions, Scheduler};
use crate::partition::overlap_partition;
use crate::result::{KVertexConnectedComponent, KvccResult};
use crate::stats::{EnumerationStats, MemoryTracker};

/// A reusable enumerator configured once and run against any number of graphs.
#[derive(Clone, Debug, Default)]
pub struct KvccEnumerator {
    options: KvccOptions,
}

/// A unit of pending work: a subgraph (in its own compact id space) plus the
/// mapping of its vertex ids back to the ids of the input graph.
struct WorkItem {
    graph: CsrGraph,
    to_original: Vec<VertexId>,
}

impl WorkItem {
    /// Bytes charged to the memory tracker while the item sits on the work
    /// list.
    fn bytes(&self) -> usize {
        self.graph.memory_bytes() + self.to_original.len() * std::mem::size_of::<VertexId>()
    }
}

/// Per-worker scratch: the `GLOBAL-CUT` flow arena plus the relabelling
/// buffer used by CSR extraction. Lives for the whole enumeration, so steady
/// state work allocates only the extracted subgraphs themselves.
#[derive(Default)]
struct WorkerScratch {
    cut: CutScratch,
    map: Vec<VertexId>,
}

impl KvccEnumerator {
    /// Creates an enumerator with the given options.
    pub fn new(options: KvccOptions) -> Self {
        KvccEnumerator { options }
    }

    /// Convenience constructor for one of the paper's four variants.
    pub fn with_variant(variant: AlgorithmVariant) -> Self {
        KvccEnumerator {
            options: KvccOptions::for_variant(variant),
        }
    }

    /// The options this enumerator runs with.
    pub fn options(&self) -> &KvccOptions {
        &self.options
    }

    /// Enumerates all k-VCCs of `graph`.
    ///
    /// Errors if `k == 0` (the model is undefined), if
    /// [`KvccOptions::budget`] expires before the run completes
    /// ([`KvccError::Interrupted`], carrying the partial statistics of the
    /// work done up to the interrupt), or — which would indicate an internal
    /// bug — if a reported cut repeatedly fails to split a subgraph.
    pub fn run<G: GraphView>(&self, graph: &G, k: u32) -> Result<KvccResult, KvccError> {
        if k == 0 {
            return Err(KvccError::InvalidK);
        }
        let start = Instant::now();
        let mut stats = EnumerationStats::default();
        let mut results: Vec<KVertexConnectedComponent> = Vec::new();
        let outcome = self.run_worklist(graph, k, &mut results, &mut stats);
        stats.elapsed = start.elapsed();
        match outcome {
            Ok(()) => {
                // Deterministic output order: by smallest member, then size.
                results.sort();
                Ok(KvccResult::new(k, results, stats))
            }
            Err(KvccError::Interrupted { .. }) => {
                // Both runtimes merge their partial counters into `stats`
                // before reporting the interrupt, so the error carries the
                // well-defined statistics of exactly the work that ran.
                stats.cancelled = true;
                Err(KvccError::Interrupted {
                    stats: Box::new(stats),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Builds the initial worklist (first k-core peel) and drains it on the
    /// configured runtime.
    fn run_worklist<G: GraphView>(
        &self,
        graph: &G,
        k: u32,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
    ) -> Result<(), KvccError> {
        // Pre-expired budgets interrupt before any work starts.
        self.options.budget.check().map_err(KvccError::from)?;

        // Apply the first round of k-core pruning directly on the caller's
        // graph so the working set never contains a full copy of the input —
        // only the (usually much smaller) k-core and its descendants. The
        // memory tracker therefore measures the algorithm's *working* memory,
        // which is what Fig. 12 of the paper tracks trends of.
        let mut initial: Vec<WorkItem> = Vec::new();
        let core_vertices = k_core_vertices(graph, k as usize);
        stats.kcore_removed_vertices += (graph.num_vertices() - core_vertices.len()) as u64;
        if !core_vertices.is_empty() {
            let mut map = Vec::new();
            let core = CsrGraph::extract_induced(graph, &core_vertices, &mut map);
            initial.push(WorkItem {
                graph: core,
                to_original: core_vertices,
            });
        }

        let threads = effective_threads(self.options.threads);
        if threads <= 1 {
            self.run_sequential(k, initial, results, stats)
        } else {
            match self.options.scheduler {
                Scheduler::SharedQueue => {
                    self.run_parallel_shared(k, initial, results, stats, threads)
                }
                Scheduler::WorkStealing => {
                    self.run_parallel_stealing(k, initial, results, stats, threads)
                }
            }
        }
    }

    /// Sequential worklist (LIFO, matching the seed implementation).
    fn run_sequential(
        &self,
        k: u32,
        initial: Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
    ) -> Result<(), KvccError> {
        let mut memory = MemoryTracker::new();
        let mut scratch = WorkerScratch::default();
        let mut work: Vec<WorkItem> = Vec::new();
        let mut created: Vec<WorkItem> = Vec::new();
        for item in initial {
            memory.allocate(item.bytes());
            work.push(item);
        }
        while let Some(item) = work.pop() {
            // One poll per work item; finer-grained checkpoints live inside
            // the GLOBAL-CUT probes themselves.
            if self.options.budget.expired() {
                stats.peak_memory_bytes = stats.peak_memory_bytes.max(memory.peak());
                return Err(KvccError::from(Interrupted));
            }
            memory.release(item.bytes());
            self.process_item(
                item,
                k,
                &mut created,
                results,
                stats,
                &mut memory,
                &mut scratch,
            )?;
            for item in created.drain(..) {
                memory.allocate(item.bytes());
                work.push(item);
            }
        }
        stats.peak_memory_bytes = stats.peak_memory_bytes.max(memory.peak());
        Ok(())
    }

    /// The PR 1 parallel runtime, kept as the [`Scheduler::SharedQueue`]
    /// ablation baseline: one queue behind a mutex drained by `threads`
    /// workers, each with its own scratch arena and local result/statistics
    /// buffers that are merged after the pool drains.
    ///
    /// The merge is deterministic because the *set* of work items processed
    /// is independent of scheduling: every item is handled identically
    /// regardless of which worker picks it up, counters are sums over items,
    /// and the final component list is sorted. Only `elapsed`, the peak
    /// memory estimate and the steal count vary between runs.
    fn run_parallel_shared(
        &self,
        k: u32,
        initial: Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        threads: usize,
    ) -> Result<(), KvccError> {
        struct Shared {
            queue: VecDeque<WorkItem>,
            active: usize,
            error: Option<KvccError>,
        }
        let queue_bytes = AtomicUsize::new(0);
        let queue_peak = AtomicUsize::new(0);
        let charge = |delta: usize| {
            let now = queue_bytes.fetch_add(delta, Ordering::Relaxed) + delta;
            queue_peak.fetch_max(now, Ordering::Relaxed);
        };
        for item in &initial {
            charge(item.bytes());
        }
        let shared = Mutex::new(Shared {
            queue: initial.into(),
            active: 0,
            error: None,
        });
        let ready = Condvar::new();

        type WorkerOutput = (Vec<KVertexConnectedComponent>, EnumerationStats, usize);
        let collected: Mutex<Vec<WorkerOutput>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local_results = Vec::new();
                    let mut local_stats = EnumerationStats::default();
                    let mut memory = MemoryTracker::new();
                    let mut scratch = WorkerScratch::default();
                    let mut created: Vec<WorkItem> = Vec::new();
                    loop {
                        // Pop one item, or exit when the queue has drained and
                        // no worker can still produce more.
                        let item = {
                            let mut guard = shared.lock().unwrap();
                            loop {
                                if guard.error.is_some() {
                                    break None;
                                }
                                if let Some(item) = guard.queue.pop_back() {
                                    guard.active += 1;
                                    break Some(item);
                                }
                                if guard.active == 0 {
                                    break None;
                                }
                                guard = ready.wait(guard).unwrap();
                            }
                        };
                        let Some(item) = item else { break };
                        queue_bytes.fetch_sub(item.bytes(), Ordering::Relaxed);

                        let outcome = if self.options.budget.expired() {
                            Err(KvccError::from(Interrupted))
                        } else {
                            self.process_item(
                                item,
                                k,
                                &mut created,
                                &mut local_results,
                                &mut local_stats,
                                &mut memory,
                                &mut scratch,
                            )
                        };
                        // Charge only items that will actually be queued:
                        // the Err arm discards `created`, and bytes charged
                        // for discarded items would inflate the peak
                        // estimate of an interrupted run forever.
                        if outcome.is_ok() {
                            for item in &created {
                                charge(item.bytes());
                            }
                        }

                        let mut guard = shared.lock().unwrap();
                        guard.active -= 1;
                        match outcome {
                            Ok(()) => guard.queue.extend(created.drain(..)),
                            Err(e) => {
                                created.clear();
                                guard.error.get_or_insert(e);
                            }
                        }
                        // Wake everyone: new items may be available, or the
                        // drain condition may now hold.
                        ready.notify_all();
                    }
                    collected
                        .lock()
                        .unwrap()
                        .push((local_results, local_stats, memory.peak()));
                });
            }
        });

        let error = shared.into_inner().unwrap().error;
        self.merge_worker_outputs(
            collected.into_inner().unwrap(),
            results,
            stats,
            queue_peak.load(Ordering::Relaxed),
            error,
        )
    }

    /// The default parallel runtime ([`Scheduler::WorkStealing`]): one deque
    /// per worker plus a small coordination lock used only for idle parking
    /// and termination.
    ///
    /// * **Owner path** — a worker pushes the items it creates onto the back
    ///   of its own deque and pops from the back (LIFO): partition pieces
    ///   are processed depth-first while their parent is still cache-hot,
    ///   and the queue depth stays bounded by the recursion depth instead of
    ///   the fan-out.
    /// * **Steal path** — a worker whose deque is empty takes from the
    ///   *front* of a victim's deque (FIFO): the oldest item is the
    ///   shallowest point of the victim's recursion tree, i.e. the largest
    ///   stealable granule, so thieves amortise their synchronisation over
    ///   the most work. Victims are scanned round-robin starting after the
    ///   thief's own slot.
    /// * **Parking** — a worker that finds every deque empty re-checks a
    ///   version stamp under the coordination lock and `Condvar`-parks until
    ///   a producer publishes new items, the pool drains (`unfinished == 0`)
    ///   or a worker reports an error. Producers push to their deque first
    ///   and bump the version afterwards, so a thief either observes the new
    ///   item during its scan or observes the bumped version and re-scans —
    ///   wakeups cannot be lost.
    ///
    /// Output determinism is inherited from the shared-queue runtime: the
    /// processed item *set* is scheduling-independent, so everything except
    /// `elapsed`, the memory estimate and `steals` merges identically.
    fn run_parallel_stealing(
        &self,
        k: u32,
        initial: Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        threads: usize,
    ) -> Result<(), KvccError> {
        struct Coord {
            /// Items pushed but not yet fully processed (queued + in-flight).
            /// The pool has drained exactly when this reaches zero.
            unfinished: usize,
            /// Bumped under the lock after every completed publish; an idle
            /// worker re-scans instead of parking whenever the version moved
            /// since its last scan.
            version: u64,
            error: Option<KvccError>,
        }
        let queue_bytes = AtomicUsize::new(0);
        let queue_peak = AtomicUsize::new(0);
        let charge = |delta: usize| {
            let now = queue_bytes.fetch_add(delta, Ordering::Relaxed) + delta;
            queue_peak.fetch_max(now, Ordering::Relaxed);
        };
        let coord = Mutex::new(Coord {
            unfinished: initial.len(),
            version: 0,
            error: None,
        });
        // Lock-free mirror of `coord.error.is_some()`, checked before every
        // pop so workers stop promptly after any worker fails instead of
        // draining the remaining queue (the shared-queue runtime gets the
        // same behaviour from its per-pop error check).
        let failed = std::sync::atomic::AtomicBool::new(false);
        let ready = Condvar::new();
        let deques: Vec<Mutex<VecDeque<WorkItem>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        // Seed round-robin so a multi-component start is spread immediately.
        for (i, item) in initial.into_iter().enumerate() {
            charge(item.bytes());
            deques[i % threads].lock().unwrap().push_back(item);
        }

        type WorkerOutput = (Vec<KVertexConnectedComponent>, EnumerationStats, usize);
        let collected: Mutex<Vec<WorkerOutput>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (deques, coord, ready) = (&deques, &coord, &ready);
                let (collected, charge, queue_bytes) = (&collected, &charge, &queue_bytes);
                let failed = &failed;
                scope.spawn(move || {
                    let mut local_results = Vec::new();
                    let mut local_stats = EnumerationStats::default();
                    let mut memory = MemoryTracker::new();
                    let mut scratch = WorkerScratch::default();
                    let mut created: Vec<WorkItem> = Vec::new();
                    let mut last_seen: Option<u64> = None;
                    'work: loop {
                        // Fail fast: once any worker recorded an error the
                        // rest must not drain the remaining worklist.
                        if failed.load(Ordering::Relaxed) {
                            break 'work;
                        }
                        // Own deque back (LIFO), then steal fronts (FIFO).
                        let mut item = deques[worker].lock().unwrap().pop_back();
                        if item.is_none() {
                            for offset in 1..threads {
                                let victim = (worker + offset) % threads;
                                if let Some(stolen) = deques[victim].lock().unwrap().pop_front() {
                                    local_stats.steals += 1;
                                    item = Some(stolen);
                                    break;
                                }
                            }
                        }
                        let item = match item {
                            Some(item) => {
                                last_seen = None;
                                item
                            }
                            None => {
                                let mut guard = coord.lock().unwrap();
                                loop {
                                    if guard.error.is_some() || guard.unfinished == 0 {
                                        break 'work;
                                    }
                                    if last_seen != Some(guard.version) {
                                        // A publish completed since our scan:
                                        // remember the stamp and re-scan.
                                        last_seen = Some(guard.version);
                                        continue 'work;
                                    }
                                    guard = ready.wait(guard).unwrap();
                                }
                            }
                        };
                        queue_bytes.fetch_sub(item.bytes(), Ordering::Relaxed);

                        let outcome = if self.options.budget.expired() {
                            Err(KvccError::from(Interrupted))
                        } else {
                            self.process_item(
                                item,
                                k,
                                &mut created,
                                &mut local_results,
                                &mut local_stats,
                                &mut memory,
                                &mut scratch,
                            )
                        };
                        match outcome {
                            Ok(()) => {
                                let pushed = created.len();
                                if pushed > 0 {
                                    for item in &created {
                                        charge(item.bytes());
                                    }
                                    // Count the new items *before* making
                                    // them stealable: a thief that finishes
                                    // one instantly must never drive
                                    // `unfinished` to a premature zero (or
                                    // below). The publish still happens
                                    // before the version bump — the parking
                                    // protocol in the method docs.
                                    coord.lock().unwrap().unfinished += pushed;
                                    deques[worker].lock().unwrap().extend(created.drain(..));
                                }
                                let mut guard = coord.lock().unwrap();
                                guard.unfinished -= 1;
                                let done = guard.unfinished == 0;
                                if pushed > 0 {
                                    guard.version += 1;
                                }
                                drop(guard);
                                if pushed > 0 || done {
                                    ready.notify_all();
                                }
                            }
                            Err(e) => {
                                created.clear();
                                let mut guard = coord.lock().unwrap();
                                guard.error.get_or_insert(e);
                                guard.unfinished -= 1;
                                drop(guard);
                                failed.store(true, Ordering::Relaxed);
                                ready.notify_all();
                            }
                        }
                    }
                    collected
                        .lock()
                        .unwrap()
                        .push((local_results, local_stats, memory.peak()));
                });
            }
        });

        let error = coord.into_inner().unwrap().error;
        self.merge_worker_outputs(
            collected.into_inner().unwrap(),
            results,
            stats,
            queue_peak.load(Ordering::Relaxed),
            error,
        )
    }

    /// Merges per-worker outputs into the run-level buffers — **also on
    /// error**, so an interrupted run reports the partial statistics of the
    /// work that actually completed.
    fn merge_worker_outputs(
        &self,
        outputs: Vec<(Vec<KVertexConnectedComponent>, EnumerationStats, usize)>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        queue_peak: usize,
        error: Option<KvccError>,
    ) -> Result<(), KvccError> {
        let mut scratch_peak = 0usize;
        for (local_results, local_stats, peak) in outputs {
            results.extend(local_results);
            // Worker-local stats have zero `elapsed` and zero peak memory, so
            // the shared merge only accumulates the order-independent
            // counters here; the peak estimate is assembled below.
            stats.merge(&local_stats);
            scratch_peak = scratch_peak.max(peak);
        }
        // Peak estimate: the queue's high-water mark plus the largest
        // per-worker scratch peak. An approximation (workers run
        // concurrently), but monotone in problem size like Fig. 12.
        stats.peak_memory_bytes = stats.peak_memory_bytes.max(queue_peak + scratch_peak);
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Handles one work item: k-core pruning, component split, cut-or-report.
    ///
    /// New work items are pushed to `created`; the caller owns queueing and
    /// the associated memory accounting. With
    /// [`KvccOptions::split_threshold`] set, a surviving component whose
    /// [`split_cost`] exceeds the threshold is *deferred* — pushed to
    /// `created` as its own work item instead of cut inline — so the
    /// expensive `GLOBAL-CUT` calls of a skewed worklist spread across the
    /// pool. Deferral is only legal when the item actually shrank (peeling
    /// removed vertices or the item fell apart into several components);
    /// otherwise the identical item would bounce on the worklist forever,
    /// so a non-shrinking item is always cut inline.
    #[allow(clippy::too_many_arguments)]
    fn process_item(
        &self,
        item: WorkItem,
        k: u32,
        created: &mut Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        memory: &mut MemoryTracker,
        scratch: &mut WorkerScratch,
    ) -> Result<(), KvccError> {
        stats.work_items_executed += 1;
        // Line 2 of Algorithm 1: iteratively remove vertices of degree < k —
        // on a vertex mask, without copying the graph.
        let mut view = SubgraphView::new(&item.graph);
        let removed = view.k_core_reduce(k as usize);
        stats.kcore_removed_vertices += removed as u64;
        if view.live() == 0 {
            return Ok(());
        }

        // Line 3: identify connected components of the masked subgraph.
        let components = view.components();
        let shrank = removed > 0 || components.len() > 1;
        for component in components {
            // A k-VCC needs strictly more than k vertices (Definition 2).
            if component.len() <= k as usize {
                continue;
            }
            // One extraction per surviving component (ids stay sorted, so the
            // relabelled CSR rows come out sorted for free).
            let sub = CsrGraph::extract_induced(&item.graph, &component, &mut scratch.map);
            let to_original: Vec<VertexId> = component
                .iter()
                .map(|&local| item.to_original[local as usize])
                .collect();

            // Skew-aware splitting: fan an oversized component back out to
            // the pool instead of serialising its cut loop on this worker.
            if shrank && self.should_defer(&sub, k) {
                stats.splits += 1;
                created.push(WorkItem {
                    graph: sub,
                    to_original,
                });
                continue;
            }

            // Lines 5-11: find a cut; report or partition.
            let outcome = global_cut_with_scratch(&sub, k, &self.options, stats, &mut scratch.cut)?;
            memory.allocate(outcome.scratch_memory_bytes);
            memory.release(outcome.scratch_memory_bytes);

            match outcome.cut {
                None => {
                    results.push(KVertexConnectedComponent::new(to_original));
                }
                Some(cut) => {
                    self.partition_and_push(
                        &sub,
                        &to_original,
                        cut,
                        k,
                        created,
                        results,
                        stats,
                        scratch,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// The skew-aware splitting decision: defer when the component's
    /// [`split_cost`] exceeds [`KvccOptions::split_threshold`]. A function of
    /// the item content only, so the processed item *set* — and with it every
    /// deterministic counter — is identical for every thread count and
    /// scheduler at a fixed threshold.
    fn should_defer(&self, sub: &CsrGraph, k: u32) -> bool {
        self.options
            .split_threshold
            .is_some_and(|threshold| split_cost(sub.num_vertices(), sub.num_edges(), k) > threshold)
    }

    /// Applies `OVERLAP-PARTITION` and pushes the pieces, handling the
    /// defensive case of a cut that fails to split the subgraph.
    #[allow(clippy::too_many_arguments)]
    fn partition_and_push(
        &self,
        subgraph: &CsrGraph,
        to_original: &[VertexId],
        cut: Vec<VertexId>,
        k: u32,
        created: &mut Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        scratch: &mut WorkerScratch,
    ) -> Result<(), KvccError> {
        let mut parts = overlap_partition(subgraph, &cut);
        if parts.len() < 2 {
            // The certificate-derived cut should always split the graph; if it
            // does not, recompute a cut on the full subgraph with the exact
            // (uncertified) routine and try once more.
            stats.fallback_recuts += 1;
            match kvcc_flow::connectivity::find_vertex_cut(subgraph, k) {
                None => {
                    results.push(KVertexConnectedComponent::new(to_original.to_vec()));
                    return Ok(());
                }
                Some(recut) => {
                    parts = overlap_partition(subgraph, &recut);
                    if parts.len() < 2 {
                        return Err(KvccError::DegeneratePartition {
                            subgraph_vertices: subgraph.num_vertices(),
                        });
                    }
                }
            }
        }
        stats.partitions += 1;
        for part in parts {
            // `part` is sorted and de-duplicated by `overlap_partition`.
            let piece = CsrGraph::extract_induced(subgraph, &part, &mut scratch.map);
            let piece_to_original: Vec<VertexId> = part
                .iter()
                .map(|&local| to_original[local as usize])
                .collect();
            created.push(WorkItem {
                graph: piece,
                to_original: piece_to_original,
            });
        }
        Ok(())
    }
}

/// Enumerates all k-vertex connected components of `graph`.
///
/// This is the main entry point of the crate; see the crate-level docs for an
/// example and [`KvccOptions`] for the available algorithm variants.
pub fn enumerate_kvccs<G: GraphView>(
    graph: &G,
    k: u32,
    options: &KvccOptions,
) -> Result<KvccResult, KvccError> {
    KvccEnumerator::new(options.clone()).run(graph, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_kvccs;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    /// Two triangles sharing one vertex.
    fn two_triangles() -> UndirectedGraph {
        UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .unwrap()
    }

    #[test]
    fn rejects_k_zero() {
        let g = complete(4);
        assert!(matches!(
            enumerate_kvccs(&g, 0, &KvccOptions::default()),
            Err(KvccError::InvalidK)
        ));
    }

    #[test]
    fn clique_is_its_own_kvcc() {
        let g = complete(6);
        for k in 1..=5u32 {
            let r = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(r.num_components(), 1, "k = {k}");
            assert_eq!(r.components()[0].len(), 6);
            verify_kvccs(&g, &r, true).unwrap();
        }
        // k = 6 requires more than 6 vertices.
        let r = enumerate_kvccs(&g, 6, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 0);
    }

    #[test]
    fn shared_vertex_triangles_split_into_two_2vccs() {
        let g = two_triangles();
        let r = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 2);
        assert_eq!(r.components()[0].vertices(), &[0, 1, 2]);
        assert_eq!(r.components()[1].vertices(), &[2, 3, 4]);
        verify_kvccs(&g, &r, true).unwrap();
        // Vertex 2 belongs to both (overlap 1 < k = 2).
        assert_eq!(r.components_containing(2).len(), 2);
        assert!(r.stats().partitions >= 1);
    }

    #[test]
    fn csr_input_gives_identical_results() {
        let g = two_triangles();
        let csr = CsrGraph::from_view(&g);
        let a = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        let b = enumerate_kvccs(&csr, 2, &KvccOptions::default()).unwrap();
        assert_eq!(a.components(), b.components());
        assert_eq!(a.stats().partitions, b.stats().partitions);
        assert_eq!(a.stats().tested_vertices, b.stats().tested_vertices);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let g = two_triangles();
        let sequential = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        for threads in [0usize, 2, 4] {
            let opts = KvccOptions::default().with_threads(threads);
            let parallel = enumerate_kvccs(&g, 2, &opts).unwrap();
            assert_eq!(
                parallel.components(),
                sequential.components(),
                "threads {threads}"
            );
            assert_eq!(
                parallel.stats().partitions,
                sequential.stats().partitions,
                "threads {threads}"
            );
            assert_eq!(
                parallel.stats().kcore_removed_vertices,
                sequential.stats().kcore_removed_vertices
            );
            assert!(parallel.stats().peak_memory_bytes > 0);
        }
    }

    #[test]
    fn k1_gives_connected_components_with_at_least_two_vertices() {
        let g = UndirectedGraph::from_edges(7, vec![(0, 1), (1, 2), (3, 4), (5, 5)]).unwrap();
        let r = enumerate_kvccs(&g, 1, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 2);
        assert_eq!(r.components()[0].vertices(), &[0, 1, 2]);
        assert_eq!(r.components()[1].vertices(), &[3, 4]);
        verify_kvccs(&g, &r, false).unwrap();
    }

    #[test]
    fn empty_and_sparse_graphs_have_no_kvccs() {
        let empty = UndirectedGraph::new(0);
        assert_eq!(
            enumerate_kvccs(&empty, 3, &KvccOptions::default())
                .unwrap()
                .num_components(),
            0
        );
        let path = UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(
            enumerate_kvccs(&path, 2, &KvccOptions::default())
                .unwrap()
                .num_components(),
            0
        );
    }

    #[test]
    fn all_variants_return_identical_components() {
        let g = two_triangles();
        let reference = enumerate_kvccs(&g, 2, &KvccOptions::basic()).unwrap();
        for variant in AlgorithmVariant::all() {
            let r = enumerate_kvccs(&g, 2, &KvccOptions::for_variant(variant)).unwrap();
            assert_eq!(
                r.components(),
                reference.components(),
                "variant {variant:?}"
            );
        }
    }

    #[test]
    fn enumerator_is_reusable() {
        let enumerator = KvccEnumerator::with_variant(AlgorithmVariant::Full);
        assert_eq!(enumerator.options().variant, AlgorithmVariant::Full);
        let r1 = enumerator.run(&complete(5), 3).unwrap();
        let r2 = enumerator.run(&two_triangles(), 2).unwrap();
        assert_eq!(r1.num_components(), 1);
        assert_eq!(r2.num_components(), 2);
        assert!(r2.stats().elapsed.as_nanos() > 0);
        assert!(r2.stats().peak_memory_bytes > 0);
    }

    #[test]
    fn schedulers_and_split_thresholds_agree_exactly() {
        // Triangles connected by bridge edges: every overlap partition leaves
        // a dangling bridge stub that peels, so the shrink-guarded deferral
        // actually engages (and the fan-out exercises stealing).
        let mut edges = Vec::new();
        for b in 0..8u32 {
            let base = b * 3;
            edges.push((base, base + 1));
            edges.push((base + 1, base + 2));
            edges.push((base, base + 2));
            if b + 1 < 8 {
                edges.push((base + 2, base + 3));
            }
        }
        let g = UndirectedGraph::from_edges(24, edges).unwrap();
        let reference = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        for scheduler in [
            crate::Scheduler::SharedQueue,
            crate::Scheduler::WorkStealing,
        ] {
            for threshold in [None, Some(0), Some(10)] {
                for threads in [1usize, 2, 4] {
                    let opts = KvccOptions::default()
                        .with_threads(threads)
                        .with_scheduler(scheduler)
                        .with_split_threshold(threshold);
                    let r = enumerate_kvccs(&g, 2, &opts).unwrap();
                    let label =
                        format!("{scheduler:?}, threshold {threshold:?}, {threads} threads");
                    assert_eq!(r.components(), reference.components(), "{label}");
                    assert_eq!(
                        r.stats().partitions,
                        reference.stats().partitions,
                        "{label}"
                    );
                    assert_eq!(
                        r.stats().global_cut_calls,
                        reference.stats().global_cut_calls,
                        "{label}"
                    );
                    assert!(!r.stats().cancelled);
                    assert!(r.stats().work_items_executed > 0, "{label}");
                    if threshold == Some(0) {
                        // Forced splitting must actually defer something on a
                        // worklist with shrinking items.
                        assert!(r.stats().splits > 0, "{label}");
                    }
                    if threshold.is_none() {
                        assert_eq!(r.stats().splits, 0, "{label}");
                    }
                }
            }
        }
    }

    #[test]
    fn split_counters_are_deterministic_per_threshold() {
        let g = two_triangles();
        for threshold in [None, Some(0), Some(5)] {
            let opts = KvccOptions::default().with_split_threshold(threshold);
            let a = enumerate_kvccs(&g, 2, &opts).unwrap();
            let b = enumerate_kvccs(&g, 2, &opts.clone().with_threads(3)).unwrap();
            assert_eq!(
                a.stats().splits,
                b.stats().splits,
                "threshold {threshold:?}"
            );
            assert_eq!(
                a.stats().work_items_executed,
                b.stats().work_items_executed,
                "threshold {threshold:?}"
            );
        }
    }

    #[test]
    fn pre_expired_budget_interrupts_with_partial_stats() {
        let g = two_triangles();
        for threads in [1usize, 3] {
            let opts = KvccOptions::default()
                .with_threads(threads)
                .with_budget(crate::Budget::with_timeout(std::time::Duration::ZERO));
            match enumerate_kvccs(&g, 2, &opts) {
                Err(KvccError::Interrupted { stats }) => {
                    assert!(stats.cancelled);
                    // Pre-expired: no work item ever ran.
                    assert_eq!(stats.work_items_executed, 0);
                }
                other => panic!("expected an interrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_token_interrupts_between_work_items() {
        let g = two_triangles();
        let budget = crate::Budget::cancellable();
        budget.cancel();
        for threads in [1usize, 2] {
            let opts = KvccOptions::default()
                .with_threads(threads)
                .with_budget(budget.clone());
            assert!(matches!(
                enumerate_kvccs(&g, 2, &opts),
                Err(KvccError::Interrupted { .. })
            ));
        }
        // The same enumerator value (cloned options, fresh budget) still
        // works: cancellation poisons nothing.
        let fresh = KvccOptions::default().with_budget(crate::Budget::cancellable());
        assert_eq!(enumerate_kvccs(&g, 2, &fresh).unwrap().num_components(), 2);
    }

    #[test]
    fn component_number_respects_theorem_6_bound() {
        // A long chain of triangles glued at single vertices: many small
        // 2-VCCs, but never more than n / 2.
        let mut edges = Vec::new();
        let blocks = 20u32;
        for b in 0..blocks {
            let base = b * 2;
            edges.push((base, base + 1));
            edges.push((base + 1, base + 2));
            edges.push((base, base + 2));
        }
        let n = (blocks * 2 + 1) as usize;
        let g = UndirectedGraph::from_edges(n, edges).unwrap();
        let r = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), blocks as usize);
        assert!(r.num_components() <= n / 2);
        verify_kvccs(&g, &r, true).unwrap();

        // The chain also exercises the parallel pool with real fan-out.
        let p = enumerate_kvccs(&g, 2, &KvccOptions::parallel().with_threads(3)).unwrap();
        assert_eq!(p.components(), r.components());
        assert_eq!(p.stats().partitions, r.stats().partitions);
        assert_eq!(p.stats().global_cut_calls, r.stats().global_cut_calls);
    }
}
