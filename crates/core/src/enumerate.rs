//! The `KVCC-ENUM` framework (Algorithm 1).
//!
//! Starting from the whole input graph, the enumerator repeatedly:
//!
//! 1. peels vertices of degree `< k` (k-core pruning; every k-VCC is inside a
//!    k-core by Theorem 3);
//! 2. splits the remainder into connected components;
//! 3. asks `GLOBAL-CUT`/`GLOBAL-CUT*` for a vertex cut of size `< k` in each
//!    component — if none exists the component is a k-VCC, otherwise the
//!    component is partitioned along the cut with the cut vertices duplicated
//!    into every side (`OVERLAP-PARTITION`) and the pieces are pushed back
//!    onto the work list.
//!
//! Lemma 10 and Theorem 6 bound the total number of partitions and of
//! k-VCCs, which keeps the whole process polynomial (Theorem 7).

use std::time::Instant;

use kvcc_graph::kcore::k_core_vertices;
use kvcc_graph::traversal::connected_components;
use kvcc_graph::{UndirectedGraph, VertexId};

use crate::error::KvccError;
use crate::global_cut::global_cut;
use crate::options::{AlgorithmVariant, KvccOptions};
use crate::partition::overlap_partition;
use crate::result::{KVertexConnectedComponent, KvccResult};
use crate::stats::{EnumerationStats, MemoryTracker};

/// A reusable enumerator configured once and run against any number of graphs.
#[derive(Clone, Debug, Default)]
pub struct KvccEnumerator {
    options: KvccOptions,
}

/// A unit of pending work: a subgraph (in its own compact id space) plus the
/// mapping of its vertex ids back to the ids of the input graph.
struct WorkItem {
    graph: UndirectedGraph,
    to_original: Vec<VertexId>,
}

impl KvccEnumerator {
    /// Creates an enumerator with the given options.
    pub fn new(options: KvccOptions) -> Self {
        KvccEnumerator { options }
    }

    /// Convenience constructor for one of the paper's four variants.
    pub fn with_variant(variant: AlgorithmVariant) -> Self {
        KvccEnumerator { options: KvccOptions::for_variant(variant) }
    }

    /// The options this enumerator runs with.
    pub fn options(&self) -> &KvccOptions {
        &self.options
    }

    /// Enumerates all k-VCCs of `graph`.
    ///
    /// Errors if `k == 0` (the model is undefined) or — which would indicate an
    /// internal bug — if a reported cut repeatedly fails to split a subgraph.
    pub fn run(&self, graph: &UndirectedGraph, k: u32) -> Result<KvccResult, KvccError> {
        if k == 0 {
            return Err(KvccError::InvalidK);
        }
        let start = Instant::now();
        let mut stats = EnumerationStats::default();
        let mut memory = MemoryTracker::new();
        let mut results: Vec<KVertexConnectedComponent> = Vec::new();

        // Apply the first round of k-core pruning directly on the caller's
        // graph so the working set never contains a full copy of the input —
        // only the (usually much smaller) k-core and its descendants. The
        // memory tracker therefore measures the algorithm's *working* memory,
        // which is what Fig. 12 of the paper tracks trends of.
        let mut work: Vec<WorkItem> = Vec::new();
        let core_vertices = k_core_vertices(graph, k as usize);
        stats.kcore_removed_vertices += (graph.num_vertices() - core_vertices.len()) as u64;
        if !core_vertices.is_empty() {
            let core = graph.induced_subgraph(&core_vertices);
            push_item(&mut work, &mut memory, core.graph, core.to_parent);
        }

        while let Some(item) = work.pop() {
            memory.release(item.graph.memory_bytes());
            self.process_item(item, k, &mut work, &mut results, &mut stats, &mut memory)?;
        }

        // Deterministic output order: by smallest member, then by size.
        results.sort();
        stats.peak_memory_bytes = memory.peak();
        stats.elapsed = start.elapsed();
        Ok(KvccResult::new(k, results, stats))
    }

    /// Handles one work item: k-core pruning, component split, cut-or-report.
    fn process_item(
        &self,
        item: WorkItem,
        k: u32,
        work: &mut Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        memory: &mut MemoryTracker,
    ) -> Result<(), KvccError> {
        // Line 2 of Algorithm 1: iteratively remove vertices of degree < k.
        let core_vertices = k_core_vertices(&item.graph, k as usize);
        stats.kcore_removed_vertices +=
            (item.graph.num_vertices() - core_vertices.len()) as u64;
        if core_vertices.is_empty() {
            return Ok(());
        }
        let core = item.graph.induced_subgraph(&core_vertices);

        // Line 3: identify connected components.
        for component in connected_components(&core.graph) {
            // A k-VCC needs strictly more than k vertices (Definition 2).
            if component.len() <= k as usize {
                continue;
            }
            let sub = core.graph.induced_subgraph(&component);
            let to_original: Vec<VertexId> = sub
                .to_parent
                .iter()
                .map(|&core_local| {
                    item.to_original[core.to_parent[core_local as usize] as usize]
                })
                .collect();

            // Lines 5-11: find a cut; report or partition.
            let outcome = global_cut(&sub.graph, k, &self.options, stats);
            memory.allocate(outcome.scratch_memory_bytes);
            memory.release(outcome.scratch_memory_bytes);

            match outcome.cut {
                None => {
                    results.push(KVertexConnectedComponent::new(to_original));
                }
                Some(cut) => {
                    self.partition_and_push(
                        &sub.graph,
                        &to_original,
                        cut,
                        k,
                        work,
                        results,
                        stats,
                        memory,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Applies `OVERLAP-PARTITION` and pushes the pieces, handling the
    /// defensive case of a cut that fails to split the subgraph.
    #[allow(clippy::too_many_arguments)]
    fn partition_and_push(
        &self,
        subgraph: &UndirectedGraph,
        to_original: &[VertexId],
        cut: Vec<VertexId>,
        k: u32,
        work: &mut Vec<WorkItem>,
        results: &mut Vec<KVertexConnectedComponent>,
        stats: &mut EnumerationStats,
        memory: &mut MemoryTracker,
    ) -> Result<(), KvccError> {
        let mut parts = overlap_partition(subgraph, &cut);
        if parts.len() < 2 {
            // The certificate-derived cut should always split the graph; if it
            // does not, recompute a cut on the full subgraph with the exact
            // (uncertified) routine and try once more.
            stats.fallback_recuts += 1;
            match kvcc_flow::connectivity::find_vertex_cut(subgraph, k) {
                None => {
                    results.push(KVertexConnectedComponent::new(to_original.to_vec()));
                    return Ok(());
                }
                Some(recut) => {
                    parts = overlap_partition(subgraph, &recut);
                    if parts.len() < 2 {
                        return Err(KvccError::DegeneratePartition {
                            subgraph_vertices: subgraph.num_vertices(),
                        });
                    }
                }
            }
        }
        stats.partitions += 1;
        for part in parts {
            let piece = subgraph.induced_subgraph(&part);
            let piece_to_original: Vec<VertexId> = piece
                .to_parent
                .iter()
                .map(|&local| to_original[local as usize])
                .collect();
            push_item(work, memory, piece.graph, piece_to_original);
        }
        Ok(())
    }
}

/// Pushes a work item and charges its memory to the tracker.
fn push_item(
    work: &mut Vec<WorkItem>,
    memory: &mut MemoryTracker,
    graph: UndirectedGraph,
    to_original: Vec<VertexId>,
) {
    memory.allocate(graph.memory_bytes() + to_original.len() * std::mem::size_of::<VertexId>());
    work.push(WorkItem { graph, to_original });
}

/// Enumerates all k-vertex connected components of `graph`.
///
/// This is the main entry point of the crate; see the crate-level docs for an
/// example and [`KvccOptions`] for the available algorithm variants.
pub fn enumerate_kvccs(
    graph: &UndirectedGraph,
    k: u32,
    options: &KvccOptions,
) -> Result<KvccResult, KvccError> {
    KvccEnumerator::new(options.clone()).run(graph, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_kvccs;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    /// Two triangles sharing one vertex.
    fn two_triangles() -> UndirectedGraph {
        UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .unwrap()
    }

    #[test]
    fn rejects_k_zero() {
        let g = complete(4);
        assert!(matches!(
            enumerate_kvccs(&g, 0, &KvccOptions::default()),
            Err(KvccError::InvalidK)
        ));
    }

    #[test]
    fn clique_is_its_own_kvcc() {
        let g = complete(6);
        for k in 1..=5u32 {
            let r = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(r.num_components(), 1, "k = {k}");
            assert_eq!(r.components()[0].len(), 6);
            verify_kvccs(&g, &r, true).unwrap();
        }
        // k = 6 requires more than 6 vertices.
        let r = enumerate_kvccs(&g, 6, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 0);
    }

    #[test]
    fn shared_vertex_triangles_split_into_two_2vccs() {
        let g = two_triangles();
        let r = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 2);
        assert_eq!(r.components()[0].vertices(), &[0, 1, 2]);
        assert_eq!(r.components()[1].vertices(), &[2, 3, 4]);
        verify_kvccs(&g, &r, true).unwrap();
        // Vertex 2 belongs to both (overlap 1 < k = 2).
        assert_eq!(r.components_containing(2).len(), 2);
        assert!(r.stats().partitions >= 1);
    }

    #[test]
    fn k1_gives_connected_components_with_at_least_two_vertices() {
        let g = UndirectedGraph::from_edges(7, vec![(0, 1), (1, 2), (3, 4), (5, 5)]).unwrap();
        let r = enumerate_kvccs(&g, 1, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), 2);
        assert_eq!(r.components()[0].vertices(), &[0, 1, 2]);
        assert_eq!(r.components()[1].vertices(), &[3, 4]);
        verify_kvccs(&g, &r, false).unwrap();
    }

    #[test]
    fn empty_and_sparse_graphs_have_no_kvccs() {
        let empty = UndirectedGraph::new(0);
        assert_eq!(enumerate_kvccs(&empty, 3, &KvccOptions::default()).unwrap().num_components(), 0);
        let path = UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(enumerate_kvccs(&path, 2, &KvccOptions::default()).unwrap().num_components(), 0);
    }

    #[test]
    fn all_variants_return_identical_components() {
        let g = two_triangles();
        let reference = enumerate_kvccs(&g, 2, &KvccOptions::basic()).unwrap();
        for variant in AlgorithmVariant::all() {
            let r = enumerate_kvccs(&g, 2, &KvccOptions::for_variant(variant)).unwrap();
            assert_eq!(r.components(), reference.components(), "variant {variant:?}");
        }
    }

    #[test]
    fn enumerator_is_reusable() {
        let enumerator = KvccEnumerator::with_variant(AlgorithmVariant::Full);
        assert_eq!(enumerator.options().variant, AlgorithmVariant::Full);
        let r1 = enumerator.run(&complete(5), 3).unwrap();
        let r2 = enumerator.run(&two_triangles(), 2).unwrap();
        assert_eq!(r1.num_components(), 1);
        assert_eq!(r2.num_components(), 2);
        assert!(r2.stats().elapsed.as_nanos() > 0);
        assert!(r2.stats().peak_memory_bytes > 0);
    }

    #[test]
    fn component_number_respects_theorem_6_bound() {
        // A long chain of triangles glued at single vertices: many small
        // 2-VCCs, but never more than n / 2.
        let mut edges = Vec::new();
        let blocks = 20u32;
        for b in 0..blocks {
            let base = b * 2;
            edges.push((base, base + 1));
            edges.push((base + 1, base + 2));
            edges.push((base, base + 2));
        }
        let n = (blocks * 2 + 1) as usize;
        let g = UndirectedGraph::from_edges(n, edges).unwrap();
        let r = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
        assert_eq!(r.num_components(), blocks as usize);
        assert!(r.num_components() <= n / 2);
        verify_kvccs(&g, &r, true).unwrap();
    }
}
