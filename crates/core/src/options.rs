//! Configuration of the enumeration algorithm.

/// Which pruning strategies are enabled, matching the four algorithms compared
/// in the paper's efficiency study (§6.2, Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AlgorithmVariant {
    /// `VCCE`: the basic algorithm of §4 (sparse certificate + two-phase
    /// `GLOBAL-CUT`, no sweeps).
    Basic,
    /// `VCCE-N`: basic algorithm plus the neighbor-sweep rules of §5.1
    /// (strong side-vertices and vertex deposits).
    NeighborSweep,
    /// `VCCE-G`: basic algorithm plus the group-sweep rules of §5.2
    /// (side-groups and group deposits).
    GroupSweep,
    /// `VCCE*`: both neighbor sweep and group sweep (the paper's final
    /// algorithm). This is the default.
    #[default]
    Full,
}

impl AlgorithmVariant {
    /// Whether the neighbor-sweep rules (§5.1) are active.
    pub fn neighbor_sweep(self) -> bool {
        matches!(
            self,
            AlgorithmVariant::NeighborSweep | AlgorithmVariant::Full
        )
    }

    /// Whether the group-sweep rules (§5.2) are active.
    pub fn group_sweep(self) -> bool {
        matches!(self, AlgorithmVariant::GroupSweep | AlgorithmVariant::Full)
    }

    /// The paper's name for the variant (used by the benchmark harness).
    pub fn paper_name(self) -> &'static str {
        match self {
            AlgorithmVariant::Basic => "VCCE",
            AlgorithmVariant::NeighborSweep => "VCCE-N",
            AlgorithmVariant::GroupSweep => "VCCE-G",
            AlgorithmVariant::Full => "VCCE*",
        }
    }

    /// All four variants in the order the paper lists them.
    pub fn all() -> [AlgorithmVariant; 4] {
        [
            AlgorithmVariant::Basic,
            AlgorithmVariant::NeighborSweep,
            AlgorithmVariant::GroupSweep,
            AlgorithmVariant::Full,
        ]
    }
}

/// Tuning knobs of the enumeration. The defaults reproduce `VCCE*` exactly as
/// described in the paper; the additional switches exist for the ablation
/// benchmarks called out in `DESIGN.md`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KvccOptions {
    /// Which sweep strategies are enabled.
    pub variant: AlgorithmVariant,
    /// Use the sparse certificate (§4.2) as the substrate of the flow
    /// computations. Disabling this runs the flow on the full subgraph
    /// (ablation only; the certificate is always computed when group sweep is
    /// enabled because the side-groups are derived from it).
    pub use_sparse_certificate: bool,
    /// Process phase-1 vertices in non-ascending order of BFS distance from
    /// the source (Algorithm 3, line 11). Disabling falls back to vertex-id
    /// order (ablation only).
    pub order_by_distance: bool,
    /// Prefer a strong side-vertex as the source vertex, which allows skipping
    /// phase 2 entirely (Algorithm 3, lines 4–7).
    pub prefer_side_vertex_source: bool,
    /// Vertices whose degree exceeds this threshold are conservatively treated
    /// as *not* strong side-vertices, bounding the `O(Σ d(w)²)` detection cost
    /// (Lemma 14) on graphs with extreme hubs. `None` means no cap. Only
    /// affects pruning effectiveness, never correctness.
    pub max_degree_for_side_vertex_check: Option<usize>,
    /// Cap every `LOC-CUT` max-flow at `k` augmenting paths (Lemma 6): the
    /// probe only has to certify `κ(u, v) >= k`, so Dinic stops at the k-th
    /// path and skips the final level BFS once the bound is met. Disabling
    /// computes the exact local connectivity per probe — the unbounded
    /// baseline the `pr3` benchmark compares against; output is identical
    /// either way.
    pub k_bounded_flow: bool,
    /// Record per-rule sweep counters (Table 2). Negligible cost; kept as an
    /// option so micro-benchmarks can exclude it.
    pub collect_statistics: bool,
    /// Number of worker threads for the `KVCC-ENUM` worklist.
    ///
    /// * `1` (the default) — sequential processing, exactly the paper's
    ///   Algorithm 1.
    /// * `0` — use [`std::thread::available_parallelism`].
    /// * `n > 1` — a fixed pool of `n` workers.
    ///
    /// The pieces produced by `OVERLAP-PARTITION` are independent, so workers
    /// process them concurrently with per-thread scratch arenas. Results and
    /// statistics are merged deterministically: the reported component set
    /// and all pruning counters are identical to a sequential run; only
    /// `elapsed` and the peak-memory estimate depend on scheduling.
    pub threads: usize,
}

impl Default for KvccOptions {
    fn default() -> Self {
        KvccOptions {
            variant: AlgorithmVariant::Full,
            use_sparse_certificate: true,
            order_by_distance: true,
            prefer_side_vertex_source: true,
            max_degree_for_side_vertex_check: Some(4096),
            k_bounded_flow: true,
            collect_statistics: true,
            threads: 1,
        }
    }
}

impl KvccOptions {
    /// Options reproducing the paper's basic algorithm `VCCE`.
    pub fn basic() -> Self {
        KvccOptions {
            variant: AlgorithmVariant::Basic,
            ..Self::default()
        }
    }

    /// Options reproducing `VCCE-N` (neighbor sweep only).
    pub fn neighbor_sweep() -> Self {
        KvccOptions {
            variant: AlgorithmVariant::NeighborSweep,
            ..Self::default()
        }
    }

    /// Options reproducing `VCCE-G` (group sweep only).
    pub fn group_sweep() -> Self {
        KvccOptions {
            variant: AlgorithmVariant::GroupSweep,
            ..Self::default()
        }
    }

    /// Options reproducing `VCCE*` (both sweeps; same as `Default`).
    pub fn full() -> Self {
        Self::default()
    }

    /// Options for the requested variant with all other knobs at their
    /// defaults.
    pub fn for_variant(variant: AlgorithmVariant) -> Self {
        KvccOptions {
            variant,
            ..Self::default()
        }
    }

    /// `VCCE*` with the parallel worklist enabled (one worker per available
    /// core).
    pub fn parallel() -> Self {
        KvccOptions {
            threads: 0,
            ..Self::default()
        }
    }

    /// Sets the worker-thread count (see [`KvccOptions::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the k-bounded flow probe (see
    /// [`KvccOptions::k_bounded_flow`]).
    pub fn with_k_bounded_flow(mut self, bounded: bool) -> Self {
        self.k_bounded_flow = bounded;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_flags() {
        assert!(!AlgorithmVariant::Basic.neighbor_sweep());
        assert!(!AlgorithmVariant::Basic.group_sweep());
        assert!(AlgorithmVariant::NeighborSweep.neighbor_sweep());
        assert!(!AlgorithmVariant::NeighborSweep.group_sweep());
        assert!(!AlgorithmVariant::GroupSweep.neighbor_sweep());
        assert!(AlgorithmVariant::GroupSweep.group_sweep());
        assert!(AlgorithmVariant::Full.neighbor_sweep());
        assert!(AlgorithmVariant::Full.group_sweep());
    }

    #[test]
    fn paper_names_match_figure_10() {
        let names: Vec<_> = AlgorithmVariant::all()
            .iter()
            .map(|v| v.paper_name())
            .collect();
        assert_eq!(names, vec!["VCCE", "VCCE-N", "VCCE-G", "VCCE*"]);
    }

    #[test]
    fn defaults_are_the_full_algorithm() {
        let opts = KvccOptions::default();
        assert_eq!(opts.variant, AlgorithmVariant::Full);
        assert!(opts.use_sparse_certificate);
        assert!(opts.order_by_distance);
        assert_eq!(KvccOptions::full(), opts);
        assert_eq!(KvccOptions::basic().variant, AlgorithmVariant::Basic);
        assert_eq!(
            KvccOptions::neighbor_sweep().variant,
            AlgorithmVariant::NeighborSweep
        );
        assert_eq!(
            KvccOptions::group_sweep().variant,
            AlgorithmVariant::GroupSweep
        );
        assert_eq!(
            KvccOptions::for_variant(AlgorithmVariant::Basic).variant,
            AlgorithmVariant::Basic
        );
    }
}
