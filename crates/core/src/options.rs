//! Configuration of the enumeration algorithm.

use kvcc_flow::Budget;

/// Which pruning strategies are enabled, matching the four algorithms compared
/// in the paper's efficiency study (§6.2, Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum AlgorithmVariant {
    /// `VCCE`: the basic algorithm of §4 (sparse certificate + two-phase
    /// `GLOBAL-CUT`, no sweeps).
    Basic,
    /// `VCCE-N`: basic algorithm plus the neighbor-sweep rules of §5.1
    /// (strong side-vertices and vertex deposits).
    NeighborSweep,
    /// `VCCE-G`: basic algorithm plus the group-sweep rules of §5.2
    /// (side-groups and group deposits).
    GroupSweep,
    /// `VCCE*`: both neighbor sweep and group sweep (the paper's final
    /// algorithm). This is the default.
    #[default]
    Full,
}

impl AlgorithmVariant {
    /// Whether the neighbor-sweep rules (§5.1) are active.
    pub fn neighbor_sweep(self) -> bool {
        matches!(
            self,
            AlgorithmVariant::NeighborSweep | AlgorithmVariant::Full
        )
    }

    /// Whether the group-sweep rules (§5.2) are active.
    pub fn group_sweep(self) -> bool {
        matches!(self, AlgorithmVariant::GroupSweep | AlgorithmVariant::Full)
    }

    /// The paper's name for the variant (used by the benchmark harness).
    pub fn paper_name(self) -> &'static str {
        match self {
            AlgorithmVariant::Basic => "VCCE",
            AlgorithmVariant::NeighborSweep => "VCCE-N",
            AlgorithmVariant::GroupSweep => "VCCE-G",
            AlgorithmVariant::Full => "VCCE*",
        }
    }

    /// All four variants in the order the paper lists them.
    pub fn all() -> [AlgorithmVariant; 4] {
        [
            AlgorithmVariant::Basic,
            AlgorithmVariant::NeighborSweep,
            AlgorithmVariant::GroupSweep,
            AlgorithmVariant::Full,
        ]
    }
}

/// Which parallel runtime drains the `KVCC-ENUM` worklist when
/// [`KvccOptions::threads`] asks for more than one worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Scheduler {
    /// One shared queue behind a mutex, every pop contended (the PR 1
    /// runtime). Kept as the ablation baseline the `pr5` benchmark compares
    /// against.
    SharedQueue,
    /// Per-worker deques with work stealing: each worker pushes and pops its
    /// own deque LIFO (depth-first locality, bounded queue growth) and idle
    /// workers steal FIFO from a victim's opposite end (the oldest — and on
    /// a skewed worklist typically largest — item, maximising the stolen
    /// granularity). The default.
    #[default]
    WorkStealing,
}

/// The scheduling cost estimate of one work item: `|E| + k·|V|`.
///
/// `|E|` approximates the cost of one sparse-certificate construction and
/// `k·|V|` the `O(k)` bounded flow probes over the phase-1 vertices — the
/// two components of a `GLOBAL-CUT*` call. Work items whose cost exceeds
/// [`KvccOptions::split_threshold`] are fanned out instead of processed
/// inline (see [`KvccOptions::split_threshold`]); the same model orders and
/// splits shard work items in `kvcc-service`.
pub fn split_cost(num_vertices: usize, num_edges: usize, k: u32) -> u64 {
    num_edges as u64 + k as u64 * num_vertices as u64
}

/// Tuning knobs of the enumeration. The defaults reproduce `VCCE*` exactly as
/// described in the paper; the additional switches exist for the ablation
/// benchmarks called out in `DESIGN.md`.
///
/// Equality ignores the [`budget`](KvccOptions::budget): the budget is a
/// runtime attachment (two configurations are "the same algorithm" whether
/// or not a deadline happens to be armed).
#[derive(Clone, Debug)]
pub struct KvccOptions {
    /// Which sweep strategies are enabled.
    pub variant: AlgorithmVariant,
    /// Use the sparse certificate (§4.2) as the substrate of the flow
    /// computations. Disabling this runs the flow on the full subgraph
    /// (ablation only; the certificate is always computed when group sweep is
    /// enabled because the side-groups are derived from it).
    pub use_sparse_certificate: bool,
    /// Process phase-1 vertices in non-ascending order of BFS distance from
    /// the source (Algorithm 3, line 11). Disabling falls back to vertex-id
    /// order (ablation only).
    pub order_by_distance: bool,
    /// Prefer a strong side-vertex as the source vertex, which allows skipping
    /// phase 2 entirely (Algorithm 3, lines 4–7).
    pub prefer_side_vertex_source: bool,
    /// Vertices whose degree exceeds this threshold are conservatively treated
    /// as *not* strong side-vertices, bounding the `O(Σ d(w)²)` detection cost
    /// (Lemma 14) on graphs with extreme hubs. `None` means no cap. Only
    /// affects pruning effectiveness, never correctness.
    pub max_degree_for_side_vertex_check: Option<usize>,
    /// Cap every `LOC-CUT` max-flow at `k` augmenting paths (Lemma 6): the
    /// probe only has to certify `κ(u, v) >= k`, so Dinic stops at the k-th
    /// path and skips the final level BFS once the bound is met. Disabling
    /// computes the exact local connectivity per probe — the unbounded
    /// baseline the `pr3` benchmark compares against; output is identical
    /// either way.
    pub k_bounded_flow: bool,
    /// Record per-rule sweep counters (Table 2). Negligible cost; kept as an
    /// option so micro-benchmarks can exclude it.
    pub collect_statistics: bool,
    /// Number of worker threads for the `KVCC-ENUM` worklist.
    ///
    /// * `1` (the default) — sequential processing, exactly the paper's
    ///   Algorithm 1.
    /// * `0` — use [`std::thread::available_parallelism`].
    /// * `n > 1` — a fixed pool of `n` workers.
    ///
    /// The pieces produced by `OVERLAP-PARTITION` are independent, so workers
    /// process them concurrently with per-thread scratch arenas. Results and
    /// statistics are merged deterministically: the reported component set
    /// and all pruning counters are identical to a sequential run; only
    /// `elapsed`, the peak-memory estimate and the steal count depend on
    /// scheduling.
    pub threads: usize,
    /// Which parallel runtime drains the worklist (ignored when the run is
    /// sequential). See [`Scheduler`].
    pub scheduler: Scheduler,
    /// Skew-aware work splitting: a surviving component whose
    /// [`split_cost`] exceeds this threshold is pushed back onto the
    /// worklist as its own work item instead of being cut in-worker, so a
    /// giant component fans out across the pool instead of serialising on
    /// one worker. `None` (the default) never defers. Splitting only
    /// re-schedules work — the component set, the partition count and every
    /// pruning counter stay byte-identical for any threshold; only
    /// [`crate::EnumerationStats::splits`] and
    /// [`crate::EnumerationStats::work_items_executed`] reflect the choice.
    pub split_threshold: Option<u64>,
    /// Cooperative cancellation token polled by the worklist (per work
    /// item), the `GLOBAL-CUT*` phase loops (per probe) and Dinic (per BFS
    /// phase). When it expires mid-run the enumeration stops at the next
    /// checkpoint and returns [`crate::KvccError::Interrupted`] carrying the
    /// partial statistics. The default is [`Budget::unlimited`] —
    /// allocation-free and never expiring. Ignored by [`PartialEq`].
    pub budget: Budget,
}

impl Default for KvccOptions {
    fn default() -> Self {
        KvccOptions {
            variant: AlgorithmVariant::Full,
            use_sparse_certificate: true,
            order_by_distance: true,
            prefer_side_vertex_source: true,
            max_degree_for_side_vertex_check: Some(4096),
            k_bounded_flow: true,
            collect_statistics: true,
            threads: 1,
            scheduler: Scheduler::WorkStealing,
            split_threshold: None,
            budget: Budget::unlimited(),
        }
    }
}

impl PartialEq for KvccOptions {
    /// Compares every algorithmic knob; the [`budget`](KvccOptions::budget)
    /// runtime attachment is deliberately excluded (see the type docs).
    fn eq(&self, other: &Self) -> bool {
        self.variant == other.variant
            && self.use_sparse_certificate == other.use_sparse_certificate
            && self.order_by_distance == other.order_by_distance
            && self.prefer_side_vertex_source == other.prefer_side_vertex_source
            && self.max_degree_for_side_vertex_check == other.max_degree_for_side_vertex_check
            && self.k_bounded_flow == other.k_bounded_flow
            && self.collect_statistics == other.collect_statistics
            && self.threads == other.threads
            && self.scheduler == other.scheduler
            && self.split_threshold == other.split_threshold
    }
}

impl Eq for KvccOptions {}

impl KvccOptions {
    /// Options reproducing the paper's basic algorithm `VCCE`.
    pub fn basic() -> Self {
        KvccOptions {
            variant: AlgorithmVariant::Basic,
            ..Self::default()
        }
    }

    /// Options reproducing `VCCE-N` (neighbor sweep only).
    pub fn neighbor_sweep() -> Self {
        KvccOptions {
            variant: AlgorithmVariant::NeighborSweep,
            ..Self::default()
        }
    }

    /// Options reproducing `VCCE-G` (group sweep only).
    pub fn group_sweep() -> Self {
        KvccOptions {
            variant: AlgorithmVariant::GroupSweep,
            ..Self::default()
        }
    }

    /// Options reproducing `VCCE*` (both sweeps; same as `Default`).
    pub fn full() -> Self {
        Self::default()
    }

    /// Options for the requested variant with all other knobs at their
    /// defaults.
    pub fn for_variant(variant: AlgorithmVariant) -> Self {
        KvccOptions {
            variant,
            ..Self::default()
        }
    }

    /// `VCCE*` with the parallel worklist enabled (one worker per available
    /// core).
    pub fn parallel() -> Self {
        KvccOptions {
            threads: 0,
            ..Self::default()
        }
    }

    /// Sets the worker-thread count (see [`KvccOptions::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables the k-bounded flow probe (see
    /// [`KvccOptions::k_bounded_flow`]).
    pub fn with_k_bounded_flow(mut self, bounded: bool) -> Self {
        self.k_bounded_flow = bounded;
        self
    }

    /// Selects the parallel runtime (see [`Scheduler`]).
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the skew-aware splitting threshold (see
    /// [`KvccOptions::split_threshold`]).
    pub fn with_split_threshold(mut self, threshold: Option<u64>) -> Self {
        self.split_threshold = threshold;
        self
    }

    /// Attaches a cancellation [`Budget`] (see [`KvccOptions::budget`]).
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// Resolves a requested worker count to a concrete one (`0` means
/// [`std::thread::available_parallelism`]). The helper now lives in
/// `kvcc_graph::load`, where the streaming loader's sort fan-out also uses
/// it; re-exported here so `kvcc::effective_threads` keeps working for the
/// enumeration worklist ([`KvccOptions::threads`]) and the `kvcc-service`
/// batch pool.
pub use kvcc_graph::effective_threads;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_flags() {
        assert!(!AlgorithmVariant::Basic.neighbor_sweep());
        assert!(!AlgorithmVariant::Basic.group_sweep());
        assert!(AlgorithmVariant::NeighborSweep.neighbor_sweep());
        assert!(!AlgorithmVariant::NeighborSweep.group_sweep());
        assert!(!AlgorithmVariant::GroupSweep.neighbor_sweep());
        assert!(AlgorithmVariant::GroupSweep.group_sweep());
        assert!(AlgorithmVariant::Full.neighbor_sweep());
        assert!(AlgorithmVariant::Full.group_sweep());
    }

    #[test]
    fn paper_names_match_figure_10() {
        let names: Vec<_> = AlgorithmVariant::all()
            .iter()
            .map(|v| v.paper_name())
            .collect();
        assert_eq!(names, vec!["VCCE", "VCCE-N", "VCCE-G", "VCCE*"]);
    }

    #[test]
    fn defaults_are_the_full_algorithm() {
        let opts = KvccOptions::default();
        assert_eq!(opts.variant, AlgorithmVariant::Full);
        assert!(opts.use_sparse_certificate);
        assert!(opts.order_by_distance);
        assert_eq!(KvccOptions::full(), opts);
        assert_eq!(KvccOptions::basic().variant, AlgorithmVariant::Basic);
        assert_eq!(
            KvccOptions::neighbor_sweep().variant,
            AlgorithmVariant::NeighborSweep
        );
        assert_eq!(
            KvccOptions::group_sweep().variant,
            AlgorithmVariant::GroupSweep
        );
        assert_eq!(
            KvccOptions::for_variant(AlgorithmVariant::Basic).variant,
            AlgorithmVariant::Basic
        );
        assert_eq!(opts.scheduler, Scheduler::WorkStealing);
        assert_eq!(opts.split_threshold, None);
        assert!(opts.budget.is_unlimited());
    }

    #[test]
    fn equality_ignores_the_budget_attachment() {
        let armed = KvccOptions::default().with_budget(Budget::cancellable());
        assert_eq!(armed, KvccOptions::default());
        let different = KvccOptions::default().with_split_threshold(Some(100));
        assert_ne!(different, KvccOptions::default());
        assert_ne!(
            KvccOptions::default().with_scheduler(Scheduler::SharedQueue),
            KvccOptions::default()
        );
    }

    #[test]
    fn split_cost_model_weights_edges_and_k_scaled_vertices() {
        assert_eq!(split_cost(0, 0, 4), 0);
        assert_eq!(split_cost(10, 25, 4), 25 + 40);
        assert!(split_cost(100, 400, 8) > split_cost(100, 400, 2));
    }

    #[test]
    fn effective_threads_resolves_zero_to_available_parallelism() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
