//! The `SWEEP` procedure (Algorithm 4): neighbor sweep and group sweep.
//!
//! Given a source vertex `u`, a vertex `v` is *swept* when the algorithm has
//! established `u ≡ₖ v` without (or after) running a flow computation, so the
//! phase-1 loop of `GLOBAL-CUT*` can skip it. Sweeping one vertex can cascade:
//!
//! * every neighbour `w` of a swept vertex gains one unit of *vertex deposit*;
//!   `k` deposits certify `u ≡ₖ w` (Lemma 17, neighbor-sweep rule 2);
//! * if the swept vertex is a strong side-vertex, all of its neighbours are
//!   swept outright (Lemma 11, neighbor-sweep rule 1);
//! * the side-group containing the swept vertex gains one unit of *group
//!   deposit*; `k` deposits — or a swept strong side-vertex member — sweep the
//!   whole group (Lemma 19 / group-sweep rules 1–2).
//!
//! The cascade is processed with an explicit work list, so arbitrarily large
//! sweeps cannot overflow the call stack.

use kvcc_flow::Budget;
use kvcc_graph::{BitSet, GraphView, VertexId};

use crate::certificate::NO_GROUP;

/// Why a vertex was marked as swept. Used to attribute skipped vertices to the
/// pruning rules of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepCause {
    /// The vertex is the source itself or passed an explicit `LOC-CUT` test.
    SourceOrTested,
    /// Neighbor-sweep rule 1: neighbour of a swept strong side-vertex.
    NeighborRule1,
    /// Neighbor-sweep rule 2: vertex deposit reached `k`.
    NeighborRule2,
    /// Group sweep: the vertex's side-group was swept wholesale.
    GroupSweep,
}

/// Static, per-`GLOBAL-CUT*` inputs consumed by the sweep cascade, generic
/// over the graph representation.
pub struct SweepContext<'a, G: GraphView> {
    /// The current subgraph being cut.
    pub graph: &'a G,
    /// The connectivity parameter `k`.
    pub k: u32,
    /// Strong side-vertex flags (empty slice ⇒ treat every vertex as not
    /// strong, e.g. for the `VCCE-G` variant where they are still computed, or
    /// `VCCE` where they are not).
    pub strong_side: &'a [bool],
    /// `group_of[v]`: index of the side-group containing `v`, or [`NO_GROUP`].
    pub group_of: &'a [u32],
    /// The side-groups themselves.
    pub side_groups: &'a [Vec<VertexId>],
    /// Whether the neighbor-sweep rules are enabled (variant `VCCE-N`/`VCCE*`).
    pub neighbor_sweep: bool,
    /// Whether the group-sweep rules are enabled (variant `VCCE-G`/`VCCE*`).
    pub group_sweep: bool,
    /// Cancellation token polled inside long sweep cascades (every
    /// [`SWEEP_POLL_INTERVAL`] worklist pops). An expired budget makes the
    /// cascade bail out early; pending worklist entries stay queued and are
    /// either drained by a later sweep call or dropped with the whole state
    /// when the enclosing `GLOBAL-CUT*` aborts. Bailing early only *under-*
    /// prunes, so correctness is unaffected even if the run were to
    /// continue.
    pub budget: &'a Budget,
}

/// How many cascade steps a sweep processes between two budget polls.
pub const SWEEP_POLL_INTERVAL: u32 = 256;

impl<'a, G: GraphView> SweepContext<'a, G> {
    fn is_strong(&self, v: VertexId) -> bool {
        self.strong_side.get(v as usize).copied().unwrap_or(false)
    }

    fn group(&self, v: VertexId) -> u32 {
        self.group_of.get(v as usize).copied().unwrap_or(NO_GROUP)
    }
}

/// Mutable sweep state for one `GLOBAL-CUT*` invocation.
#[derive(Clone, Debug)]
pub struct SweepState {
    pruned: BitSet,
    cause: Vec<SweepCause>,
    deposit: Vec<u32>,
    group_deposit: Vec<u32>,
    group_processed: BitSet,
    worklist: Vec<VertexId>,
}

impl SweepState {
    /// Creates a fresh state for a graph with `num_vertices` vertices and
    /// `num_groups` side-groups.
    pub fn new(num_vertices: usize, num_groups: usize) -> Self {
        SweepState {
            pruned: BitSet::new(num_vertices),
            cause: vec![SweepCause::SourceOrTested; num_vertices],
            deposit: vec![0; num_vertices],
            group_deposit: vec![0; num_groups],
            group_processed: BitSet::new(num_groups),
            worklist: Vec::new(),
        }
    }

    /// Whether `v` has been swept (and can therefore be skipped by phase 1).
    #[inline]
    pub fn is_pruned(&self, v: VertexId) -> bool {
        self.pruned.contains(v as usize)
    }

    /// The cause recorded when `v` was swept. Meaningful only if
    /// [`is_pruned`](Self::is_pruned) returns `true`.
    #[inline]
    pub fn cause(&self, v: VertexId) -> SweepCause {
        self.cause[v as usize]
    }

    /// Current vertex deposit of `v` (Definition 11); exposed for tests.
    #[inline]
    pub fn deposit(&self, v: VertexId) -> u32 {
        self.deposit[v as usize]
    }

    /// Current group deposit of side-group `g` (Definition 13); exposed for
    /// tests.
    #[inline]
    pub fn group_deposit(&self, g: usize) -> u32 {
        self.group_deposit[g]
    }

    /// Number of swept vertices, including the source and tested vertices.
    pub fn swept_count(&self) -> usize {
        self.pruned.count_ones()
    }

    /// Runs the `SWEEP` cascade (Algorithm 4) starting from `v`, which is
    /// known to satisfy `u ≡ₖ v` for the current source `u` (because it is the
    /// source itself, passed a `LOC-CUT` test, or was derived by a rule).
    ///
    /// Does nothing if `v` is already swept.
    pub fn sweep<G: GraphView>(
        &mut self,
        ctx: &SweepContext<'_, G>,
        v: VertexId,
        cause: SweepCause,
    ) {
        if self.pruned.contains(v as usize) {
            return;
        }
        self.mark(v, cause);
        let mut steps = 0u32;
        while let Some(x) = self.worklist.pop() {
            self.process(ctx, x);
            steps += 1;
            if steps.is_multiple_of(SWEEP_POLL_INTERVAL) && ctx.budget.expired() {
                // Bail out of a long cascade; see `SweepContext::budget`.
                return;
            }
        }
    }

    fn mark(&mut self, v: VertexId, cause: SweepCause) {
        self.pruned.insert(v as usize);
        self.cause[v as usize] = cause;
        self.worklist.push(v);
    }

    /// Applies the deposit updates and cascading rules triggered by the sweep
    /// of `v` (lines 2–11 of Algorithm 4).
    fn process<G: GraphView>(&mut self, ctx: &SweepContext<'_, G>, v: VertexId) {
        let v_is_strong = ctx.is_strong(v);

        // Neighbor sweep (lines 2-5): deposits always accumulate; the
        // cascading sweep itself only fires when the rule set is enabled.
        for &w in ctx.graph.neighbors(v) {
            if self.pruned.contains(w as usize) {
                continue;
            }
            self.deposit[w as usize] += 1;
            if ctx.neighbor_sweep {
                if v_is_strong {
                    self.mark(w, SweepCause::NeighborRule1);
                } else if self.deposit[w as usize] >= ctx.k {
                    self.mark(w, SweepCause::NeighborRule2);
                }
            }
        }

        // Group sweep (lines 6-11).
        if !ctx.group_sweep {
            return;
        }
        let group = ctx.group(v);
        if group == NO_GROUP {
            return;
        }
        let group = group as usize;
        if self.group_processed.contains(group) {
            return;
        }
        self.group_deposit[group] += 1;
        if v_is_strong || self.group_deposit[group] >= ctx.k {
            self.group_processed.insert(group);
            for &w in &ctx.side_groups[group] {
                if !self.pruned.contains(w as usize) {
                    self.mark(w, SweepCause::GroupSweep);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    fn ctx<'a>(
        graph: &'a UndirectedGraph,
        k: u32,
        strong: &'a [bool],
        group_of: &'a [u32],
        groups: &'a [Vec<VertexId>],
        neighbor: bool,
        group: bool,
    ) -> SweepContext<'a, UndirectedGraph> {
        static UNLIMITED: std::sync::OnceLock<Budget> = std::sync::OnceLock::new();
        SweepContext {
            graph,
            k,
            strong_side: strong,
            group_of,
            side_groups: groups,
            neighbor_sweep: neighbor,
            group_sweep: group,
            budget: UNLIMITED.get_or_init(Budget::unlimited),
        }
    }

    #[test]
    fn deposits_accumulate_without_neighbor_sweep() {
        let g = complete(4);
        let strong = vec![false; 4];
        let group_of = vec![NO_GROUP; 4];
        let c = ctx(&g, 3, &strong, &group_of, &[], false, false);
        let mut state = SweepState::new(4, 0);
        state.sweep(&c, 0, SweepCause::SourceOrTested);
        // Only vertex 0 is swept; its neighbours gained one deposit each.
        assert!(state.is_pruned(0));
        assert!(!state.is_pruned(1));
        assert_eq!(state.deposit(1), 1);
        assert_eq!(state.swept_count(), 1);
    }

    #[test]
    fn deposit_rule_cascades_once_threshold_reached() {
        // Star-of-cliques shape: vertex 4 is adjacent to 0,1,2; k = 3.
        let g = UndirectedGraph::from_edges(
            5,
            vec![(0, 1), (1, 2), (0, 2), (0, 4), (1, 4), (2, 4), (3, 4)],
        )
        .unwrap();
        let strong = vec![false; 5];
        let group_of = vec![NO_GROUP; 5];
        let c = ctx(&g, 3, &strong, &group_of, &[], true, false);
        let mut state = SweepState::new(5, 0);
        // Sweep 0, 1, 2 as "tested": vertex 4 accumulates 3 deposits and is
        // swept by rule 2; vertex 3 only ever sees deposits from 4.
        state.sweep(&c, 0, SweepCause::SourceOrTested);
        state.sweep(&c, 1, SweepCause::SourceOrTested);
        assert!(!state.is_pruned(4));
        state.sweep(&c, 2, SweepCause::SourceOrTested);
        assert!(state.is_pruned(4));
        assert_eq!(state.cause(4), SweepCause::NeighborRule2);
        assert!(!state.is_pruned(3));
        assert_eq!(state.deposit(3), 1);
    }

    #[test]
    fn strong_side_vertex_sweeps_all_neighbors() {
        let g = complete(5);
        let mut strong = vec![false; 5];
        strong[0] = true;
        let group_of = vec![NO_GROUP; 5];
        let c = ctx(&g, 4, &strong, &group_of, &[], true, false);
        let mut state = SweepState::new(5, 0);
        state.sweep(&c, 0, SweepCause::SourceOrTested);
        for v in 1..5u32 {
            assert!(state.is_pruned(v));
            assert_eq!(state.cause(v), SweepCause::NeighborRule1);
        }
    }

    #[test]
    fn group_deposit_sweeps_whole_group() {
        // Path 0-1-2-3-4 with a side-group {0,1,2,3,4} and k = 3. Sweeping
        // three members triggers group-sweep rule 2 for the rest.
        let g = UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let strong = vec![false; 5];
        let group_of = vec![0; 5];
        let groups = vec![vec![0, 1, 2, 3, 4]];
        let c = ctx(&g, 3, &strong, &group_of, &groups, false, true);
        let mut state = SweepState::new(5, 1);
        state.sweep(&c, 0, SweepCause::SourceOrTested);
        state.sweep(&c, 2, SweepCause::SourceOrTested);
        assert_eq!(state.group_deposit(0), 2);
        assert!(!state.is_pruned(4));
        state.sweep(&c, 4, SweepCause::SourceOrTested);
        assert!(state.is_pruned(1));
        assert!(state.is_pruned(3));
        assert_eq!(state.cause(1), SweepCause::GroupSweep);
        assert_eq!(state.cause(3), SweepCause::GroupSweep);
    }

    #[test]
    fn group_rule1_fires_on_strong_side_member() {
        let g = complete(6);
        let mut strong = vec![false; 6];
        strong[2] = true;
        let group_of = vec![0; 6];
        let groups = vec![vec![0, 1, 2, 3, 4, 5]];
        // Neighbor sweep disabled: only the group rule may cascade.
        let c = ctx(&g, 5, &strong, &group_of, &groups, false, true);
        let mut state = SweepState::new(6, 1);
        state.sweep(&c, 2, SweepCause::SourceOrTested);
        for v in 0..6u32 {
            assert!(
                state.is_pruned(v),
                "vertex {v} should be swept via the group"
            );
        }
    }

    #[test]
    fn sweeping_twice_is_idempotent() {
        let g = complete(3);
        let strong = vec![false; 3];
        let group_of = vec![NO_GROUP; 3];
        let c = ctx(&g, 2, &strong, &group_of, &[], true, false);
        let mut state = SweepState::new(3, 0);
        state.sweep(&c, 0, SweepCause::SourceOrTested);
        let deposits_before: Vec<u32> = (0..3).map(|v| state.deposit(v)).collect();
        state.sweep(&c, 0, SweepCause::SourceOrTested);
        let deposits_after: Vec<u32> = (0..3).map(|v| state.deposit(v)).collect();
        assert_eq!(deposits_before, deposits_after);
    }

    #[test]
    fn combined_rules_interact() {
        // Group sweep of a side-group should in turn deposit into neighbours
        // outside the group (Example 10 of the paper).
        let mut edges = Vec::new();
        // Group: clique {0,1,2,3}; outside vertex 4 adjacent to 1,2,3.
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        edges.extend([(1, 4), (2, 4), (3, 4)]);
        let g = UndirectedGraph::from_edges(5, edges).unwrap();
        let strong = vec![false; 5];
        let group_of = vec![0, 0, 0, 0, NO_GROUP];
        let groups = vec![vec![0, 1, 2, 3]];
        let c = ctx(&g, 3, &strong, &group_of, &groups, true, true);
        let mut state = SweepState::new(5, 1);
        state.sweep(&c, 0, SweepCause::SourceOrTested);
        state.sweep(&c, 1, SweepCause::SourceOrTested);
        state.sweep(&c, 2, SweepCause::SourceOrTested);
        // Vertex 3 is swept either by its deposit reaching k or by the group
        // deposit reaching k (both thresholds trip on the third sweep); its
        // own sweep then deposits into vertex 4, which reaches k as well.
        assert!(state.is_pruned(3));
        assert!(matches!(
            state.cause(3),
            SweepCause::NeighborRule2 | SweepCause::GroupSweep
        ));
        assert!(state.is_pruned(4));
        assert_eq!(state.cause(4), SweepCause::NeighborRule2);
    }
}
