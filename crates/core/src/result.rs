//! Result types returned by the enumeration.

use kvcc_graph::{CsrGraph, CsrSubgraph, GraphView, VertexId};

use crate::stats::EnumerationStats;

/// One k-vertex connected component, expressed as a sorted list of vertex ids
/// of the **input** graph.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct KVertexConnectedComponent {
    vertices: Vec<VertexId>,
}

impl KVertexConnectedComponent {
    /// Creates a component from a vertex list (sorted and de-duplicated here).
    pub fn new(mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        KVertexConnectedComponent { vertices }
    }

    /// The member vertices, sorted ascending.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the component is empty (never true for results produced by the
    /// enumerator, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// Number of vertices shared with another component. k-VCCs overlap in at
    /// most `k − 1` vertices (Property 1).
    pub fn overlap(&self, other: &KVertexConnectedComponent) -> usize {
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < self.vertices.len() && j < other.vertices.len() {
            match self.vertices[i].cmp(&other.vertices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Extracts the induced subgraph of this component from the input graph
    /// (any representation) as a compact CSR subgraph with its id mapping.
    pub fn induced_subgraph<G: GraphView>(&self, g: &G) -> CsrSubgraph {
        let mut map = Vec::new();
        CsrSubgraph {
            graph: CsrGraph::extract_induced(g, &self.vertices, &mut map),
            to_parent: self.vertices.clone(),
        }
    }
}

/// The complete output of [`crate::enumerate_kvccs`]: every k-VCC of the input
/// graph plus the run statistics.
#[derive(Clone, Debug)]
pub struct KvccResult {
    k: u32,
    components: Vec<KVertexConnectedComponent>,
    stats: EnumerationStats,
}

impl KvccResult {
    /// Assembles a result (used by the enumerator; also handy for tests).
    pub fn new(
        k: u32,
        components: Vec<KVertexConnectedComponent>,
        stats: EnumerationStats,
    ) -> Self {
        KvccResult {
            k,
            components,
            stats,
        }
    }

    /// The connectivity parameter the enumeration was run with.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of k-VCCs found. Theorem 6 bounds this by `n / 2`.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// The components, sorted by their smallest vertex id.
    pub fn components(&self) -> &[KVertexConnectedComponent] {
        &self.components
    }

    /// Iterates over the components.
    pub fn iter(&self) -> impl Iterator<Item = &KVertexConnectedComponent> {
        self.components.iter()
    }

    /// Run statistics (Table 2 / Figs. 10–12 quantities).
    pub fn stats(&self) -> &EnumerationStats {
        &self.stats
    }

    /// All components that contain vertex `v` (a vertex can belong to several
    /// overlapping k-VCCs, e.g. the hub authors of the case study in §6.4).
    pub fn components_containing(&self, v: VertexId) -> Vec<&KVertexConnectedComponent> {
        self.components.iter().filter(|c| c.contains(v)).collect()
    }

    /// Total number of (vertex, component) memberships; `>= ` the number of
    /// distinct vertices covered because of overlaps.
    pub fn total_memberships(&self) -> usize {
        self.components
            .iter()
            .map(KVertexConnectedComponent::len)
            .sum()
    }

    /// Number of distinct vertices covered by at least one k-VCC.
    pub fn covered_vertices(&self) -> usize {
        let mut all: Vec<VertexId> = self
            .components
            .iter()
            .flat_map(|c| c.vertices().iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

impl<'a> IntoIterator for &'a KvccResult {
    type Item = &'a KVertexConnectedComponent;
    type IntoIter = std::slice::Iter<'a, KVertexConnectedComponent>;

    fn into_iter(self) -> Self::IntoIter {
        self.components.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_normalises_input() {
        let c = KVertexConnectedComponent::new(vec![3, 1, 2, 1]);
        assert_eq!(c.vertices(), &[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.contains(2));
        assert!(!c.contains(5));
    }

    #[test]
    fn overlap_counts_shared_vertices() {
        let a = KVertexConnectedComponent::new(vec![0, 1, 2, 3]);
        let b = KVertexConnectedComponent::new(vec![2, 3, 4, 5]);
        let c = KVertexConnectedComponent::new(vec![6, 7]);
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(b.overlap(&a), 2);
        assert_eq!(a.overlap(&c), 0);
    }

    #[test]
    fn result_accessors() {
        let comps = vec![
            KVertexConnectedComponent::new(vec![0, 1, 2]),
            KVertexConnectedComponent::new(vec![2, 3, 4]),
        ];
        let r = KvccResult::new(2, comps, EnumerationStats::default());
        assert_eq!(r.k(), 2);
        assert_eq!(r.num_components(), 2);
        assert_eq!(r.components_containing(2).len(), 2);
        assert_eq!(r.components_containing(0).len(), 1);
        assert_eq!(r.total_memberships(), 6);
        assert_eq!(r.covered_vertices(), 5);
        assert_eq!(r.iter().count(), 2);
        assert_eq!((&r).into_iter().count(), 2);
    }

    #[test]
    fn induced_subgraph_of_component() {
        let g = kvcc_graph::UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (3, 4)])
            .unwrap();
        let c = KVertexConnectedComponent::new(vec![0, 1, 2]);
        let sub = c.induced_subgraph(&g);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
    }
}
