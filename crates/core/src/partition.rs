//! Overlapped graph partition (`OVERLAP-PARTITION`, Algorithm 1 lines 13–18).
//!
//! Given a vertex cut `S` of the current subgraph, the graph is split into one
//! piece per connected component of `G − S`, and the cut vertices (plus their
//! induced edges) are **duplicated into every piece**. Duplication is what
//! allows k-VCCs to overlap in up to `k − 1` vertices (Property 1) while the
//! recursion still terminates (Lemmas 8–10).

use kvcc_graph::traversal::connected_components_filtered;
use kvcc_graph::{GraphView, VertexId};

/// Splits `g` along the vertex cut `cut`.
///
/// Returns one vertex set per connected component of `g − cut`, each extended
/// with the cut vertices, sorted and de-duplicated. The caller builds the
/// induced subgraphs (the ids refer to `g`).
///
/// If `cut` is *not* actually a cut of `g` the function returns a single set
/// containing every vertex — callers treat that as the degenerate case and
/// fall back to a recomputed cut (see `DESIGN.md`).
pub fn overlap_partition<G: GraphView>(g: &G, cut: &[VertexId]) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    let mut alive = kvcc_graph::bitset::BitSet::filled(n);
    for &v in cut {
        alive.remove(v as usize);
    }
    let components = connected_components_filtered(g, &alive);
    components
        .into_iter()
        .map(|mut part| {
            part.extend_from_slice(cut);
            part.sort_unstable();
            part.dedup();
            part
        })
        .collect()
}

/// Number of vertices duplicated by a partition along `cut` producing
/// `num_parts` pieces: `(num_parts − 1) · |cut|` (Lemma 8 bounds the growth of
/// the total vertex count).
pub fn duplicated_vertices(cut_size: usize, num_parts: usize) -> usize {
    cut_size * num_parts.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvcc_graph::UndirectedGraph;

    /// Two triangles {0,1,2} and {2,3,4} sharing the cut vertex 2.
    fn two_triangles() -> UndirectedGraph {
        UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .unwrap()
    }

    #[test]
    fn partition_duplicates_the_cut() {
        let g = two_triangles();
        let parts = overlap_partition(&g, &[2]);
        assert_eq!(parts.len(), 2);
        assert!(parts.contains(&vec![0, 1, 2]));
        assert!(parts.contains(&vec![2, 3, 4]));
        assert_eq!(duplicated_vertices(1, 2), 1);
    }

    #[test]
    fn partition_with_two_cut_vertices() {
        // Figure 2 style: two 4-cliques sharing the edge (3,4).
        let mut edges = Vec::new();
        for block in [[0u32, 1, 2, 3], [4u32, 5, 6, 7]] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((block[i], block[j]));
                }
            }
        }
        edges.push((3, 4));
        // The cut {3, 4} separates {0,1,2} from {5,6,7}.
        let g = UndirectedGraph::from_edges(8, edges).unwrap();
        let parts = overlap_partition(&g, &[3, 4]);
        assert_eq!(parts.len(), 2);
        for part in &parts {
            assert!(part.contains(&3));
            assert!(part.contains(&4));
            assert_eq!(part.len(), 5);
        }
        assert_eq!(duplicated_vertices(2, 2), 2);
    }

    #[test]
    fn non_cut_yields_single_part() {
        let g = two_triangles();
        // Vertex 0 is not a cut vertex.
        let parts = overlap_partition(&g, &[0]);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_cut_returns_components() {
        let g = UndirectedGraph::from_edges(4, vec![(0, 1), (2, 3)]).unwrap();
        let parts = overlap_partition(&g, &[]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], vec![0, 1]);
        assert_eq!(parts[1], vec![2, 3]);
        assert_eq!(duplicated_vertices(0, 2), 0);
    }

    #[test]
    fn cut_containing_every_vertex_yields_no_parts() {
        let g = two_triangles();
        let parts = overlap_partition(&g, &[0, 1, 2, 3, 4]);
        assert!(parts.is_empty());
    }
}
