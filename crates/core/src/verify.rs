//! Verification of enumeration results.
//!
//! These checks mirror the correctness lemmas of §3.2:
//!
//! * every reported component is k-vertex connected (Lemma 1);
//! * no component is contained in (or equal to) another, and any two
//!   components overlap in fewer than `k` vertices (Lemma 3 / Property 1);
//! * optionally, no component can be extended by a single adjacent vertex and
//!   stay k-vertex connected (a necessary condition of maximality that catches
//!   completeness bugs cheaply).
//!
//! The routines use the exact flow-based connectivity tests of `kvcc-flow`, so
//! they are intended for tests and moderate graph sizes, not for production
//! runs on full web graphs.

use kvcc_flow::is_k_vertex_connected;
use kvcc_graph::{CsrGraph, GraphView, VertexId};

use crate::result::KvccResult;

/// Ways in which a claimed result can be wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerificationError {
    /// Component `index` is not k-vertex connected.
    NotKConnected {
        /// Index of the offending component in the result.
        index: usize,
    },
    /// Components `first` and `second` overlap in `overlap >= k` vertices,
    /// violating Property 1 (this also catches duplicated or nested
    /// components).
    OverlapTooLarge {
        /// Index of the first component.
        first: usize,
        /// Index of the second component.
        second: usize,
        /// Number of shared vertices.
        overlap: usize,
    },
    /// Component `index` stays k-vertex connected after adding `vertex`, so it
    /// was not maximal.
    NotMaximal {
        /// Index of the offending component.
        index: usize,
        /// A vertex that could have been added.
        vertex: VertexId,
    },
    /// A component contains a vertex id that does not exist in the graph.
    VertexOutOfRange {
        /// Index of the offending component.
        index: usize,
        /// The out-of-range vertex id.
        vertex: VertexId,
    },
}

impl std::fmt::Display for VerificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerificationError::NotKConnected { index } => {
                write!(f, "component {index} is not k-vertex connected")
            }
            VerificationError::OverlapTooLarge {
                first,
                second,
                overlap,
            } => write!(
                f,
                "components {first} and {second} overlap in {overlap} vertices (must be < k)"
            ),
            VerificationError::NotMaximal { index, vertex } => {
                write!(
                    f,
                    "component {index} is not maximal: vertex {vertex} can be added"
                )
            }
            VerificationError::VertexOutOfRange { index, vertex } => {
                write!(
                    f,
                    "component {index} references non-existent vertex {vertex}"
                )
            }
        }
    }
}

impl std::error::Error for VerificationError {}

/// Verifies connectivity and overlap of every reported component.
///
/// Set `check_maximality` to also attempt single-vertex extensions of every
/// component (more expensive; quadratic in the neighbourhood sizes).
pub fn verify_kvccs<G: GraphView>(
    g: &G,
    result: &KvccResult,
    check_maximality: bool,
) -> Result<(), VerificationError> {
    let k = result.k();
    let components = result.components();

    for (index, comp) in components.iter().enumerate() {
        if let Some(&v) = comp
            .vertices()
            .iter()
            .find(|&&v| v as usize >= g.num_vertices())
        {
            return Err(VerificationError::VertexOutOfRange { index, vertex: v });
        }
        let sub = comp.induced_subgraph(g);
        if !is_k_vertex_connected(&sub.graph, k) {
            return Err(VerificationError::NotKConnected { index });
        }
    }

    for i in 0..components.len() {
        for j in (i + 1)..components.len() {
            let overlap = components[i].overlap(&components[j]);
            if overlap >= k as usize {
                return Err(VerificationError::OverlapTooLarge {
                    first: i,
                    second: j,
                    overlap,
                });
            }
        }
    }

    if check_maximality {
        for (index, comp) in components.iter().enumerate() {
            if let Some(vertex) = find_extension(g, comp.vertices(), k) {
                return Err(VerificationError::NotMaximal { index, vertex });
            }
        }
    }
    Ok(())
}

/// Looks for a vertex outside `members` whose addition keeps the induced
/// subgraph k-vertex connected. Only vertices with at least `k` neighbours
/// inside the component can possibly qualify (they would otherwise have degree
/// `< k` in the extended subgraph).
fn find_extension<G: GraphView>(g: &G, members: &[VertexId], k: u32) -> Option<VertexId> {
    let member_set: std::collections::HashSet<VertexId> = members.iter().copied().collect();
    let mut candidates: Vec<VertexId> = Vec::new();
    let mut seen: std::collections::HashSet<VertexId> = std::collections::HashSet::new();
    for &m in members {
        for &w in g.neighbors(m) {
            if !member_set.contains(&w) && seen.insert(w) {
                let inside = g
                    .neighbors(w)
                    .iter()
                    .filter(|&&x| member_set.contains(&x))
                    .count();
                if inside >= k as usize {
                    candidates.push(w);
                }
            }
        }
    }
    let mut map = Vec::new();
    for candidate in candidates {
        let mut extended = members.to_vec();
        extended.push(candidate);
        extended.sort_unstable();
        let sub = CsrGraph::extract_induced(g, &extended, &mut map);
        if is_k_vertex_connected(&sub, k) {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{KVertexConnectedComponent, KvccResult};
    use crate::stats::EnumerationStats;
    use kvcc_graph::UndirectedGraph;

    fn two_triangles() -> UndirectedGraph {
        UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .unwrap()
    }

    fn result_with(k: u32, comps: Vec<Vec<VertexId>>) -> KvccResult {
        KvccResult::new(
            k,
            comps
                .into_iter()
                .map(KVertexConnectedComponent::new)
                .collect(),
            EnumerationStats::default(),
        )
    }

    #[test]
    fn accepts_the_correct_answer() {
        let g = two_triangles();
        let r = result_with(2, vec![vec![0, 1, 2], vec![2, 3, 4]]);
        assert_eq!(verify_kvccs(&g, &r, true), Ok(()));
    }

    #[test]
    fn rejects_non_connected_components() {
        let g = two_triangles();
        let r = result_with(2, vec![vec![0, 1, 3]]);
        assert_eq!(
            verify_kvccs(&g, &r, false),
            Err(VerificationError::NotKConnected { index: 0 })
        );
    }

    #[test]
    fn rejects_excessive_overlap() {
        let g =
            UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (0, 3)])
                .unwrap();
        // K4 reported twice with overlapping triangles: overlap 2 >= k = 2.
        let r = result_with(2, vec![vec![0, 1, 2], vec![1, 2, 3]]);
        let err = verify_kvccs(&g, &r, false).unwrap_err();
        assert!(matches!(
            err,
            VerificationError::OverlapTooLarge { overlap: 2, .. }
        ));
    }

    #[test]
    fn rejects_non_maximal_components() {
        // K4: the only 2-VCC is the whole graph; a reported triangle is not
        // maximal.
        let g =
            UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (0, 3)])
                .unwrap();
        let r = result_with(2, vec![vec![0, 1, 2]]);
        assert_eq!(verify_kvccs(&g, &r, false), Ok(()));
        let err = verify_kvccs(&g, &r, true).unwrap_err();
        assert!(matches!(
            err,
            VerificationError::NotMaximal {
                index: 0,
                vertex: 3
            }
        ));
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        let g = two_triangles();
        let r = result_with(2, vec![vec![0, 1, 99]]);
        let err = verify_kvccs(&g, &r, false).unwrap_err();
        assert!(matches!(
            err,
            VerificationError::VertexOutOfRange { vertex: 99, .. }
        ));
        assert!(err.to_string().contains("99"));
    }
}
