//! Enumeration of **k-vertex connected components** (k-VCCs) in large graphs.
//!
//! This crate implements the algorithms of *"Enumerating k-Vertex Connected
//! Components in Large Graphs"* (Dong Wen, Lu Qin, Xuemin Lin, Ying Zhang,
//! Lijun Chang — ICDE 2019):
//!
//! * the cut-based enumeration framework `KVCC-ENUM` (Algorithm 1), exposed as
//!   [`enumerate_kvccs`] / [`KvccEnumerator`];
//! * the basic cut-finding routine `GLOBAL-CUT` (Algorithm 2) and its optimised
//!   variant `GLOBAL-CUT*` (Algorithm 3) in [`global_cut`];
//! * the sparse certificate and side-groups of §4.2/§5.2 in [`certificate`];
//! * strong side-vertex detection (§5.1.1) in [`side_vertex`];
//! * the neighbor-sweep and group-sweep pruning rules with vertex/group
//!   deposits (§5.1–5.2, Algorithm 4) in [`sweep`];
//! * overlapped graph partitioning (`OVERLAP-PARTITION`) in [`partition`];
//! * run statistics matching the paper's evaluation (Table 2, Figs. 10–12) in
//!   [`stats`], and result verification helpers in [`verify`];
//! * three extensions beyond the paper: the nested k-VCC [`hierarchy`] across
//!   all levels of `k`, localized seed-vertex [`query`]s
//!   ([`kvccs_containing`]), and the flattened [`ConnectivityIndex`] that
//!   answers repeated seed/level/pairwise-connectivity queries from the
//!   prebuilt hierarchy without re-running any flow computation.
//!
//! # Quick start
//!
//! ```
//! use kvcc::{enumerate_kvccs, KvccOptions};
//! use kvcc_graph::UndirectedGraph;
//!
//! // Two triangles sharing a single vertex: the 2-VCCs are the two triangles.
//! let g = UndirectedGraph::from_edges(
//!     5,
//!     vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)],
//! )
//! .unwrap();
//! let result = enumerate_kvccs(&g, 2, &KvccOptions::default()).unwrap();
//! assert_eq!(result.num_components(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod error;
pub mod global_cut;
pub mod hierarchy;
pub mod index;
pub mod options;
pub mod partition;
pub mod query;
pub mod result;
pub mod side_vertex;
pub mod stats;
pub mod sweep;
pub mod verify;

mod enumerate;

pub use enumerate::{enumerate_kvccs, KvccEnumerator};
pub use error::KvccError;
pub use hierarchy::{build_hierarchy, KvccHierarchy};
pub use index::{ConnectivityIndex, RankBy, RankedComponent, UpdateReport};
// Edge updates are defined next to `DeltaGraph` in `kvcc-graph`; re-exported
// here because `ConnectivityIndex::apply_updates` consumes them.
pub use kvcc_graph::{DeltaGraph, EdgeUpdate, UpdateOp};
// The cancellation token lives in `kvcc-flow` (the lowest crate that polls
// it); re-exported here because `KvccOptions::budget` is its primary home.
pub use kvcc_flow::{Budget, Interrupted};
pub use options::{effective_threads, split_cost, AlgorithmVariant, KvccOptions, Scheduler};
pub use query::kvccs_containing;
pub use result::{KVertexConnectedComponent, KvccResult};
pub use stats::EnumerationStats;
