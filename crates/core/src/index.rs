//! The [`ConnectivityIndex`]: the full k-VCC hierarchy flattened into a
//! query-ready forest.
//!
//! Building the hierarchy costs one nested enumeration (§2.2 nesting); every
//! question the paper's case study asks afterwards — "all 4-VCCs containing
//! author *Jiawei Han*" (§6.4), "how connected are these two authors", "what
//! are the k-VCCs at level k" — is then answered **without touching flow
//! code**:
//!
//! * [`kvccs_containing`](ConnectivityIndex::kvccs_containing) — an ancestor
//!   walk from the seed's leaf components up to level `k`;
//! * [`max_connectivity`](ConnectivityIndex::max_connectivity) — the level of
//!   the lowest common ancestor of two vertices' leaves;
//! * [`components_at`](ConnectivityIndex::components_at) — a contiguous slice
//!   of the flat forest;
//! * [`max_connectivity_of`](ConnectivityIndex::max_connectivity_of) — a
//!   per-vertex array lookup.
//!
//! Answers are byte-identical to running [`crate::enumerate_kvccs`] /
//! [`crate::query::kvccs_containing`] directly (asserted by the
//! `index_parity` integration suite); the index is the read path of the
//! `kvcc-service` serving layer.

use kvcc_graph::{GraphError, GraphView, VertexId};

use crate::error::KvccError;
use crate::hierarchy::{build_hierarchy, KvccHierarchy};
use crate::options::KvccOptions;
use crate::result::KVertexConnectedComponent;

/// Sentinel parent id for root nodes (level-1 components).
const NO_PARENT: u32 = u32::MAX;

/// Whether sorted list `child` is contained in sorted list `parent`
/// (linear two-pointer merge).
fn is_sorted_subset(child: &[VertexId], parent: &[VertexId]) -> bool {
    let mut j = 0;
    for &v in child {
        while j < parent.len() && parent[j] < v {
            j += 1;
        }
        if j >= parent.len() || parent[j] != v {
            return false;
        }
        j += 1;
    }
    true
}

/// Magic bytes opening every serialised index buffer.
const INDEX_WIRE_MAGIC: [u8; 4] = *b"KIDX";
/// Version byte of the index wire format; bump on incompatible changes.
const INDEX_WIRE_VERSION: u8 = 1;
/// Header: magic + version + `num_vertices` + depth-limit + node count.
const INDEX_WIRE_HEADER: usize = 4 + 1 + 4 + 4 + 4;
/// Wire encoding of [`ConnectivityIndex::depth_limit`]` == None`.
const NO_DEPTH_LIMIT: u32 = u32::MAX;

/// A flattened k-VCC hierarchy supporting O(depth) containment queries.
///
/// Nodes are stored level-contiguously (all level-1 components, then all
/// level-2 components, …), each with the id of the unique level-(k−1)
/// component containing it. Per vertex the index keeps the *leaf-most* nodes
/// (components not further refined at the next level) plus the vertex's
/// maximum connectivity, so every query is pointer chasing over flat arrays.
#[derive(Clone, Debug)]
pub struct ConnectivityIndex {
    /// Per node: the connectivity level `k`.
    ks: Vec<u32>,
    /// Per node: parent node id, or [`NO_PARENT`] for level-1 roots.
    parents: Vec<u32>,
    /// Per node: the component members (sorted; same ordering as the
    /// enumeration output).
    components: Vec<KVertexConnectedComponent>,
    /// `level_offsets[k - 1]..level_offsets[k]` are the node ids of level `k`
    /// (length `max_k + 1`).
    level_offsets: Vec<usize>,
    /// Per vertex: ids of the deepest nodes containing it (a vertex can have
    /// several because k-VCCs overlap in up to `k − 1` vertices).
    leaves_of: Vec<Vec<u32>>,
    /// Per vertex: the largest `k` with a k-VCC containing the vertex.
    max_k_of: Vec<u32>,
    /// The `max_k` cap the index was built with, if any. Levels beyond the
    /// cap were never enumerated, so queries there are not answerable from
    /// the index (see [`ConnectivityIndex::covers`]).
    depth_limit: Option<u32>,
}

impl ConnectivityIndex {
    /// Builds the index for `graph` by constructing the nested hierarchy once
    /// (`max_k = None` bounds it by the degeneracy) and flattening it.
    ///
    /// With an explicit `max_k` the hierarchy is **truncated**: the index can
    /// only answer queries for `k <= max_k` (checked via
    /// [`ConnectivityIndex::covers`]), and the per-vertex / pairwise
    /// connectivity values saturate at the cap.
    pub fn build<G: GraphView>(
        graph: &G,
        max_k: Option<u32>,
        options: &KvccOptions,
    ) -> Result<Self, KvccError> {
        let hierarchy = build_hierarchy(graph, max_k, options)?;
        let mut index = Self::from_hierarchy(&hierarchy);
        index.depth_limit = max_k;
        Ok(index)
    }

    /// Flattens an already-built [`KvccHierarchy`] into index form.
    pub fn from_hierarchy(hierarchy: &KvccHierarchy) -> Self {
        let num_vertices = hierarchy.num_vertices();
        let mut ks = Vec::new();
        let mut parents = Vec::new();
        let mut components = Vec::new();
        let mut level_offsets = vec![0usize];

        // Assign node ids level by level; hierarchy levels are contiguous
        // (construction stops at the first empty level), so level k occupies
        // level_offsets[k - 1]..level_offsets[k].
        for (li, level) in hierarchy.levels().iter().enumerate() {
            debug_assert_eq!(level.k as usize, li + 1, "levels must be contiguous");
            let prev_start = if li == 0 { 0 } else { level_offsets[li - 1] };
            for (comp, parent) in level.components.iter().zip(&level.parents) {
                ks.push(level.k);
                parents.push(match parent {
                    None => NO_PARENT,
                    Some(idx) => (prev_start + idx) as u32,
                });
                components.push(comp.clone());
            }
            level_offsets.push(components.len());
        }

        Self::assemble(num_vertices, ks, parents, components, level_offsets, None)
    }

    /// Builds the derived query arrays (leaf pointers, per-vertex maximum
    /// connectivity) from the forest core — shared by
    /// [`ConnectivityIndex::from_hierarchy`] and
    /// [`ConnectivityIndex::from_bytes`], so a deserialised index is
    /// guaranteed to answer queries exactly like the freshly built one it was
    /// saved from.
    fn assemble(
        num_vertices: usize,
        ks: Vec<u32>,
        parents: Vec<u32>,
        components: Vec<KVertexConnectedComponent>,
        level_offsets: Vec<usize>,
        depth_limit: Option<u32>,
    ) -> Self {
        // Leaf-most memberships: a node keeps vertex v iff no child keeps v.
        // Sweep the nodes once, marking each node's members as "covered" in
        // its parent; everything left uncovered is a leaf pointer.
        let mut covered: Vec<Vec<VertexId>> = vec![Vec::new(); components.len()];
        for id in (0..components.len()).rev() {
            if parents[id] != NO_PARENT {
                let members: Vec<VertexId> = components[id].vertices().to_vec();
                covered[parents[id] as usize].extend(members);
            }
        }
        let mut leaves_of: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
        let mut max_k_of = vec![0u32; num_vertices];
        for (id, comp) in components.iter().enumerate() {
            let mut cov = std::mem::take(&mut covered[id]);
            cov.sort_unstable();
            for &v in comp.vertices() {
                max_k_of[v as usize] = max_k_of[v as usize].max(ks[id]);
                if cov.binary_search(&v).is_err() {
                    leaves_of[v as usize].push(id as u32);
                }
            }
        }

        ConnectivityIndex {
            ks,
            parents,
            components,
            level_offsets,
            leaves_of,
            max_k_of,
            depth_limit,
        }
    }

    /// Serialises the index into a self-describing, endian-stable byte
    /// buffer (no third-party serializer, same style as the CSR and
    /// work-item wire formats).
    ///
    /// Layout: magic `b"KIDX"`, version `u8`, then little-endian `u32`s —
    /// `num_vertices`, the depth limit (`u32::MAX` for a complete
    /// index), the node count, and per node `(k, parent, member_count,
    /// members…)` in node-id order. The derived query arrays are *not*
    /// stored; [`ConnectivityIndex::from_bytes`] rebuilds them, so the two
    /// sides can never disagree.
    ///
    /// This is the service-restart path: persisting the buffer next to the
    /// graph lets a restarted `kvcc-service` engine skip the hierarchy build
    /// entirely.
    pub fn to_bytes(&self) -> Vec<u8> {
        let member_words: usize = self.components.iter().map(|c| 1 + c.len()).sum();
        let mut out =
            Vec::with_capacity(INDEX_WIRE_HEADER + 4 * (2 * self.components.len() + member_words));
        out.extend_from_slice(&INDEX_WIRE_MAGIC);
        out.push(INDEX_WIRE_VERSION);
        out.extend_from_slice(&(self.num_vertices() as u32).to_le_bytes());
        out.extend_from_slice(&self.depth_limit.unwrap_or(NO_DEPTH_LIMIT).to_le_bytes());
        out.extend_from_slice(&(self.components.len() as u32).to_le_bytes());
        for id in 0..self.components.len() {
            out.extend_from_slice(&self.ks[id].to_le_bytes());
            out.extend_from_slice(&self.parents[id].to_le_bytes());
            let members = self.components[id].vertices();
            out.extend_from_slice(&(members.len() as u32).to_le_bytes());
            for &v in members {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Reads the declared vertex count from a serialised index header
    /// without parsing the body. [`ConnectivityIndex::from_bytes`] allocates
    /// per-vertex arrays sized by this value (a graph may legitimately have
    /// far more vertices than index nodes), so callers holding untrusted
    /// buffers should reject a mismatch against their expected graph
    /// **before** deserialising — the `kvcc-service` engine does exactly
    /// that. Returns `None` when the header is absent or not an index
    /// buffer.
    pub fn peek_num_vertices(bytes: &[u8]) -> Option<usize> {
        if bytes.len() < INDEX_WIRE_HEADER
            || bytes[..4] != INDEX_WIRE_MAGIC
            || bytes[4] != INDEX_WIRE_VERSION
        {
            return None;
        }
        Some(u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes")) as usize)
    }

    /// Deserialises a buffer produced by [`ConnectivityIndex::to_bytes`],
    /// validating every structural invariant of the forest (contiguous
    /// levels, parents one level up and earlier in the node order, sorted
    /// in-range members contained in their parent) so a corrupted or hostile
    /// buffer can never produce an index that later panics or answers
    /// incoherently. Node allocations are bounded by the buffer size; the
    /// per-vertex arrays are sized by the declared vertex count (see
    /// [`ConnectivityIndex::peek_num_vertices`]). The leaf pointers and
    /// per-vertex connectivity values are rebuilt from the validated forest,
    /// not read from the wire.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GraphError> {
        let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
        if bytes.len() < INDEX_WIRE_HEADER {
            return Err(malformed("buffer shorter than the index header"));
        }
        if bytes[..4] != INDEX_WIRE_MAGIC {
            return Err(malformed("bad magic (not a connectivity-index buffer)"));
        }
        if bytes[4] != INDEX_WIRE_VERSION {
            return Err(malformed("unsupported index format version"));
        }
        let read_u32 =
            |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let num_vertices = read_u32(5) as usize;
        let depth_limit = match read_u32(9) {
            NO_DEPTH_LIMIT => None,
            cap => Some(cap),
        };
        let num_nodes = read_u32(13) as usize;
        // Every node record occupies at least 16 bytes (k + parent + count +
        // one member), so a hostile header can never trigger node
        // allocations larger than the buffer it arrived in.
        if num_nodes > (bytes.len() - INDEX_WIRE_HEADER) / 16 {
            return Err(malformed("node count disagrees with the buffer size"));
        }

        let mut at = INDEX_WIRE_HEADER;
        let mut ks = Vec::with_capacity(num_nodes);
        let mut parents = Vec::with_capacity(num_nodes);
        let mut components: Vec<KVertexConnectedComponent> = Vec::with_capacity(num_nodes);
        let mut level_offsets = vec![0usize];
        for id in 0..num_nodes {
            if bytes.len() < at + 12 {
                return Err(malformed("node record truncated"));
            }
            let k = read_u32(at);
            let parent = read_u32(at + 4);
            let count = read_u32(at + 8) as usize;
            at += 12;
            if bytes.len() < at + 4 * count {
                return Err(malformed("member list truncated"));
            }
            if count == 0 {
                return Err(malformed("components cannot be empty"));
            }
            // Levels are stored contiguously and start at 1; a level can only
            // appear when the previous one did (construction stops at the
            // first empty level).
            let prev_k = ks.last().copied().unwrap_or(0);
            if id == 0 && k != 1 {
                return Err(malformed("first node must be at level 1"));
            }
            if id > 0 && k != prev_k && k != prev_k + 1 {
                return Err(malformed("levels must be contiguous and sorted"));
            }
            if id > 0 && k == prev_k + 1 {
                level_offsets.push(id);
            }
            if k == 1 {
                if parent != NO_PARENT {
                    return Err(malformed("level-1 nodes cannot have a parent"));
                }
            } else {
                if parent as usize >= id {
                    return Err(malformed("parents must precede their children"));
                }
                if ks[parent as usize] + 1 != k {
                    return Err(malformed("parent must sit exactly one level up"));
                }
            }
            let mut members = Vec::with_capacity(count);
            for i in 0..count {
                let v = read_u32(at + 4 * i);
                if v as usize >= num_vertices {
                    return Err(malformed("member vertex out of range"));
                }
                members.push(v);
            }
            at += 4 * count;
            if members.windows(2).any(|w| w[0] >= w[1]) {
                return Err(malformed("members must be strictly sorted"));
            }
            // Nesting (§2.2): a level-k component lies inside its level-(k−1)
            // parent. Without this check a hostile buffer could hand a vertex
            // a leaf whose ancestor chain does not contain it, making
            // `kvccs_containing` answer incoherently.
            if parent != NO_PARENT
                && !is_sorted_subset(&members, components[parent as usize].vertices())
            {
                return Err(malformed("child members must lie inside their parent"));
            }
            ks.push(k);
            parents.push(parent);
            components.push(KVertexConnectedComponent::new(members));
        }
        if at != bytes.len() {
            return Err(malformed("trailing bytes after the last node"));
        }
        if num_nodes > 0 {
            level_offsets.push(num_nodes);
        }
        if let Some(cap) = depth_limit {
            if ks.last().copied().unwrap_or(0) > cap {
                return Err(malformed("nodes exceed the declared depth limit"));
            }
        }
        Ok(Self::assemble(
            num_vertices,
            ks,
            parents,
            components,
            level_offsets,
            depth_limit,
        ))
    }

    /// The `max_k` cap the index was built with ([`None`]: complete up to the
    /// degeneracy).
    pub fn depth_limit(&self) -> Option<u32> {
        self.depth_limit
    }

    /// Whether level-`k` queries are answerable from this index: `true` for
    /// a complete index, otherwise only for `k` at or below the build cap.
    /// For an uncovered `k`, [`ConnectivityIndex::components_at`] and
    /// [`ConnectivityIndex::kvccs_containing`] would wrongly report "nothing
    /// there" — callers (e.g. the `kvcc-service` engine) must fall back to a
    /// direct enumeration instead.
    pub fn covers(&self, k: u32) -> bool {
        self.depth_limit.is_none_or(|cap| k <= cap)
    }

    /// Number of vertices of the indexed graph.
    pub fn num_vertices(&self) -> usize {
        self.leaves_of.len()
    }

    /// Total number of components across all levels of the forest.
    pub fn num_nodes(&self) -> usize {
        self.components.len()
    }

    /// The deepest connectivity level with at least one component (0 for an
    /// edgeless graph).
    pub fn max_k(&self) -> u32 {
        (self.level_offsets.len() - 1) as u32
    }

    /// All k-VCCs at level `k`, sorted by smallest member — identical to the
    /// output of [`crate::enumerate_kvccs`] for the same `k`. Empty when no
    /// component survives at that level.
    pub fn components_at(&self, k: u32) -> &[KVertexConnectedComponent] {
        if k == 0 || k > self.max_k() {
            return &[];
        }
        let k = k as usize;
        &self.components[self.level_offsets[k - 1]..self.level_offsets[k]]
    }

    /// The largest `k` such that `v` belongs to some k-VCC (its *vertex
    /// connectivity number*); 0 for isolated or out-of-range vertices.
    /// Saturates at the build cap on a depth-limited index.
    pub fn max_connectivity_of(&self, v: VertexId) -> u32 {
        self.max_k_of.get(v as usize).copied().unwrap_or(0)
    }

    /// The k-VCCs containing `seed` at level `k`: an ancestor walk from the
    /// seed's leaf components. Byte-identical to
    /// [`crate::query::kvccs_containing`] (and therefore to filtering the
    /// full enumeration), including its error contract.
    pub fn kvccs_containing(
        &self,
        seed: VertexId,
        k: u32,
    ) -> Result<Vec<KVertexConnectedComponent>, KvccError> {
        if k == 0 {
            return Err(KvccError::InvalidK);
        }
        if seed as usize >= self.num_vertices() {
            return Err(KvccError::SeedOutOfRange { seed });
        }
        let mut hit_ids: Vec<u32> = Vec::new();
        for &leaf in &self.leaves_of[seed as usize] {
            if let Some(id) = self.ancestor_at(leaf, k) {
                hit_ids.push(id);
            }
        }
        // Different leaves can meet in the same level-k ancestor.
        hit_ids.sort_unstable();
        hit_ids.dedup();
        let mut hits: Vec<KVertexConnectedComponent> = hit_ids
            .into_iter()
            .map(|id| self.components[id as usize].clone())
            .collect();
        hits.sort();
        Ok(hits)
    }

    /// The largest `k` such that `u` and `v` lie in a common k-VCC — the
    /// level of the lowest common ancestor of their leaves in the forest
    /// (0 when they share no component at all; `max_connectivity_of(u)` when
    /// `u == v`). Saturates at the build cap on a depth-limited index.
    /// Errors for out-of-range vertices.
    pub fn max_connectivity(&self, u: VertexId, v: VertexId) -> Result<u32, KvccError> {
        if u as usize >= self.num_vertices() {
            return Err(KvccError::SeedOutOfRange { seed: u });
        }
        if v as usize >= self.num_vertices() {
            return Err(KvccError::SeedOutOfRange { seed: v });
        }
        if u == v {
            return Ok(self.max_connectivity_of(u));
        }
        // Mark every ancestor of u's leaves, then walk v's ancestor chains
        // and report the deepest marked node. Chains are at most max_k long,
        // so this is O(leaves · depth) with a sorted-id merge at the end.
        let mut marked: Vec<u32> = Vec::new();
        for &leaf in &self.leaves_of[u as usize] {
            let mut node = leaf;
            loop {
                marked.push(node);
                match self.parents[node as usize] {
                    NO_PARENT => break,
                    p => node = p,
                }
            }
        }
        marked.sort_unstable();
        marked.dedup();
        let mut best = 0u32;
        for &leaf in &self.leaves_of[v as usize] {
            let mut node = leaf;
            loop {
                if marked.binary_search(&node).is_ok() {
                    best = best.max(self.ks[node as usize]);
                    break; // ancestors of a marked node are marked and shallower
                }
                match self.parents[node as usize] {
                    NO_PARENT => break,
                    p => node = p,
                }
            }
        }
        Ok(best)
    }

    /// Approximate heap bytes held by the index (Fig. 12-style accounting).
    pub fn memory_bytes(&self) -> usize {
        self.ks.capacity() * std::mem::size_of::<u32>()
            + self.parents.capacity() * std::mem::size_of::<u32>()
            + self
                .components
                .iter()
                .map(|c| std::mem::size_of_val(c.vertices()))
                .sum::<usize>()
            + self.level_offsets.capacity() * std::mem::size_of::<usize>()
            + self
                .leaves_of
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
            + self.max_k_of.capacity() * std::mem::size_of::<u32>()
    }

    /// Walks from `node` towards the root until reaching level `k`; `None`
    /// when `node` is already shallower than `k`.
    fn ancestor_at(&self, node: u32, k: u32) -> Option<u32> {
        let mut current = node;
        loop {
            let level = self.ks[current as usize];
            if level == k {
                return Some(current);
            }
            if level < k {
                return None;
            }
            match self.parents[current as usize] {
                NO_PARENT => return None,
                p => current = p,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_kvccs;
    use crate::query;
    use kvcc_graph::UndirectedGraph;

    /// Two triangles sharing vertex 2 plus an unrelated K4 on {5,6,7,8}.
    fn mixed_graph() -> UndirectedGraph {
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(9, edges).unwrap()
    }

    #[test]
    fn index_matches_direct_enumeration_per_level() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(index.max_k(), 3);
        for k in 1..=4u32 {
            let direct = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(index.components_at(k), direct.components(), "k = {k}");
        }
        assert!(index.components_at(0).is_empty());
        assert!(index.components_at(99).is_empty());
    }

    #[test]
    fn seed_queries_match_the_direct_query_path() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        for k in 1..=4u32 {
            for seed in 0..g.num_vertices() as VertexId {
                let direct = query::kvccs_containing(&g, seed, k, &KvccOptions::default()).unwrap();
                let indexed = index.kvccs_containing(seed, k).unwrap();
                assert_eq!(indexed, direct, "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn max_connectivity_queries() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        // Inside one triangle: 2-connected; across the shared vertex: the
        // level-2 components differ but level 1 still joins them.
        assert_eq!(index.max_connectivity(0, 1).unwrap(), 2);
        assert_eq!(index.max_connectivity(0, 3).unwrap(), 1);
        // K4 members are 3-connected; across components: nothing shared.
        assert_eq!(index.max_connectivity(5, 8).unwrap(), 3);
        assert_eq!(index.max_connectivity(0, 5).unwrap(), 0);
        // Self-queries report the vertex's own maximum connectivity.
        assert_eq!(index.max_connectivity(2, 2).unwrap(), 2);
        assert_eq!(index.max_connectivity_of(6), 3);
        assert_eq!(index.max_connectivity_of(999), 0);
        assert!(matches!(
            index.max_connectivity(0, 99),
            Err(KvccError::SeedOutOfRange { seed: 99 })
        ));
    }

    #[test]
    fn error_contract_matches_the_direct_query() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert!(matches!(
            index.kvccs_containing(0, 0),
            Err(KvccError::InvalidK)
        ));
        assert!(matches!(
            index.kvccs_containing(99, 2),
            Err(KvccError::SeedOutOfRange { seed: 99 })
        ));
    }

    #[test]
    fn depth_capped_index_reports_its_coverage() {
        let g = mixed_graph();
        let full = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(full.depth_limit(), None);
        assert!(full.covers(99));

        let capped = ConnectivityIndex::build(&g, Some(1), &KvccOptions::default()).unwrap();
        assert_eq!(capped.depth_limit(), Some(1));
        assert!(capped.covers(1));
        assert!(!capped.covers(2), "level 2 was never enumerated");
        // Saturation: the K4 members' connectivity reads as the cap.
        assert_eq!(capped.max_connectivity_of(6), 1);
    }

    #[test]
    fn byte_roundtrip_preserves_every_query_surface() {
        let g = mixed_graph();
        for cap in [None, Some(1), Some(2)] {
            let index = ConnectivityIndex::build(&g, cap, &KvccOptions::default()).unwrap();
            let back = ConnectivityIndex::from_bytes(&index.to_bytes()).unwrap();
            assert_eq!(back.depth_limit(), index.depth_limit());
            assert_eq!(back.max_k(), index.max_k());
            assert_eq!(back.num_vertices(), index.num_vertices());
            assert_eq!(back.num_nodes(), index.num_nodes());
            for k in 0..=index.max_k() + 1 {
                assert_eq!(back.components_at(k), index.components_at(k));
            }
            for u in 0..g.num_vertices() as VertexId {
                assert_eq!(back.max_connectivity_of(u), index.max_connectivity_of(u));
                for k in 1..=3u32 {
                    assert_eq!(
                        back.kvccs_containing(u, k).unwrap(),
                        index.kvccs_containing(u, k).unwrap()
                    );
                }
                for v in 0..g.num_vertices() as VertexId {
                    assert_eq!(
                        back.max_connectivity(u, v).unwrap(),
                        index.max_connectivity(u, v).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn empty_index_roundtrips() {
        let index =
            ConnectivityIndex::build(&UndirectedGraph::new(3), None, &KvccOptions::default())
                .unwrap();
        let back = ConnectivityIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(back.max_k(), 0);
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_vertices(), 3);
    }

    #[test]
    fn from_bytes_rejects_corrupted_buffers() {
        use kvcc_graph::GraphError;
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        let good = index.to_bytes();
        let assert_malformed = |bytes: &[u8]| {
            assert!(matches!(
                ConnectivityIndex::from_bytes(bytes),
                Err(GraphError::MalformedBytes { .. })
            ));
        };
        assert_malformed(&good[..7]); // truncated header
        assert_malformed(&good[..good.len() - 3]); // truncated member list

        let mut bad_magic = good.clone();
        bad_magic[0] = b'Z';
        assert_malformed(&bad_magic);

        let mut bad_version = good.clone();
        bad_version[4] = 42;
        assert_malformed(&bad_version);

        // First node claiming level 2 breaks contiguity.
        let mut bad_level = good.clone();
        bad_level[super::INDEX_WIRE_HEADER..super::INDEX_WIRE_HEADER + 4]
            .copy_from_slice(&2u32.to_le_bytes());
        assert_malformed(&bad_level);

        // Member id beyond num_vertices.
        let mut bad_member = good.clone();
        let len = bad_member.len();
        bad_member[len - 4..].copy_from_slice(&9999u32.to_le_bytes());
        assert_malformed(&bad_member);

        // Trailing garbage.
        let mut trailing = good.clone();
        trailing.extend_from_slice(&[0, 0, 0, 0]);
        assert_malformed(&trailing);
    }

    #[test]
    fn empty_graph_has_an_empty_index() {
        let g = UndirectedGraph::new(4);
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(index.max_k(), 0);
        assert_eq!(index.num_nodes(), 0);
        assert_eq!(index.num_vertices(), 4);
        assert!(index.kvccs_containing(1, 3).unwrap().is_empty());
        assert_eq!(index.max_connectivity(0, 1).unwrap(), 0);
        assert!(index.memory_bytes() > 0);
    }
}
