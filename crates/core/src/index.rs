//! The [`ConnectivityIndex`]: the full k-VCC hierarchy flattened into a
//! query-ready forest.
//!
//! Building the hierarchy costs one nested enumeration (§2.2 nesting); every
//! question the paper's case study asks afterwards — "all 4-VCCs containing
//! author *Jiawei Han*" (§6.4), "how connected are these two authors", "what
//! are the k-VCCs at level k" — is then answered **without touching flow
//! code**:
//!
//! * [`kvccs_containing`](ConnectivityIndex::kvccs_containing) — an ancestor
//!   walk from the seed's leaf components up to level `k`;
//! * [`max_connectivity`](ConnectivityIndex::max_connectivity) — the level of
//!   the lowest common ancestor of two vertices' leaves;
//! * [`components_at`](ConnectivityIndex::components_at) — a contiguous slice
//!   of the flat forest;
//! * [`max_connectivity_of`](ConnectivityIndex::max_connectivity_of) — a
//!   per-vertex array lookup.
//!
//! Answers are byte-identical to running [`crate::enumerate_kvccs`] /
//! [`crate::query::kvccs_containing`] directly (asserted by the
//! `index_parity` integration suite); the index is the read path of the
//! `kvcc-service` serving layer.

use kvcc_graph::{CsrGraph, EdgeUpdate, GraphError, GraphView, VertexId};

use crate::error::KvccError;
use crate::hierarchy::{build_hierarchy, KvccHierarchy};
use crate::options::KvccOptions;
use crate::result::KVertexConnectedComponent;

/// Sentinel parent id for root nodes (level-1 components).
const NO_PARENT: u32 = u32::MAX;

/// Whether sorted list `child` is contained in sorted list `parent`
/// (linear two-pointer merge).
fn is_sorted_subset(child: &[VertexId], parent: &[VertexId]) -> bool {
    let mut j = 0;
    for &v in child {
        while j < parent.len() && parent[j] < v {
            j += 1;
        }
        if j >= parent.len() || parent[j] != v {
            return false;
        }
        j += 1;
    }
    true
}

/// Counts, per component, the graph edges with both endpoints inside it
/// (membership-marking sweep; `O(Σ_C Σ_{v∈C} deg(v))` total).
fn count_internal_edges<G: GraphView>(
    graph: &G,
    components: &[KVertexConnectedComponent],
) -> Vec<u64> {
    let mut inside = kvcc_graph::BitSet::new(graph.num_vertices());
    components
        .iter()
        .map(|component| {
            let members = component.vertices();
            for &v in members {
                inside.insert(v as usize);
            }
            let mut directed = 0u64;
            for &v in members {
                directed += graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| inside.contains(w as usize))
                    .count() as u64;
            }
            for &v in members {
                inside.remove(v as usize);
            }
            directed / 2
        })
        .collect()
}

/// Descending comparison of two ranking keys, each given as the node's
/// `(k, size, internal_edges)` triple. Equal keys return `Equal` — callers
/// supply their own total tie-break. Density compares **exactly** via
/// cross-multiplication (`m_a / p_a > m_b / p_b ⟺ m_a · p_b > m_b · p_a`),
/// so platform float behaviour can never reorder a page boundary. This is
/// the single ranking definition: the index's precomputed orders and the
/// service engine's external-space page orders both call it.
pub fn rank_key_cmp(
    rank_by: RankBy,
    a: (u32, usize, u64),
    b: (u32, usize, u64),
) -> std::cmp::Ordering {
    let (k_a, size_a, edges_a) = a;
    let (k_b, size_b, edges_b) = b;
    match rank_by {
        RankBy::K => k_b.cmp(&k_a),
        RankBy::Size => size_b.cmp(&size_a),
        RankBy::Density => {
            let possible = |size: usize| (size as u128) * (size as u128).saturating_sub(1) / 2;
            let lhs = edges_a as u128 * possible(size_b);
            let rhs = edges_b as u128 * possible(size_a);
            rhs.cmp(&lhs)
        }
    }
}

/// [`rank_key_cmp`] over the index's flat metadata arrays (the caller
/// breaks ties by node id).
fn rank_nodes_cmp(
    rank_by: RankBy,
    ks: &[u32],
    components: &[KVertexConnectedComponent],
    internal_edges: &[u64],
    a: u32,
    b: u32,
) -> std::cmp::Ordering {
    let (a, b) = (a as usize, b as usize);
    rank_key_cmp(
        rank_by,
        (ks[a], components[a].len(), internal_edges[a]),
        (ks[b], components[b].len(), internal_edges[b]),
    )
}

/// Magic bytes opening every serialised index buffer.
const INDEX_WIRE_MAGIC: [u8; 4] = *b"KIDX";
/// Version byte of the index wire format; bump on incompatible changes.
/// Version 2 switched the node records to the shared varint/delta codec
/// ([`kvcc_graph::codec`]) and added per-node internal edge counts. Version
/// 3 added the mutation [`epoch`](ConnectivityIndex::epoch) varint;
/// version-2 buffers are still accepted and restore with epoch 0 (an index
/// persisted before the mutable-graph subsystem has, by definition, seen no
/// updates).
const INDEX_WIRE_VERSION: u8 = 3;
/// The previous wire version, accepted on read with an implied epoch of 0.
const INDEX_WIRE_VERSION_V2: u8 = 2;
/// Fixed part of the header: magic + version + `num_vertices` (kept
/// fixed-width so [`ConnectivityIndex::peek_num_vertices`] works without
/// varint parsing; the depth limit and node count that follow are varints).
const INDEX_WIRE_HEADER: usize = 4 + 1 + 4;

/// Ranking keys accepted by [`ConnectivityIndex::ranked_components`] and the
/// service protocol's `TopKComponents` query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RankBy {
    /// Deepest connectivity level first.
    K,
    /// Largest member count first.
    Size,
    /// Densest first: internal edges over `|C|·(|C|−1)/2`, compared exactly
    /// (cross-multiplied), so platform float behaviour can never reorder a
    /// page boundary.
    Density,
}

impl RankBy {
    /// All ranking keys, in wire-code order.
    pub const ALL: [RankBy; 3] = [RankBy::K, RankBy::Size, RankBy::Density];

    /// Stable wire code of the key.
    pub const fn code(self) -> u8 {
        match self {
            RankBy::K => 0,
            RankBy::Size => 1,
            RankBy::Density => 2,
        }
    }

    /// Decodes a wire code produced by [`RankBy::code`].
    pub const fn from_code(code: u8) -> Option<RankBy> {
        match code {
            0 => Some(RankBy::K),
            1 => Some(RankBy::Size),
            2 => Some(RankBy::Density),
            _ => None,
        }
    }

    const fn order_slot(self) -> usize {
        self.code() as usize
    }
}

/// One entry of a ranked component listing: the forest node plus the
/// precomputed metadata the ranking sorted on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankedComponent<'a> {
    /// Forest node id (position in node order; stable for a built index).
    pub node_id: u32,
    /// Connectivity level of the component.
    pub k: u32,
    /// Number of graph edges with both endpoints inside the component.
    pub internal_edges: u64,
    /// The component members.
    pub component: &'a KVertexConnectedComponent,
}

impl RankedComponent<'_> {
    /// Number of members.
    pub fn size(&self) -> u32 {
        self.component.len() as u32
    }

    /// Internal edges over possible edges (`0.0` below two members).
    pub fn density(&self) -> f64 {
        density_of(self.internal_edges, self.component.len())
    }
}

/// Density as a float for reporting (internal edges over `|C|·(|C|−1)/2`,
/// `0.0` below two members); ranking itself compares exactly. Shared with
/// the service protocol so the wire-visible density can never diverge from
/// the index-side one.
pub fn density_of(internal_edges: u64, size: usize) -> f64 {
    if size < 2 {
        return 0.0;
    }
    let possible = (size as u64 * (size as u64 - 1)) / 2;
    internal_edges as f64 / possible as f64
}

/// A flattened k-VCC hierarchy supporting O(depth) containment queries.
///
/// Nodes are stored level-contiguously (all level-1 components, then all
/// level-2 components, …), each with the id of the unique level-(k−1)
/// component containing it. Per vertex the index keeps the *leaf-most* nodes
/// (components not further refined at the next level) plus the vertex's
/// maximum connectivity, so every query is pointer chasing over flat arrays.
#[derive(Clone, Debug)]
pub struct ConnectivityIndex {
    /// Per node: the connectivity level `k`.
    ks: Vec<u32>,
    /// Per node: parent node id, or [`NO_PARENT`] for level-1 roots.
    parents: Vec<u32>,
    /// Per node: the component members (sorted; same ordering as the
    /// enumeration output).
    components: Vec<KVertexConnectedComponent>,
    /// `level_offsets[k - 1]..level_offsets[k]` are the node ids of level `k`
    /// (length `max_k + 1`).
    level_offsets: Vec<usize>,
    /// Per vertex: ids of the deepest nodes containing it (a vertex can have
    /// several because k-VCCs overlap in up to `k − 1` vertices).
    leaves_of: Vec<Vec<u32>>,
    /// Per vertex: the largest `k` with a k-VCC containing the vertex.
    max_k_of: Vec<u32>,
    /// Per node: number of graph edges with both endpoints inside the
    /// component (computed against the indexed graph at build time and
    /// persisted on the wire, so ranking needs no graph access).
    internal_edges: Vec<u64>,
    /// Precomputed ranking permutations, one per [`RankBy`] key (indexed by
    /// [`RankBy::order_slot`]): node ids sorted by key descending, ties by
    /// node id ascending. Makes every top-k / pagination query a slice read.
    rank_orders: [Vec<u32>; 3],
    /// The `max_k` cap the index was built with, if any. Levels beyond the
    /// cap were never enumerated, so queries there are not answerable from
    /// the index (see [`ConnectivityIndex::covers`]).
    depth_limit: Option<u32>,
    /// Mutation epoch: 0 for a freshly built index, incremented by every
    /// [`ConnectivityIndex::apply_updates`] batch (whether repaired
    /// incrementally or rebuilt). Persisted on the wire so cursors and
    /// caches keyed on it survive a service restart.
    epoch: u64,
}

/// Outcome of one [`ConnectivityIndex::apply_updates`] batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// The index epoch after the batch (`epoch_before + 1`).
    pub epoch: u64,
    /// Forest nodes that were (re-)enumerated: the repaired subtree's node
    /// count, or the whole forest when the batch fell back to a full
    /// rebuild.
    pub repaired_nodes: u32,
    /// Whether the blast radius exceeded the threshold and the index was
    /// rebuilt from scratch instead of spliced.
    pub rebuilt: bool,
    /// Size of the affected vertex set (updated endpoints plus every member
    /// of a forest root containing one).
    pub affected_vertices: u32,
}

impl ConnectivityIndex {
    /// Builds the index for `graph` by constructing the nested hierarchy once
    /// (`max_k = None` bounds it by the degeneracy) and flattening it.
    ///
    /// With an explicit `max_k` the hierarchy is **truncated**: the index can
    /// only answer queries for `k <= max_k` (checked via
    /// [`ConnectivityIndex::covers`]), and the per-vertex / pairwise
    /// connectivity values saturate at the cap.
    pub fn build<G: GraphView>(
        graph: &G,
        max_k: Option<u32>,
        options: &KvccOptions,
    ) -> Result<Self, KvccError> {
        let hierarchy = build_hierarchy(graph, max_k, options)?;
        let mut index = Self::from_hierarchy(graph, &hierarchy);
        index.depth_limit = max_k;
        Ok(index)
    }

    /// Flattens an already-built [`KvccHierarchy`] into index form. The graph
    /// the hierarchy was built from supplies the per-component internal edge
    /// counts backing [`ConnectivityIndex::ranked_components`].
    pub fn from_hierarchy<G: GraphView>(graph: &G, hierarchy: &KvccHierarchy) -> Self {
        let num_vertices = hierarchy.num_vertices();
        let mut ks = Vec::new();
        let mut parents = Vec::new();
        let mut components = Vec::new();
        let mut level_offsets = vec![0usize];

        // Assign node ids level by level; hierarchy levels are contiguous
        // (construction stops at the first empty level), so level k occupies
        // level_offsets[k - 1]..level_offsets[k].
        for (li, level) in hierarchy.levels().iter().enumerate() {
            debug_assert_eq!(level.k as usize, li + 1, "levels must be contiguous");
            let prev_start = if li == 0 { 0 } else { level_offsets[li - 1] };
            for (comp, parent) in level.components.iter().zip(&level.parents) {
                ks.push(level.k);
                parents.push(match parent {
                    None => NO_PARENT,
                    Some(idx) => (prev_start + idx) as u32,
                });
                components.push(comp.clone());
            }
            level_offsets.push(components.len());
        }

        let internal_edges = count_internal_edges(graph, &components);
        Self::assemble(
            num_vertices,
            ks,
            parents,
            components,
            level_offsets,
            internal_edges,
            None,
        )
    }

    /// Builds the derived query arrays (leaf pointers, per-vertex maximum
    /// connectivity) from the forest core — shared by
    /// [`ConnectivityIndex::from_hierarchy`] and
    /// [`ConnectivityIndex::from_bytes`], so a deserialised index is
    /// guaranteed to answer queries exactly like the freshly built one it was
    /// saved from.
    fn assemble(
        num_vertices: usize,
        ks: Vec<u32>,
        parents: Vec<u32>,
        components: Vec<KVertexConnectedComponent>,
        level_offsets: Vec<usize>,
        internal_edges: Vec<u64>,
        depth_limit: Option<u32>,
    ) -> Self {
        // Leaf-most memberships: a node keeps vertex v iff no child keeps v.
        // Sweep the nodes once, marking each node's members as "covered" in
        // its parent; everything left uncovered is a leaf pointer.
        let mut covered: Vec<Vec<VertexId>> = vec![Vec::new(); components.len()];
        for id in (0..components.len()).rev() {
            if parents[id] != NO_PARENT {
                let members: Vec<VertexId> = components[id].vertices().to_vec();
                covered[parents[id] as usize].extend(members);
            }
        }
        let mut leaves_of: Vec<Vec<u32>> = vec![Vec::new(); num_vertices];
        let mut max_k_of = vec![0u32; num_vertices];
        for (id, comp) in components.iter().enumerate() {
            let mut cov = std::mem::take(&mut covered[id]);
            cov.sort_unstable();
            for &v in comp.vertices() {
                max_k_of[v as usize] = max_k_of[v as usize].max(ks[id]);
                if cov.binary_search(&v).is_err() {
                    leaves_of[v as usize].push(id as u32);
                }
            }
        }

        // Ranking permutations: one sort per key over the flat metadata
        // arrays (no component walking). Ties break by node id ascending, so
        // every ordering is total and pagination boundaries are stable.
        debug_assert_eq!(internal_edges.len(), components.len());
        let rank_orders = std::array::from_fn(|slot| {
            let rank_by = RankBy::ALL[slot];
            let mut order: Vec<u32> = (0..components.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                rank_nodes_cmp(rank_by, &ks, &components, &internal_edges, a, b).then(a.cmp(&b))
            });
            order
        });

        ConnectivityIndex {
            ks,
            parents,
            components,
            level_offsets,
            leaves_of,
            max_k_of,
            internal_edges,
            rank_orders,
            depth_limit,
            epoch: 0,
        }
    }

    /// Serialises the index into a self-describing, endian-stable byte
    /// buffer (no third-party serializer; built on the shared
    /// [`kvcc_graph::codec`] varint primitives like the CSR and work-item
    /// wire formats).
    ///
    /// Layout (version 3): magic `b"KIDX"`, version `u8`, `num_vertices` as
    /// little-endian `u32` (fixed-width so
    /// [`ConnectivityIndex::peek_num_vertices`] needs no varint parsing),
    /// then varints — the depth limit (`0` for a complete index, `cap + 1`
    /// otherwise), the mutation [`epoch`](ConnectivityIndex::epoch), the
    /// node count, and per node `(k, parent + 1 — 0 for
    /// roots, member_count, members as a delta row, internal_edges)` in
    /// node-id order. Member lists are strictly sorted, so the delta + varint
    /// row encoding shrinks them by up to 4× versus the fixed-width
    /// version-1 layout. The derived query arrays are *not* stored;
    /// [`ConnectivityIndex::from_bytes`] rebuilds them, so the two sides can
    /// never disagree.
    ///
    /// This is the service-restart path: persisting the buffer next to the
    /// graph lets a restarted `kvcc-service` engine skip the hierarchy build
    /// entirely.
    pub fn to_bytes(&self) -> Vec<u8> {
        use kvcc_graph::codec::{encode_row, varint};
        let member_bytes: usize = self.components.iter().map(|c| 8 + c.len()).sum();
        let mut out = Vec::with_capacity(INDEX_WIRE_HEADER + 10 + member_bytes);
        out.extend_from_slice(&INDEX_WIRE_MAGIC);
        out.push(INDEX_WIRE_VERSION);
        out.extend_from_slice(&(self.num_vertices() as u32).to_le_bytes());
        varint::encode_u32(
            self.depth_limit.map_or(0, |cap| cap.saturating_add(1)),
            &mut out,
        );
        varint::encode_u64(self.epoch, &mut out);
        varint::encode_u32(self.components.len() as u32, &mut out);
        for id in 0..self.components.len() {
            varint::encode_u32(self.ks[id], &mut out);
            let parent = self.parents[id];
            varint::encode_u32(if parent == NO_PARENT { 0 } else { parent + 1 }, &mut out);
            let members = self.components[id].vertices();
            varint::encode_u32(members.len() as u32, &mut out);
            encode_row(members, &mut out);
            varint::encode_u64(self.internal_edges[id], &mut out);
        }
        out
    }

    /// Reads the declared vertex count from a serialised index header
    /// without parsing the body. [`ConnectivityIndex::from_bytes`] allocates
    /// per-vertex arrays sized by this value (a graph may legitimately have
    /// far more vertices than index nodes), so callers holding untrusted
    /// buffers should reject a mismatch against their expected graph
    /// **before** deserialising — the `kvcc-service` engine does exactly
    /// that. Returns `None` when the header is absent or not an index
    /// buffer.
    pub fn peek_num_vertices(bytes: &[u8]) -> Option<usize> {
        if bytes.len() < INDEX_WIRE_HEADER
            || bytes[..4] != INDEX_WIRE_MAGIC
            || !matches!(bytes[4], INDEX_WIRE_VERSION | INDEX_WIRE_VERSION_V2)
        {
            return None;
        }
        Some(u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes")) as usize)
    }

    /// All nodes in ranking order for `rank_by`, truncated to the best `k`
    /// (pass [`ConnectivityIndex::num_nodes`] for the full ranking). The
    /// order is a precomputed permutation over the flat metadata arrays —
    /// key descending, ties by node id ascending — so this is a slice read
    /// plus `k` metadata lookups, never a forest re-walk.
    pub fn ranked_components(&self, rank_by: RankBy, k: usize) -> Vec<RankedComponent<'_>> {
        self.ranked_page(rank_by, 0, k)
    }

    /// One page of the ranking: entries `offset..offset + page_size` of the
    /// [`ConnectivityIndex::ranked_components`] order. Out-of-range pages
    /// are empty, a short final page is returned as-is; together with the
    /// deterministic total order this is what makes cursor pagination
    /// return every component exactly once.
    pub fn ranked_page(
        &self,
        rank_by: RankBy,
        offset: usize,
        page_size: usize,
    ) -> Vec<RankedComponent<'_>> {
        let order = &self.rank_orders[rank_by.order_slot()];
        let start = offset.min(order.len());
        let end = start.saturating_add(page_size).min(order.len());
        order[start..end]
            .iter()
            .map(|&node_id| RankedComponent {
                node_id,
                k: self.ks[node_id as usize],
                internal_edges: self.internal_edges[node_id as usize],
                component: &self.components[node_id as usize],
            })
            .collect()
    }

    /// Number of graph edges inside node `id`'s component (ranking
    /// metadata; `None` for an out-of-range node id).
    pub fn internal_edges_of(&self, id: u32) -> Option<u64> {
        self.internal_edges.get(id as usize).copied()
    }

    /// Connectivity level of forest node `id` (`None` for an out-of-range
    /// node id).
    pub fn node_k(&self, id: u32) -> Option<u32> {
        self.ks.get(id as usize).copied()
    }

    /// The component of forest node `id` (`None` for an out-of-range node
    /// id).
    pub fn node_component(&self, id: u32) -> Option<&KVertexConnectedComponent> {
        self.components.get(id as usize)
    }

    /// Deserialises a buffer produced by [`ConnectivityIndex::to_bytes`],
    /// validating every structural invariant of the forest (contiguous
    /// levels, parents one level up and earlier in the node order, sorted
    /// in-range members contained in their parent) so a corrupted or hostile
    /// buffer can never produce an index that later panics or answers
    /// incoherently. Node allocations are bounded by the buffer size; the
    /// per-vertex arrays are sized by the declared vertex count (see
    /// [`ConnectivityIndex::peek_num_vertices`]). The leaf pointers and
    /// per-vertex connectivity values are rebuilt from the validated forest,
    /// not read from the wire.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GraphError> {
        use kvcc_graph::codec::Reader;
        let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
        if bytes.len() < INDEX_WIRE_HEADER {
            return Err(malformed("buffer shorter than the index header"));
        }
        if bytes[..4] != INDEX_WIRE_MAGIC {
            return Err(malformed("bad magic (not a connectivity-index buffer)"));
        }
        let version = bytes[4];
        if !matches!(version, INDEX_WIRE_VERSION | INDEX_WIRE_VERSION_V2) {
            // Version 2 is accepted with an implied epoch of 0 (see
            // [`INDEX_WIRE_VERSION`]). Deliberately no version-1 fallback:
            // v1 buffers carry no internal edge counts, and they cannot be
            // reconstructed here without the graph — a zero-filled restore
            // would fail the service's install validation anyway. Rebuild
            // and re-persist.
            return Err(malformed(
                "unsupported index format version (v1 buffers predate the \
                 ranking metadata; rebuild the index and persist it again)",
            ));
        }
        let mut r = Reader::new(&bytes[5..]);
        let num_vertices =
            r.u32_le()
                .ok_or_else(|| malformed("index header truncated"))? as usize;
        let depth_limit = match r
            .varint_u32()
            .ok_or_else(|| malformed("depth limit truncated"))?
        {
            0 => None,
            cap_plus_one => Some(cap_plus_one - 1),
        };
        let epoch = if version == INDEX_WIRE_VERSION {
            r.varint_u64().ok_or_else(|| malformed("epoch truncated"))?
        } else {
            0
        };
        let num_nodes = r
            .varint_u32()
            .ok_or_else(|| malformed("node count truncated"))? as usize;
        // Every node record occupies at least 5 bytes (k + parent + count +
        // one member + edge count), so a hostile header can never trigger
        // node allocations larger than the buffer it arrived in.
        if num_nodes > r.remaining() / 5 {
            return Err(malformed("node count disagrees with the buffer size"));
        }

        let mut ks = Vec::with_capacity(num_nodes);
        let mut parents = Vec::with_capacity(num_nodes);
        let mut components: Vec<KVertexConnectedComponent> = Vec::with_capacity(num_nodes);
        let mut internal_edges = Vec::with_capacity(num_nodes);
        let mut level_offsets = vec![0usize];
        for id in 0..num_nodes {
            let k = r
                .varint_u32()
                .ok_or_else(|| malformed("node record truncated"))?;
            let parent_plus_one = r
                .varint_u32()
                .ok_or_else(|| malformed("node record truncated"))?;
            let parent = match parent_plus_one {
                0 => NO_PARENT,
                p => p - 1,
            };
            let count =
                r.varint_u32()
                    .ok_or_else(|| malformed("node record truncated"))? as usize;
            if count == 0 {
                return Err(malformed("components cannot be empty"));
            }
            // Levels are stored contiguously and start at 1; a level can only
            // appear when the previous one did (construction stops at the
            // first empty level).
            let prev_k = ks.last().copied().unwrap_or(0);
            if id == 0 && k != 1 {
                return Err(malformed("first node must be at level 1"));
            }
            if id > 0 && k != prev_k && k != prev_k + 1 {
                return Err(malformed("levels must be contiguous and sorted"));
            }
            if id > 0 && k == prev_k + 1 {
                level_offsets.push(id);
            }
            if k == 1 {
                if parent != NO_PARENT {
                    return Err(malformed("level-1 nodes cannot have a parent"));
                }
            } else {
                if parent as usize >= id {
                    return Err(malformed("parents must precede their children"));
                }
                if ks[parent as usize] + 1 != k {
                    return Err(malformed("parent must sit exactly one level up"));
                }
            }
            // Delta rows are strictly increasing by construction, so the
            // sortedness invariant needs no separate check.
            let members = r
                .row(count)
                .ok_or_else(|| malformed("member list truncated"))?;
            if members.last().is_some_and(|&v| v as usize >= num_vertices) {
                return Err(malformed("member vertex out of range"));
            }
            // Nesting (§2.2): a level-k component lies inside its level-(k−1)
            // parent. Without this check a hostile buffer could hand a vertex
            // a leaf whose ancestor chain does not contain it, making
            // `kvccs_containing` answer incoherently.
            if parent != NO_PARENT
                && !is_sorted_subset(&members, components[parent as usize].vertices())
            {
                return Err(malformed("child members must lie inside their parent"));
            }
            let edges = r
                .varint_u64()
                .ok_or_else(|| malformed("internal edge count truncated"))?;
            let possible = (count as u64).saturating_mul(count as u64 - 1) / 2;
            if edges > possible {
                return Err(malformed("internal edge count exceeds the possible edges"));
            }
            ks.push(k);
            parents.push(parent);
            components.push(KVertexConnectedComponent::new(members));
            internal_edges.push(edges);
        }
        r.finish()
            .ok_or_else(|| malformed("trailing bytes after the last node"))?;
        if num_nodes > 0 {
            level_offsets.push(num_nodes);
        }
        if let Some(cap) = depth_limit {
            if ks.last().copied().unwrap_or(0) > cap {
                return Err(malformed("nodes exceed the declared depth limit"));
            }
        }
        let mut index = Self::assemble(
            num_vertices,
            ks,
            parents,
            components,
            level_offsets,
            internal_edges,
            depth_limit,
        );
        index.epoch = epoch;
        Ok(index)
    }

    /// The `max_k` cap the index was built with ([`None`]: complete up to the
    /// degeneracy).
    pub fn depth_limit(&self) -> Option<u32> {
        self.depth_limit
    }

    /// The mutation epoch: 0 for a freshly built index, incremented by every
    /// [`ConnectivityIndex::apply_updates`] batch. Page cursors and result
    /// caches key on it to detect that the forest changed underneath them.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overrides the mutation epoch. Used by the service engine to stamp a
    /// lazily built index with its graph slot's epoch, and by parity tests
    /// to align a fresh rebuild with an incrementally maintained index
    /// before comparing bytes.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Repairs the index after a batch of edge updates, without re-running
    /// the full nested enumeration.
    ///
    /// `graph` must be the **post-update** graph (e.g. a
    /// [`kvcc_graph::DeltaGraph`] the same updates were applied to) over the
    /// same vertex set the index was built on.
    ///
    /// The blast radius is bounded by the forest itself: each updated
    /// endpoint's leaf pointers are walked to their level-1 roots, and the
    /// affected region is the union of those roots' members plus the
    /// endpoints. No edge of either the old or the new graph crosses the
    /// region boundary — level-1 components are connected components, every
    /// old edge stays inside its root, and every updated edge has both
    /// endpoints in the region — so re-running the hierarchy construction on
    /// the region's induced subgraph and splicing the result over the
    /// dropped subtrees reproduces a full rebuild **byte-identically** (the
    /// per-level merge uses the same component ordering the enumeration
    /// sorts by). When the region exceeds half the graph the method falls
    /// back to a full rebuild instead.
    ///
    /// Either way the epoch advances by exactly 1. The repair honours
    /// [`KvccOptions::budget`]: an expired deadline aborts with
    /// [`KvccError::Interrupted`] and leaves the index (and its epoch)
    /// untouched.
    pub fn apply_updates<G: GraphView>(
        &mut self,
        graph: &G,
        updates: &[EdgeUpdate],
        options: &KvccOptions,
    ) -> Result<UpdateReport, KvccError> {
        assert_eq!(
            graph.num_vertices(),
            self.num_vertices(),
            "apply_updates requires the post-update graph over the indexed vertex set"
        );
        options.budget.check()?;

        // Updated endpoints, deduplicated and validated.
        let mut endpoints: Vec<VertexId> = updates.iter().flat_map(|u| [u.u, u.v]).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        if let Some(&seed) = endpoints
            .iter()
            .find(|&&v| v as usize >= self.num_vertices())
        {
            return Err(KvccError::SeedOutOfRange { seed });
        }
        if endpoints.is_empty() {
            // An empty batch is still a batch: the epoch advances so the
            // service's at-most-once semantics stay simple.
            self.epoch += 1;
            return Ok(UpdateReport {
                epoch: self.epoch,
                repaired_nodes: 0,
                rebuilt: false,
                affected_vertices: 0,
            });
        }

        // Affected level-1 roots: walk each endpoint's leaves to the top of
        // the forest.
        let mut roots: Vec<u32> = Vec::new();
        for &v in &endpoints {
            for &leaf in &self.leaves_of[v as usize] {
                let mut node = leaf;
                while self.parents[node as usize] != NO_PARENT {
                    node = self.parents[node as usize];
                }
                roots.push(node);
            }
        }
        roots.sort_unstable();
        roots.dedup();

        // The affected vertex set: members of every affected root plus the
        // endpoints themselves (which may be isolated or newly connected).
        let mut affected: Vec<VertexId> = endpoints;
        for &r in &roots {
            affected.extend_from_slice(self.components[r as usize].vertices());
        }
        affected.sort_unstable();
        affected.dedup();
        let affected_vertices = affected.len() as u32;

        // Blast-radius fallback: past half the graph an induced re-run stops
        // paying for itself — rebuild outright.
        if affected.len() * 2 > self.num_vertices() {
            let mut rebuilt = Self::build(graph, self.depth_limit, options)?;
            rebuilt.epoch = self.epoch + 1;
            let report = UpdateReport {
                epoch: rebuilt.epoch,
                repaired_nodes: rebuilt.num_nodes() as u32,
                rebuilt: true,
                affected_vertices,
            };
            *self = rebuilt;
            return Ok(report);
        }
        options.budget.check()?;

        // Re-run the hierarchy construction on the affected region only.
        let mut scratch = Vec::new();
        let sub = CsrGraph::extract_induced(graph, &affected, &mut scratch);
        let sub_hierarchy = build_hierarchy(&sub, self.depth_limit, options)?;
        options.budget.check()?;

        // Per-level internal edge counts of the repaired components,
        // computed on the induced subgraph (members never leave the region,
        // so the counts equal the full-graph ones).
        let region_edges: Vec<Vec<u64>> = sub_hierarchy
            .levels()
            .iter()
            .map(|level| count_internal_edges(&sub, &level.components))
            .collect();

        // Mark dropped nodes: a node goes iff its level-1 root is affected.
        // Parents precede children, so one forward pass resolves the roots.
        let num_nodes = self.components.len();
        let mut root_of = vec![0u32; num_nodes];
        for id in 0..num_nodes {
            root_of[id] = match self.parents[id] {
                NO_PARENT => id as u32,
                p => root_of[p as usize],
            };
        }
        let dropped = |id: usize| roots.binary_search(&root_of[id]).is_ok();

        // Splice: merge the surviving nodes and the repaired region level by
        // level, ordered by the component comparator — exactly the order the
        // hierarchy construction sorts each level by, which is what makes
        // the result byte-identical to a full rebuild.
        let mut new_ks: Vec<u32> = Vec::new();
        let mut new_parents: Vec<u32> = Vec::new();
        let mut new_components: Vec<KVertexConnectedComponent> = Vec::new();
        let mut new_internal: Vec<u64> = Vec::new();
        let mut new_level_offsets = vec![0usize];
        // Old node id → new node id for survivors; (level, idx) → new node
        // id for repaired nodes.
        let mut remap = vec![NO_PARENT; num_nodes];
        let mut region_ids: Vec<Vec<u32>> = Vec::new();

        let old_levels = self.level_offsets.len() - 1;
        let region_levels = sub_hierarchy.levels().len();
        for li in 0..old_levels.max(region_levels) {
            let survivors: Vec<usize> = if li < old_levels {
                (self.level_offsets[li]..self.level_offsets[li + 1])
                    .filter(|&id| !dropped(id))
                    .collect()
            } else {
                Vec::new()
            };
            let region_level = sub_hierarchy.levels().get(li);
            let repaired = region_level.map_or(0, |l| l.components.len());
            if survivors.is_empty() && repaired == 0 {
                break;
            }
            // Map the repaired components into graph ids. The affected list
            // is sorted, so local → parent relabelling is monotone and the
            // level's component order is preserved.
            let mapped: Vec<KVertexConnectedComponent> = region_level
                .map(|level| {
                    level
                        .components
                        .iter()
                        .map(|c| {
                            KVertexConnectedComponent::new(
                                c.vertices()
                                    .iter()
                                    .map(|&lv| affected[lv as usize])
                                    .collect::<Vec<_>>(),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default();
            let mut ids_this_level = vec![0u32; repaired];
            let (mut s, mut r) = (0usize, 0usize);
            while s < survivors.len() || r < repaired {
                // Survivors and repaired components are vertex-disjoint, so
                // the comparator never ties and the merged order is total.
                let take_survivor = r >= repaired
                    || (s < survivors.len() && self.components[survivors[s]] < mapped[r]);
                let new_id = new_components.len() as u32;
                if take_survivor {
                    let old_id = survivors[s];
                    s += 1;
                    remap[old_id] = new_id;
                    new_ks.push(self.ks[old_id]);
                    new_parents.push(match self.parents[old_id] {
                        NO_PARENT => NO_PARENT,
                        p => remap[p as usize],
                    });
                    new_components.push(self.components[old_id].clone());
                    new_internal.push(self.internal_edges[old_id]);
                } else {
                    ids_this_level[r] = new_id;
                    new_ks.push((li + 1) as u32);
                    let parent = region_level
                        .and_then(|level| level.parents[r])
                        .map_or(NO_PARENT, |p| region_ids[li - 1][p]);
                    new_parents.push(parent);
                    new_components.push(mapped[r].clone());
                    new_internal.push(region_edges[li][r]);
                    r += 1;
                }
            }
            region_ids.push(ids_this_level);
            new_level_offsets.push(new_components.len());
        }

        let repaired_nodes = sub_hierarchy.total_components() as u32;
        let epoch = self.epoch + 1;
        let num_vertices = self.num_vertices();
        let depth_limit = self.depth_limit;
        *self = Self::assemble(
            num_vertices,
            new_ks,
            new_parents,
            new_components,
            new_level_offsets,
            new_internal,
            depth_limit,
        );
        self.epoch = epoch;
        Ok(UpdateReport {
            epoch,
            repaired_nodes,
            rebuilt: false,
            affected_vertices,
        })
    }

    /// Whether level-`k` queries are answerable from this index: `true` for
    /// a complete index, otherwise only for `k` at or below the build cap.
    /// For an uncovered `k`, [`ConnectivityIndex::components_at`] and
    /// [`ConnectivityIndex::kvccs_containing`] would wrongly report "nothing
    /// there" — callers (e.g. the `kvcc-service` engine) must fall back to a
    /// direct enumeration instead.
    pub fn covers(&self, k: u32) -> bool {
        self.depth_limit.is_none_or(|cap| k <= cap)
    }

    /// Number of vertices of the indexed graph.
    pub fn num_vertices(&self) -> usize {
        self.leaves_of.len()
    }

    /// Total number of components across all levels of the forest.
    pub fn num_nodes(&self) -> usize {
        self.components.len()
    }

    /// The deepest connectivity level with at least one component (0 for an
    /// edgeless graph).
    pub fn max_k(&self) -> u32 {
        (self.level_offsets.len() - 1) as u32
    }

    /// All k-VCCs at level `k`, sorted by smallest member — identical to the
    /// output of [`crate::enumerate_kvccs`] for the same `k`. Empty when no
    /// component survives at that level.
    pub fn components_at(&self, k: u32) -> &[KVertexConnectedComponent] {
        if k == 0 || k > self.max_k() {
            return &[];
        }
        let k = k as usize;
        &self.components[self.level_offsets[k - 1]..self.level_offsets[k]]
    }

    /// The largest `k` such that `v` belongs to some k-VCC (its *vertex
    /// connectivity number*); 0 for isolated or out-of-range vertices.
    /// Saturates at the build cap on a depth-limited index.
    pub fn max_connectivity_of(&self, v: VertexId) -> u32 {
        self.max_k_of.get(v as usize).copied().unwrap_or(0)
    }

    /// The k-VCCs containing `seed` at level `k`: an ancestor walk from the
    /// seed's leaf components. Byte-identical to
    /// [`crate::query::kvccs_containing`] (and therefore to filtering the
    /// full enumeration), including its error contract.
    pub fn kvccs_containing(
        &self,
        seed: VertexId,
        k: u32,
    ) -> Result<Vec<KVertexConnectedComponent>, KvccError> {
        if k == 0 {
            return Err(KvccError::InvalidK);
        }
        if seed as usize >= self.num_vertices() {
            return Err(KvccError::SeedOutOfRange { seed });
        }
        let mut hit_ids: Vec<u32> = Vec::new();
        for &leaf in &self.leaves_of[seed as usize] {
            if let Some(id) = self.ancestor_at(leaf, k) {
                hit_ids.push(id);
            }
        }
        // Different leaves can meet in the same level-k ancestor.
        hit_ids.sort_unstable();
        hit_ids.dedup();
        let mut hits: Vec<KVertexConnectedComponent> = hit_ids
            .into_iter()
            .map(|id| self.components[id as usize].clone())
            .collect();
        hits.sort();
        Ok(hits)
    }

    /// The largest `k` such that `u` and `v` lie in a common k-VCC — the
    /// level of the lowest common ancestor of their leaves in the forest
    /// (0 when they share no component at all; `max_connectivity_of(u)` when
    /// `u == v`). Saturates at the build cap on a depth-limited index.
    /// Errors for out-of-range vertices.
    pub fn max_connectivity(&self, u: VertexId, v: VertexId) -> Result<u32, KvccError> {
        if u as usize >= self.num_vertices() {
            return Err(KvccError::SeedOutOfRange { seed: u });
        }
        if v as usize >= self.num_vertices() {
            return Err(KvccError::SeedOutOfRange { seed: v });
        }
        if u == v {
            return Ok(self.max_connectivity_of(u));
        }
        // Mark every ancestor of u's leaves, then walk v's ancestor chains
        // and report the deepest marked node. Chains are at most max_k long,
        // so this is O(leaves · depth) with a sorted-id merge at the end.
        let mut marked: Vec<u32> = Vec::new();
        for &leaf in &self.leaves_of[u as usize] {
            let mut node = leaf;
            loop {
                marked.push(node);
                match self.parents[node as usize] {
                    NO_PARENT => break,
                    p => node = p,
                }
            }
        }
        marked.sort_unstable();
        marked.dedup();
        let mut best = 0u32;
        for &leaf in &self.leaves_of[v as usize] {
            let mut node = leaf;
            loop {
                if marked.binary_search(&node).is_ok() {
                    best = best.max(self.ks[node as usize]);
                    break; // ancestors of a marked node are marked and shallower
                }
                match self.parents[node as usize] {
                    NO_PARENT => break,
                    p => node = p,
                }
            }
        }
        Ok(best)
    }

    /// Approximate heap bytes held by the index (Fig. 12-style accounting).
    pub fn memory_bytes(&self) -> usize {
        self.ks.capacity() * std::mem::size_of::<u32>()
            + self.parents.capacity() * std::mem::size_of::<u32>()
            + self
                .components
                .iter()
                .map(|c| std::mem::size_of_val(c.vertices()))
                .sum::<usize>()
            + self.level_offsets.capacity() * std::mem::size_of::<usize>()
            + self
                .leaves_of
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
            + self.max_k_of.capacity() * std::mem::size_of::<u32>()
            + self.internal_edges.capacity() * std::mem::size_of::<u64>()
            + self
                .rank_orders
                .iter()
                .map(|o| o.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// Walks from `node` towards the root until reaching level `k`; `None`
    /// when `node` is already shallower than `k`.
    fn ancestor_at(&self, node: u32, k: u32) -> Option<u32> {
        let mut current = node;
        loop {
            let level = self.ks[current as usize];
            if level == k {
                return Some(current);
            }
            if level < k {
                return None;
            }
            match self.parents[current as usize] {
                NO_PARENT => return None,
                p => current = p,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_kvccs;
    use crate::query;
    use kvcc_graph::UndirectedGraph;

    /// Two triangles sharing vertex 2 plus an unrelated K4 on {5,6,7,8}.
    fn mixed_graph() -> UndirectedGraph {
        let mut edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(9, edges).unwrap()
    }

    #[test]
    fn index_matches_direct_enumeration_per_level() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(index.max_k(), 3);
        for k in 1..=4u32 {
            let direct = enumerate_kvccs(&g, k, &KvccOptions::default()).unwrap();
            assert_eq!(index.components_at(k), direct.components(), "k = {k}");
        }
        assert!(index.components_at(0).is_empty());
        assert!(index.components_at(99).is_empty());
    }

    #[test]
    fn seed_queries_match_the_direct_query_path() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        for k in 1..=4u32 {
            for seed in 0..g.num_vertices() as VertexId {
                let direct = query::kvccs_containing(&g, seed, k, &KvccOptions::default()).unwrap();
                let indexed = index.kvccs_containing(seed, k).unwrap();
                assert_eq!(indexed, direct, "seed {seed}, k {k}");
            }
        }
    }

    #[test]
    fn max_connectivity_queries() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        // Inside one triangle: 2-connected; across the shared vertex: the
        // level-2 components differ but level 1 still joins them.
        assert_eq!(index.max_connectivity(0, 1).unwrap(), 2);
        assert_eq!(index.max_connectivity(0, 3).unwrap(), 1);
        // K4 members are 3-connected; across components: nothing shared.
        assert_eq!(index.max_connectivity(5, 8).unwrap(), 3);
        assert_eq!(index.max_connectivity(0, 5).unwrap(), 0);
        // Self-queries report the vertex's own maximum connectivity.
        assert_eq!(index.max_connectivity(2, 2).unwrap(), 2);
        assert_eq!(index.max_connectivity_of(6), 3);
        assert_eq!(index.max_connectivity_of(999), 0);
        assert!(matches!(
            index.max_connectivity(0, 99),
            Err(KvccError::SeedOutOfRange { seed: 99 })
        ));
    }

    #[test]
    fn error_contract_matches_the_direct_query() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert!(matches!(
            index.kvccs_containing(0, 0),
            Err(KvccError::InvalidK)
        ));
        assert!(matches!(
            index.kvccs_containing(99, 2),
            Err(KvccError::SeedOutOfRange { seed: 99 })
        ));
    }

    #[test]
    fn depth_capped_index_reports_its_coverage() {
        let g = mixed_graph();
        let full = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(full.depth_limit(), None);
        assert!(full.covers(99));

        let capped = ConnectivityIndex::build(&g, Some(1), &KvccOptions::default()).unwrap();
        assert_eq!(capped.depth_limit(), Some(1));
        assert!(capped.covers(1));
        assert!(!capped.covers(2), "level 2 was never enumerated");
        // Saturation: the K4 members' connectivity reads as the cap.
        assert_eq!(capped.max_connectivity_of(6), 1);
    }

    #[test]
    fn byte_roundtrip_preserves_every_query_surface() {
        let g = mixed_graph();
        for cap in [None, Some(1), Some(2)] {
            let index = ConnectivityIndex::build(&g, cap, &KvccOptions::default()).unwrap();
            let back = ConnectivityIndex::from_bytes(&index.to_bytes()).unwrap();
            assert_eq!(back.depth_limit(), index.depth_limit());
            assert_eq!(back.max_k(), index.max_k());
            assert_eq!(back.num_vertices(), index.num_vertices());
            assert_eq!(back.num_nodes(), index.num_nodes());
            for k in 0..=index.max_k() + 1 {
                assert_eq!(back.components_at(k), index.components_at(k));
            }
            for u in 0..g.num_vertices() as VertexId {
                assert_eq!(back.max_connectivity_of(u), index.max_connectivity_of(u));
                for k in 1..=3u32 {
                    assert_eq!(
                        back.kvccs_containing(u, k).unwrap(),
                        index.kvccs_containing(u, k).unwrap()
                    );
                }
                for v in 0..g.num_vertices() as VertexId {
                    assert_eq!(
                        back.max_connectivity(u, v).unwrap(),
                        index.max_connectivity(u, v).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn empty_index_roundtrips() {
        let index =
            ConnectivityIndex::build(&UndirectedGraph::new(3), None, &KvccOptions::default())
                .unwrap();
        let back = ConnectivityIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(back.max_k(), 0);
        assert_eq!(back.num_nodes(), 0);
        assert_eq!(back.num_vertices(), 3);
    }

    #[test]
    fn from_bytes_rejects_corrupted_buffers() {
        use kvcc_graph::GraphError;
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        let good = index.to_bytes();
        let assert_malformed = |bytes: &[u8]| {
            assert!(matches!(
                ConnectivityIndex::from_bytes(bytes),
                Err(GraphError::MalformedBytes { .. })
            ));
        };
        // Every truncation fails cleanly — header, node record, member row
        // or edge count, wherever the cut lands.
        for cut in 0..good.len() {
            assert_malformed(&good[..cut]);
        }

        let mut bad_magic = good.clone();
        bad_magic[0] = b'Z';
        assert_malformed(&bad_magic);

        let mut bad_version = good.clone();
        bad_version[4] = 42;
        assert_malformed(&bad_version);

        // First node claiming level 2 breaks contiguity. In the v3 layout
        // the first node's `k` varint sits right after the fixed header and
        // the depth-limit + epoch + node-count varints (all single-byte
        // here).
        let mut bad_level = good.clone();
        assert_eq!(bad_level[super::INDEX_WIRE_HEADER + 3], 1, "first k");
        bad_level[super::INDEX_WIRE_HEADER + 3] = 2;
        assert_malformed(&bad_level);

        // A hostile node count larger than the buffer is rejected before any
        // allocation.
        let mut bad_count = good.clone();
        assert!(
            bad_count[super::INDEX_WIRE_HEADER + 2] < 0x80,
            "count varint"
        );
        bad_count[super::INDEX_WIRE_HEADER + 2] = 0x7F;
        assert_malformed(&bad_count);

        // Trailing garbage.
        let mut trailing = good.clone();
        trailing.extend_from_slice(&[0, 0, 0, 0]);
        assert_malformed(&trailing);

        // An internal edge count exceeding |C|·(|C|−1)/2 is rejected: build
        // a single-node buffer claiming 9 edges on a 3-member component.
        let mut fabricated = Vec::new();
        fabricated.extend_from_slice(b"KIDX");
        fabricated.push(super::INDEX_WIRE_VERSION);
        fabricated.extend_from_slice(&9u32.to_le_bytes()); // num_vertices
        fabricated.push(0); // no depth limit
        fabricated.push(0); // epoch 0
        fabricated.push(1); // one node
        fabricated.push(1); // k = 1
        fabricated.push(0); // root
        fabricated.push(3); // three members
        fabricated.extend_from_slice(&[0, 0, 0]); // members {0, 1, 2}
        let mut ok = fabricated.clone();
        ok.push(3); // 3 internal edges: a triangle, plausible
        assert!(ConnectivityIndex::from_bytes(&ok).is_ok());
        fabricated.push(9); // 9 internal edges on 3 members: impossible
        assert_malformed(&fabricated);
    }

    #[test]
    fn ranked_components_sort_on_precomputed_metadata() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        let total = index.num_nodes();
        for rank_by in RankBy::ALL {
            let all = index.ranked_components(rank_by, total + 10);
            assert_eq!(all.len(), total, "{rank_by:?}: every node exactly once");
            // The declared key is non-increasing down the ranking and ties
            // break by node id, so the order is total and deterministic.
            for pair in all.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                let not_after = match rank_by {
                    RankBy::K => a.k > b.k || (a.k == b.k && a.node_id < b.node_id),
                    RankBy::Size => {
                        a.size() > b.size() || (a.size() == b.size() && a.node_id < b.node_id)
                    }
                    RankBy::Density => {
                        a.density() > b.density()
                            || (a.density() == b.density() && a.node_id < b.node_id)
                    }
                };
                assert!(not_after, "{rank_by:?}: {a:?} must not rank below {b:?}");
            }
            // Pagination slices the same order: pages of 2 concatenate to it.
            let mut paged = Vec::new();
            let mut offset = 0;
            loop {
                let page = index.ranked_page(rank_by, offset, 2);
                if page.is_empty() {
                    break;
                }
                offset += page.len();
                paged.extend(page);
            }
            assert_eq!(paged, all, "{rank_by:?}");
        }
        // Metadata is the real thing: the K4 on {5,6,7,8} has 6 internal
        // edges, density 1, and ranks first by both size shares and density.
        let densest = &index.ranked_components(RankBy::Density, 1)[0];
        assert_eq!(densest.component.vertices(), &[5, 6, 7, 8]);
        assert_eq!(densest.internal_edges, 6);
        assert!((densest.density() - 1.0).abs() < 1e-12);
        let deepest = &index.ranked_components(RankBy::K, 1)[0];
        assert_eq!(deepest.k, 3);
        // The brute-force edge count agrees for every node.
        for entry in index.ranked_components(RankBy::Size, total) {
            let members = entry.component.vertices();
            let brute: u64 = members
                .iter()
                .map(|&v| {
                    g.neighbors(v)
                        .iter()
                        .filter(|w| members.binary_search(w).is_ok())
                        .count() as u64
                })
                .sum::<u64>()
                / 2;
            assert_eq!(entry.internal_edges, brute);
            assert_eq!(index.internal_edges_of(entry.node_id), Some(brute));
        }
        assert_eq!(index.internal_edges_of(total as u32), None);
    }

    #[test]
    fn ranked_metadata_survives_a_byte_roundtrip() {
        let g = mixed_graph();
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        let back = ConnectivityIndex::from_bytes(&index.to_bytes()).unwrap();
        for rank_by in RankBy::ALL {
            let a = index.ranked_components(rank_by, index.num_nodes());
            let b = back.ranked_components(rank_by, back.num_nodes());
            assert_eq!(a, b, "{rank_by:?}");
        }
    }

    #[test]
    fn apply_updates_matches_a_full_rebuild_byte_for_byte() {
        use kvcc_graph::{CsrGraph, DeltaGraph, EdgeUpdate};
        let g = mixed_graph();
        let mut delta = DeltaGraph::new(CsrGraph::from_view(&g));
        let mut index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(index.epoch(), 0);
        let batches: Vec<Vec<EdgeUpdate>> = vec![
            // Weaken one triangle.
            vec![EdgeUpdate::delete(0, 1)],
            // Restore it and bridge the two clusters.
            vec![EdgeUpdate::insert(0, 1), EdgeUpdate::insert(4, 5)],
            // Tear the shared vertex out of both triangles.
            vec![EdgeUpdate::delete(2, 3), EdgeUpdate::delete(2, 4)],
            // An empty batch still advances the epoch.
            vec![],
        ];
        for (i, batch) in batches.iter().enumerate() {
            delta.apply(batch).unwrap();
            let report = index
                .apply_updates(&delta, batch, &KvccOptions::default())
                .unwrap();
            assert_eq!(report.epoch, (i + 1) as u64);
            assert_eq!(index.epoch(), report.epoch);
            let mut fresh =
                ConnectivityIndex::build(&delta, None, &KvccOptions::default()).unwrap();
            fresh.set_epoch(index.epoch());
            assert_eq!(
                index.to_bytes(),
                fresh.to_bytes(),
                "batch {i}: incremental repair must equal a full rebuild"
            );
        }
    }

    #[test]
    fn apply_updates_rejects_out_of_range_endpoints() {
        use kvcc_graph::EdgeUpdate;
        let g = mixed_graph();
        let mut index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        let before = index.to_bytes();
        let err = index
            .apply_updates(&g, &[EdgeUpdate::insert(0, 99)], &KvccOptions::default())
            .unwrap_err();
        assert!(matches!(err, KvccError::SeedOutOfRange { seed: 99 }));
        assert_eq!(index.to_bytes(), before, "failed batch must not mutate");
    }

    #[test]
    fn interrupted_update_leaves_the_index_untouched() {
        use kvcc_flow::Budget;
        use kvcc_graph::EdgeUpdate;
        let g = mixed_graph();
        let mut index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        let before = index.to_bytes();
        let budget = Budget::cancellable();
        budget.cancel();
        let err = index
            .apply_updates(
                &g,
                &[EdgeUpdate::delete(0, 1)],
                &KvccOptions::default().with_budget(budget),
            )
            .unwrap_err();
        assert!(matches!(err, KvccError::Interrupted { .. }));
        assert_eq!(index.to_bytes(), before, "interrupt must not mutate");
        assert_eq!(index.epoch(), 0);
    }

    #[test]
    fn epoch_roundtrips_and_v2_buffers_imply_epoch_zero() {
        let g = mixed_graph();
        let mut index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        index.set_epoch(712);
        let bytes = index.to_bytes();
        assert_eq!(ConnectivityIndex::peek_num_vertices(&bytes), Some(9));
        let back = ConnectivityIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.epoch(), 712);
        assert_eq!(back.to_bytes(), bytes);

        // A version-2 buffer (predating the epoch varint) still loads and
        // restores with epoch 0, re-serialising as version 3.
        index.set_epoch(0);
        let v3 = index.to_bytes();
        let mut v2 = v3.clone();
        v2[4] = super::INDEX_WIRE_VERSION_V2;
        assert_eq!(v2[super::INDEX_WIRE_HEADER + 1], 0, "epoch varint");
        v2.remove(super::INDEX_WIRE_HEADER + 1);
        assert_eq!(ConnectivityIndex::peek_num_vertices(&v2), Some(9));
        let restored = ConnectivityIndex::from_bytes(&v2).unwrap();
        assert_eq!(restored.epoch(), 0);
        assert_eq!(restored.to_bytes(), v3);
    }

    #[test]
    fn empty_graph_has_an_empty_index() {
        let g = UndirectedGraph::new(4);
        let index = ConnectivityIndex::build(&g, None, &KvccOptions::default()).unwrap();
        assert_eq!(index.max_k(), 0);
        assert_eq!(index.num_nodes(), 0);
        assert_eq!(index.num_vertices(), 4);
        assert!(index.kvccs_containing(1, 3).unwrap().is_empty());
        assert_eq!(index.max_connectivity(0, 1).unwrap(), 0);
        assert!(index.memory_bytes() > 0);
    }
}
