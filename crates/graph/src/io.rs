//! Reading and writing graphs in the SNAP edge-list format.
//!
//! The seven datasets of Table 1 are distributed by the SNAP project as plain
//! text files with one `u v` pair per line and `#`-prefixed comment lines.
//! [`read_snap_edge_list`] accepts exactly that format (including arbitrary
//! 64-bit ids, tabs or spaces, and directed duplicates, which are collapsed to
//! a single undirected edge).

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::UndirectedGraph;

/// Parses a SNAP-style edge list from a string.
///
/// * Lines starting with `#` or `%` are comments.
/// * Blank lines are ignored.
/// * Each remaining line must contain at least two whitespace-separated
///   integer tokens; additional tokens (e.g. timestamps, weights) are ignored.
/// * Vertex ids may be arbitrary `u64` values; they are relabelled to a
///   compact `0..n` range in order of first appearance.
pub fn parse_edge_list(contents: &str) -> Result<UndirectedGraph, GraphError> {
    parse_edge_list_diagnostic(contents).map(|(g, _)| g)
}

/// [`parse_edge_list`] variant that also reports how many self-loops and
/// duplicate (or directed-twin) edges the input contained — useful for
/// logging what a messy SNAP download actually ingested.
pub fn parse_edge_list_diagnostic(
    contents: &str,
) -> Result<(UndirectedGraph, crate::csr::EdgeIngestStats), GraphError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in contents.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_token(it.next(), idx + 1)?;
        let v = parse_token(it.next(), idx + 1)?;
        builder.add_edge_raw(u, v);
    }
    Ok(builder.build_diagnostic())
}

pub(crate) fn parse_token(token: Option<&str>, line: usize) -> Result<u64, GraphError> {
    let token = token.ok_or_else(|| GraphError::ParseError {
        line,
        message: "expected two vertex ids".to_string(),
    })?;
    token.parse::<u64>().map_err(|e| GraphError::ParseError {
        line,
        message: format!("invalid vertex id {token:?}: {e}"),
    })
}

/// Reads a SNAP edge-list file from disk. See [`parse_edge_list`].
pub fn read_snap_edge_list<P: AsRef<Path>>(path: P) -> Result<UndirectedGraph, GraphError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut contents = String::new();
    reader.read_to_string(&mut contents)?;
    parse_edge_list(&contents)
}

/// Serialises a graph as a SNAP-style edge list (one `u v` pair per line, each
/// undirected edge written once).
pub fn write_edge_list<W: Write>(g: &UndirectedGraph, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# Undirected graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    Ok(())
}

/// Writes a graph to a file in the SNAP edge-list format.
pub fn write_edge_list_file<P: AsRef<Path>>(
    g: &UndirectedGraph,
    path: P,
) -> Result<(), GraphError> {
    let file = File::create(path)?;
    let writer = BufWriter::new(file);
    write_edge_list(g, writer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_edge_list() {
        let text = "# comment line\n% another comment\n1 2\n2 3\n\n3 1 999\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn parse_collapses_directed_duplicates() {
        let text = "0 1\n1 0\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parse_diagnostics_count_dropped_lines() {
        let text = "# header\n0 1\n1 0\n2 2\n0 1\n1 2\n";
        let (g, stats) = parse_edge_list_diagnostic(text).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(stats.self_loops, 1);
        assert_eq!(stats.duplicates, 2);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let err = parse_edge_list("1\n").unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
        let err = parse_edge_list("a b\n").unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
    }

    #[test]
    fn parse_handles_large_sparse_ids() {
        let text = "1000000000000 5\n5 7\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn roundtrip_through_writer() {
        let g = UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.num_edges(), 4);
        // Same edge multiset after relabelling: compare degree sequences.
        let mut d1 = g.degrees();
        let mut d2 = g2.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("kvcc_graph_io_test.txt");
        let g = UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_snap_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), 4);
        std::fs::remove_file(&path).ok();
    }
}
