//! SNAP-scale graph ingestion: the [`GraphLoader`] family.
//!
//! The original ingestion path ([`crate::io::read_snap_edge_list`]) slurps
//! the whole file into one `String`, interns ids through a
//! [`crate::GraphBuilder`], materialises a `Vec<Vec<VertexId>>` adjacency,
//! sorts every row, and only then converts to CSR — four full-size
//! intermediate structures between the file and the two flat arrays the
//! enumerator actually wants. On a million-edge SNAP download that is the
//! difference between fitting in memory comfortably and thrashing.
//!
//! [`StreamingEdgeListLoader`] goes from a buffered line stream to CSR
//! directly:
//!
//! 1. **Chunked parse** — lines are read one at a time (the `String` buffer
//!    is reused); each undirected edge is pushed as two directed pairs into
//!    a bounded chunk, and full chunks are sealed into sorted runs.
//! 2. **Parallel run sort** — sealed runs are sorted on `std::thread`
//!    scoped workers, fanned out by the same [`effective_threads`] helper
//!    the enumeration worklist and the service batch pool use.
//! 3. **K-way merge + dedup + direct CSR emission** — a binary heap merges
//!    the sorted runs in one pass, dropping duplicates (counted for
//!    [`EdgeIngestStats`] parity with the in-memory path) and writing the
//!    offset/neighbour arrays as it goes. No per-vertex `Vec` ever exists.
//!
//! The peak transient footprint is the directed pair runs (16 bytes per
//! input edge) plus the interner — roughly half of what the
//! builder-based path allocates, and the constant-size parse buffers make
//! the profile flat rather than spiky. Every loader reports the same
//! duplicate/self-loop diagnostics as [`CsrGraph::from_edges_diagnostic`],
//! so the two ingestion paths agree byte-for-byte on the graph *and* on
//! what was dropped to produce it.

use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::csr::{CsrGraph, EdgeIngestStats};
use crate::error::GraphError;
use crate::kcsr::MappedCsr;
use crate::types::VertexId;

/// Resolves a requested worker count to a concrete one: `0` means
/// [`std::thread::available_parallelism`], anything else is taken verbatim.
/// Shared by the enumeration worklist, the `kvcc-service` batch pool and the
/// streaming loader's run-sort fan-out (re-exported as
/// `kvcc::effective_threads`).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// A fully ingested graph: the CSR structure, the external→internal id
/// mapping, the drop diagnostics, and a peak-allocation proxy for the
/// transient structures the loader needed.
#[derive(Clone, Debug)]
pub struct IngestedGraph {
    /// The graph, with external ids relabelled to `0..n` in order of first
    /// appearance (the same order [`crate::GraphBuilder::add_edge_raw`]
    /// produces).
    pub graph: CsrGraph,
    /// `external_ids[v]` is the raw id that was relabelled to `v`.
    pub external_ids: Vec<u64>,
    /// How many self-loops / duplicate edges the input contained.
    pub stats: EdgeIngestStats,
    /// Approximate peak bytes of the loader's transient structures (pair
    /// runs + interner) **plus** the final CSR arrays — the number the
    /// ingestion bench reports as its RSS proxy.
    pub peak_bytes: usize,
}

/// A source-to-CSR ingestion strategy. Implementations differ in how much
/// transient memory they need and what inputs they accept; all of them end
/// in the same validated [`IngestedGraph`].
pub trait GraphLoader {
    /// Ingests the file at `path`.
    fn load_path(&self, path: &Path) -> Result<IngestedGraph, GraphError>;

    /// Human-readable name for logs and bench labels.
    fn name(&self) -> &'static str;
}

/// The streaming SNAP edge-list loader (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct StreamingEdgeListLoader {
    /// Directed pairs per chunk before it is sealed into a sorted run.
    chunk_pairs: usize,
    /// Worker threads for run sorting (`0` = all cores).
    threads: usize,
}

/// Default chunk size: 1M directed pairs = 8 MiB per run buffer.
const DEFAULT_CHUNK_PAIRS: usize = 1 << 20;

impl Default for StreamingEdgeListLoader {
    fn default() -> Self {
        StreamingEdgeListLoader {
            chunk_pairs: DEFAULT_CHUNK_PAIRS,
            threads: 0,
        }
    }
}

impl StreamingEdgeListLoader {
    /// A loader with the default chunk size and one sort worker per core.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the chunk size (directed pairs per run; clamped to ≥ 2).
    /// Small chunks force the k-way merge to do real work — useful in tests.
    pub fn with_chunk_pairs(mut self, pairs: usize) -> Self {
        self.chunk_pairs = pairs.max(2);
        self
    }

    /// Overrides the sort worker count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Ingests a SNAP-style edge list from any buffered reader. Same line
    /// grammar as [`crate::io::parse_edge_list`]: `#`/`%` comments, blank
    /// lines, at least two whitespace-separated integer tokens per line.
    pub fn load_reader<R: BufRead>(&self, mut reader: R) -> Result<IngestedGraph, GraphError> {
        let mut interner: HashMap<u64, VertexId> = HashMap::new();
        let mut external_ids: Vec<u64> = Vec::new();
        let mut stats = EdgeIngestStats::default();

        // Sealed sorted runs of directed (src, dst) pairs, plus the chunk
        // currently being filled.
        let mut runs: Vec<Vec<(u32, u32)>> = Vec::new();
        let mut chunk: Vec<(u32, u32)> = Vec::with_capacity(self.chunk_pairs);
        let mut total_pairs = 0usize;

        let intern = |raw: u64,
                      interner: &mut HashMap<u64, VertexId>,
                      external_ids: &mut Vec<u64>|
         -> Result<VertexId, GraphError> {
            match interner.entry(raw) {
                Entry::Occupied(e) => Ok(*e.get()),
                Entry::Vacant(e) => {
                    if external_ids.len() >= VertexId::MAX as usize {
                        return Err(GraphError::TooManyVertices(external_ids.len() + 1));
                    }
                    let id = external_ids.len() as VertexId;
                    e.insert(id);
                    external_ids.push(raw);
                    Ok(id)
                }
            }
        };

        let mut line = String::new();
        let mut line_no = 0usize;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            let mut it = trimmed.split_whitespace();
            let u = crate::io::parse_token(it.next(), line_no)?;
            let v = crate::io::parse_token(it.next(), line_no)?;
            let a = intern(u, &mut interner, &mut external_ids)?;
            let b = intern(v, &mut interner, &mut external_ids)?;
            if a == b {
                stats.self_loops += 1;
                continue;
            }
            chunk.push((a, b));
            chunk.push((b, a));
            total_pairs += 2;
            if chunk.len() >= self.chunk_pairs {
                runs.push(std::mem::replace(
                    &mut chunk,
                    Vec::with_capacity(self.chunk_pairs),
                ));
            }
        }
        if !chunk.is_empty() {
            runs.push(chunk);
        }

        sort_runs(&mut runs, effective_threads(self.threads));
        let n = external_ids.len();
        let (graph, duplicate_pairs) = merge_runs(runs, n);
        // Every duplicate undirected occurrence contributed two directed
        // pairs, both dropped by the merge — same accounting as
        // `from_edges_diagnostic`.
        stats.duplicates = duplicate_pairs / 2;

        // Peak transient proxy: all directed pairs resident at once (8
        // bytes each), the interner (key + value + bucket overhead ≈ 24
        // bytes per vertex) and the final CSR arrays.
        let peak_bytes =
            total_pairs * std::mem::size_of::<(u32, u32)>() + n * 24 + graph.memory_bytes();

        Ok(IngestedGraph {
            graph,
            external_ids,
            stats,
            peak_bytes,
        })
    }
}

impl GraphLoader for StreamingEdgeListLoader {
    fn load_path(&self, path: &Path) -> Result<IngestedGraph, GraphError> {
        self.load_reader(BufReader::new(File::open(path)?))
    }

    fn name(&self) -> &'static str {
        "streaming-edge-list"
    }
}

/// Sorts sealed runs on scoped worker threads. Runs are distributed in
/// contiguous blocks; with one run or one worker this degenerates to a
/// plain in-place sort with no thread spawn.
fn sort_runs(runs: &mut [Vec<(u32, u32)>], workers: usize) {
    let workers = workers.min(runs.len()).max(1);
    if workers <= 1 {
        for run in runs.iter_mut() {
            run.sort_unstable();
        }
        return;
    }
    let per_worker = runs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for block in runs.chunks_mut(per_worker) {
            scope.spawn(move || {
                for run in block {
                    run.sort_unstable();
                }
            });
        }
    });
}

/// K-way-merges sorted directed-pair runs into a CSR graph over `n`
/// vertices, dropping (and counting) duplicate pairs and emitting the
/// offset array on the fly. Returns the graph and the number of directed
/// pairs dropped.
fn merge_runs(runs: Vec<Vec<(u32, u32)>>, n: usize) -> (CsrGraph, usize) {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(total);
    offsets.push(0);
    // `row` is the vertex whose offset entries have been sealed so far:
    // every vertex < row has its end offset written.
    let mut row = 0u32;
    let mut dropped = 0usize;

    let mut heap: BinaryHeap<std::cmp::Reverse<((u32, u32), usize)>> = BinaryHeap::new();
    let mut cursors = vec![0usize; runs.len()];
    for (i, run) in runs.iter().enumerate() {
        if let Some(&pair) = run.first() {
            heap.push(std::cmp::Reverse((pair, i)));
            cursors[i] = 1;
        }
    }

    let mut prev: Option<(u32, u32)> = None;
    while let Some(std::cmp::Reverse((pair, i))) = heap.pop() {
        if let Some(&next) = runs[i].get(cursors[i]) {
            heap.push(std::cmp::Reverse((next, i)));
            cursors[i] += 1;
        }
        if prev == Some(pair) {
            dropped += 1;
            continue;
        }
        prev = Some(pair);
        let (src, dst) = pair;
        while row < src {
            offsets.push(neighbors.len() as u32);
            row += 1;
        }
        neighbors.push(dst);
    }
    // Seal the remaining rows (trailing vertices with no outgoing pairs).
    while (row as usize) < n {
        offsets.push(neighbors.len() as u32);
        row += 1;
    }
    (CsrGraph::from_parts(offsets, neighbors), dropped)
}

/// The whole-file reference loader: [`crate::io::read_snap_edge_list`]
/// followed by a CSR conversion. Same results as the streaming loader,
/// maximum transient memory — kept as the differential baseline the parity
/// suite and the ingestion bench compare against.
#[derive(Clone, Copy, Debug, Default)]
pub struct WholeFileEdgeListLoader;

impl GraphLoader for WholeFileEdgeListLoader {
    fn load_path(&self, path: &Path) -> Result<IngestedGraph, GraphError> {
        let contents = std::fs::read_to_string(path)?;
        let mut builder = crate::GraphBuilder::new();
        for (idx, line) in contents.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                continue;
            }
            let mut it = line.split_whitespace();
            let u = crate::io::parse_token(it.next(), idx + 1)?;
            let v = crate::io::parse_token(it.next(), idx + 1)?;
            builder.add_edge_raw(u, v);
        }
        let n = {
            let mut v = 0;
            while builder.raw_id_of(v).is_some() {
                v += 1;
            }
            v as usize
        };
        let external_ids: Vec<u64> = (0..n as VertexId)
            .map(|v| builder.raw_id_of(v).expect("interned"))
            .collect();
        let (vec_graph, stats) = builder.build_diagnostic();
        let graph = CsrGraph::from_view(&vec_graph);
        // The builder path holds the raw text, the edge list, the
        // Vec<Vec<_>> adjacency and the final CSR simultaneously.
        let peak_bytes = contents.len()
            + vec_graph.num_edges() * 2 * std::mem::size_of::<(u32, u32)>()
            + vec_graph.memory_bytes()
            + n * 24
            + graph.memory_bytes();
        Ok(IngestedGraph {
            graph,
            external_ids,
            stats,
            peak_bytes,
        })
    }

    fn name(&self) -> &'static str {
        "whole-file-edge-list"
    }
}

/// Loader for the aligned `KCSR` v3 binary format: opens the file zero-copy
/// via [`MappedCsr`] and (for the [`GraphLoader`] interface, which must
/// return an owned graph) materialises the borrowed view. Callers that can
/// hold a borrow should use [`MappedCsr::open`] directly and skip the copy.
#[derive(Clone, Copy, Debug, Default)]
pub struct KcsrLoader;

impl KcsrLoader {
    /// Opens the file without materialising: the zero-copy entry point.
    pub fn open_mapped(&self, path: &Path) -> Result<MappedCsr, GraphError> {
        MappedCsr::open(path)
    }
}

impl GraphLoader for KcsrLoader {
    fn load_path(&self, path: &Path) -> Result<IngestedGraph, GraphError> {
        let mapped = MappedCsr::open(path)?;
        let graph = mapped.as_csr_ref().to_graph();
        let external_ids = (0..graph.num_vertices() as u64).collect();
        let peak_bytes = mapped.byte_len() + graph.memory_bytes();
        Ok(IngestedGraph {
            graph,
            external_ids,
            stats: EdgeIngestStats::default(),
            peak_bytes,
        })
    }

    fn name(&self) -> &'static str {
        "kcsr-aligned"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn stream(text: &str, chunk_pairs: usize) -> IngestedGraph {
        StreamingEdgeListLoader::new()
            .with_chunk_pairs(chunk_pairs)
            .with_threads(2)
            .load_reader(Cursor::new(text.as_bytes()))
            .unwrap()
    }

    #[test]
    fn streaming_matches_the_builder_path_exactly() {
        let text = "# header\n1000000000000 5\n5 7\n7 1000000000000\n5 7\n9 9\n7 5\n";
        for chunk in [2usize, 4, 1 << 20] {
            let got = stream(text, chunk);
            let (vec_graph, stats) = crate::io::parse_edge_list_diagnostic(text).unwrap();
            assert_eq!(got.graph, CsrGraph::from_view(&vec_graph), "chunk {chunk}");
            assert_eq!(got.stats, stats);
            assert_eq!(got.external_ids, vec![1000000000000, 5, 7, 9]);
            assert!(got.peak_bytes > 0);
        }
    }

    #[test]
    fn tiny_chunks_force_a_real_merge() {
        // 8 undirected edges on a cycle; chunk of 2 pairs = 8 runs.
        let text = "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n6 7\n7 0\n";
        let got = stream(text, 2);
        assert_eq!(got.graph.num_vertices(), 8);
        assert_eq!(got.graph.num_edges(), 8);
        assert_eq!(got.stats, EdgeIngestStats::default());
    }

    #[test]
    fn streaming_reports_parse_errors_with_line_numbers() {
        let err = StreamingEdgeListLoader::new()
            .load_reader(Cursor::new(b"0 1\nbogus\n" as &[u8]))
            .unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 2, .. }));
        let err = StreamingEdgeListLoader::new()
            .load_reader(Cursor::new(b"0\n" as &[u8]))
            .unwrap_err();
        assert!(matches!(err, GraphError::ParseError { line: 1, .. }));
    }

    #[test]
    fn self_loop_only_vertices_stay_isolated() {
        // Vertex 9 appears only in a self-loop: interned, degree 0 — same
        // as the builder path.
        let got = stream("0 1\n9 9\n", 1 << 20);
        assert_eq!(got.graph.num_vertices(), 3);
        assert_eq!(got.graph.num_edges(), 1);
        assert_eq!(got.stats.self_loops, 1);
        assert_eq!(got.graph.degree(2), 0);
    }

    #[test]
    fn empty_and_comment_only_inputs_load_cleanly() {
        for text in ["", "# nothing\n% here\n\n"] {
            let got = stream(text, 1 << 20);
            assert_eq!(got.graph.num_vertices(), 0);
            assert_eq!(got.graph.num_edges(), 0);
        }
    }

    #[test]
    fn loader_trait_objects_cover_all_formats() {
        let dir = std::env::temp_dir();
        let snap = dir.join(format!("kvcc_load_test_{}.txt", std::process::id()));
        std::fs::write(&snap, "0 1\n1 2\n2 0\n").unwrap();
        let kcsr = dir.join(format!("kvcc_load_test_{}.kcsr", std::process::id()));
        let streamed = StreamingEdgeListLoader::new().load_path(&snap).unwrap();
        crate::kcsr::write_kcsr_file(&streamed.graph, &kcsr).unwrap();

        let loaders: Vec<Box<dyn GraphLoader>> = vec![
            Box::new(StreamingEdgeListLoader::new()),
            Box::new(WholeFileEdgeListLoader),
        ];
        for loader in &loaders {
            let got = loader.load_path(&snap).unwrap();
            assert_eq!(got.graph, streamed.graph, "{}", loader.name());
            assert_eq!(got.external_ids, streamed.external_ids, "{}", loader.name());
        }
        let got = KcsrLoader.load_path(&kcsr).unwrap();
        assert_eq!(got.graph, streamed.graph);
        assert_eq!(KcsrLoader.name(), "kcsr-aligned");

        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&kcsr).ok();
    }

    #[test]
    fn effective_threads_resolves_zero_to_available_parallelism() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
