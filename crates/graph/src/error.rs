//! Error types for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced while building or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id that is outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices the graph was declared with.
        num_vertices: usize,
    },
    /// The declared number of vertices does not fit in a [`crate::VertexId`].
    TooManyVertices(usize),
    /// A line of an edge-list file could not be parsed.
    ParseError {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Human readable description of the problem.
        message: String,
    },
    /// An underlying I/O failure while reading or writing a graph file.
    Io(io::Error),
    /// A byte buffer passed to [`crate::CsrGraph::from_bytes`] (or a work-item
    /// deserializer built on it) is not a valid encoding.
    MalformedBytes {
        /// What was wrong with the buffer.
        reason: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} is out of range for a graph with {num_vertices} vertices"
            ),
            GraphError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceed the u32 vertex-id space")
            }
            GraphError::ParseError { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::MalformedBytes { reason } => {
                write!(f, "malformed graph bytes: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(value: io::Error) -> Self {
        GraphError::Io(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 12,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains('5'));

        let e = GraphError::ParseError {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::TooManyVertices(usize::MAX);
        assert!(e.to_string().contains("u32"));

        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("nope"));
    }
}
