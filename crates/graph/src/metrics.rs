//! Graph cohesion metrics used in the effectiveness study (§6.1).
//!
//! The paper compares k-VCCs against k-cores and k-ECCs using three measures:
//! diameter (Eq. 1), edge density (Eq. 4) and clustering coefficient
//! (Eqs. 5–6). Exact diameter computation is quadratic, so an estimator based
//! on repeated double sweeps is provided for large components.

use crate::traversal::{bfs_distances, UNREACHABLE};
use crate::types::VertexId;
use crate::view::GraphView;

/// Exact diameter: the longest shortest path over all reachable pairs.
///
/// Runs one BFS per vertex (`O(n·m)`); intended for the moderately sized
/// components produced by the enumeration, not for whole web graphs. For a
/// graph with fewer than two vertices the diameter is 0. Pairs in different
/// components are ignored (the paper only evaluates connected subgraphs).
pub fn diameter_exact<G: GraphView>(g: &G) -> u32 {
    let mut best = 0;
    for v in g.vertices() {
        let d = bfs_distances(g, v);
        for x in d {
            if x != UNREACHABLE && x > best {
                best = x;
            }
        }
    }
    best
}

/// Lower-bound diameter estimate via repeated double sweeps.
///
/// Starting from `seeds` evenly spread vertices, each sweep runs a BFS, jumps
/// to the farthest vertex found and runs a second BFS from there; the largest
/// eccentricity observed is returned. For small graphs
/// (`n <= exact_threshold`) the exact diameter is computed instead.
pub fn diameter_estimate<G: GraphView>(g: &G, seeds: usize, exact_threshold: usize) -> u32 {
    let n = g.num_vertices();
    if n <= 1 {
        return 0;
    }
    if n <= exact_threshold {
        return diameter_exact(g);
    }
    let seeds = seeds.max(1);
    let mut best = 0;
    for i in 0..seeds {
        let start = ((i * n) / seeds) as VertexId;
        let d1 = bfs_distances(g, start);
        let (far, ecc) = farthest(&d1);
        best = best.max(ecc);
        if ecc == 0 {
            continue;
        }
        let d2 = bfs_distances(g, far);
        let (_, ecc2) = farthest(&d2);
        best = best.max(ecc2);
    }
    best
}

fn farthest(dist: &[u32]) -> (VertexId, u32) {
    let mut far = 0 as VertexId;
    let mut best = 0u32;
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE && d > best {
            best = d;
            far = v as VertexId;
        }
    }
    (far, best)
}

/// Edge density (Eq. 4): `2m / (n (n-1))`. Defined as 0 for graphs with fewer
/// than two vertices.
pub fn edge_density<G: GraphView>(g: &G) -> f64 {
    let n = g.num_vertices() as f64;
    if n < 2.0 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / (n * (n - 1.0))
}

/// Local clustering coefficient of `v` (Eq. 5): the fraction of pairs of
/// neighbours of `v` that are themselves adjacent. Vertices of degree `< 2`
/// have coefficient 0.
pub fn local_clustering<G: GraphView>(g: &G, v: VertexId) -> f64 {
    let neigh = g.neighbors(v);
    let d = neigh.len();
    if d < 2 {
        return 0.0;
    }
    let mut triangles = 0usize;
    for (i, &a) in neigh.iter().enumerate() {
        for &b in &neigh[i + 1..] {
            if g.has_edge(a, b) {
                triangles += 1;
            }
        }
    }
    2.0 * triangles as f64 / (d as f64 * (d as f64 - 1.0))
}

/// Average clustering coefficient of the graph (Eq. 6).
pub fn average_clustering<G: GraphView>(g: &G) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = g.vertices().map(|v| local_clustering(g, v)).sum();
    sum / n as f64
}

/// Total number of triangles in the graph.
///
/// Counted by intersecting the adjacency lists of the endpoints of every edge
/// and dividing by 3; `O(sum of d(u)+d(v) over edges)`.
pub fn triangle_count<G: GraphView>(g: &G) -> usize {
    let mut total = 0usize;
    for (u, v) in g.edges() {
        total += g.common_neighbor_count(u, v);
    }
    total / 3
}

/// Summary statistics for a dataset row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStatistics {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Average degree `2m/n` (the paper's "Density" column).
    pub density: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

/// Computes the Table-1 style statistics of a graph.
pub fn graph_statistics<G: GraphView>(g: &G) -> GraphStatistics {
    GraphStatistics {
        num_vertices: g.num_vertices(),
        num_edges: g.num_edges(),
        density: g.average_degree(),
        max_degree: g.max_degree(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UndirectedGraph;

    fn complete(n: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..n as VertexId {
            for j in (i + 1)..n as VertexId {
                edges.push((i, j));
            }
        }
        UndirectedGraph::from_edges(n, edges).unwrap()
    }

    fn path(n: usize) -> UndirectedGraph {
        UndirectedGraph::from_edges(n, (0..n as VertexId - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn diameter_of_path_and_clique() {
        assert_eq!(diameter_exact(&path(6)), 5);
        assert_eq!(diameter_exact(&complete(5)), 1);
        assert_eq!(diameter_exact(&UndirectedGraph::new(1)), 0);
        assert_eq!(diameter_exact(&UndirectedGraph::new(0)), 0);
    }

    #[test]
    fn diameter_estimate_is_exact_on_paths() {
        // Double sweep is exact on trees.
        let g = path(50);
        assert_eq!(diameter_estimate(&g, 2, 10), 49);
        // Below the threshold it falls back to the exact algorithm.
        assert_eq!(diameter_estimate(&path(8), 1, 100), 7);
    }

    #[test]
    fn density_of_clique_is_one() {
        assert!((edge_density(&complete(6)) - 1.0).abs() < 1e-12);
        assert!(edge_density(&path(6)) < 0.5);
        assert_eq!(edge_density(&UndirectedGraph::new(1)), 0.0);
    }

    #[test]
    fn clustering_of_clique_and_star() {
        assert!((average_clustering(&complete(5)) - 1.0).abs() < 1e-12);
        // Star: the centre has clustering 0, leaves have degree 1 -> 0.
        let star = UndirectedGraph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(average_clustering(&star), 0.0);
        assert_eq!(local_clustering(&star, 0), 0.0);
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&complete(4)), 4);
        assert_eq!(triangle_count(&complete(5)), 10);
        assert_eq!(triangle_count(&path(5)), 0);
    }

    #[test]
    fn statistics_row() {
        let g = complete(4);
        let s = graph_statistics(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 6);
        assert_eq!(s.max_degree, 3);
        assert!((s.density - 3.0).abs() < 1e-12);
    }
}
