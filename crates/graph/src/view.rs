//! The [`GraphView`] abstraction over graph representations, and the
//! allocation-free [`SubgraphView`] vertex mask.
//!
//! Every algorithm in this workspace (BFS, k-core peeling, scan-first
//! forests, flow-graph construction, the sweep rules, …) only ever needs a
//! *read* interface to a graph: the vertex count and, per vertex, a **sorted,
//! duplicate-free** neighbour slice. [`GraphView`] captures exactly that
//! contract, so the algorithms run unchanged on both the pointer-heavy
//! [`crate::UndirectedGraph`] (`Vec<Vec<VertexId>>`) and the cache-friendly
//! [`crate::CsrGraph`] (compressed sparse row) representation.
//!
//! # Contract
//!
//! Implementations must guarantee:
//!
//! * vertices are the consecutive ids `0..num_vertices()`;
//! * `neighbors(v)` is sorted ascending and contains no duplicates and no
//!   self-loops;
//! * the graph is undirected: `u ∈ neighbors(v)` ⇔ `v ∈ neighbors(u)`;
//! * `num_edges()` equals half the total neighbour-slice length.
//!
//! All provided methods are implemented purely in terms of this contract.

use crate::bitset::BitSet;
use crate::types::{Edge, VertexId};

/// Read-only view of an undirected graph with sorted adjacency slices.
///
/// See the [module docs](self) for the invariants implementations must
/// uphold.
pub trait GraphView {
    /// Number of vertices, `n`.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges, `m`.
    fn num_edges(&self) -> usize;

    /// The sorted, duplicate-free neighbour slice of vertex `v`.
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Approximate number of heap bytes used by the representation (consumed
    /// by the Fig. 12 memory tracker).
    fn memory_bytes(&self) -> usize;

    /// Returns `true` when the graph has no vertices.
    #[inline]
    fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// Degree of vertex `v`.
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Tests whether the edge `(u, v)` exists (binary search on the smaller
    /// neighbour slice).
    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all edges, each reported once with `u < v`.
    fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Number of common neighbours of `u` and `v`, stopping early once
    /// `limit` is reached. A `limit` of `usize::MAX` counts exactly.
    fn common_neighbors_at_least(&self, u: VertexId, v: VertexId, limit: usize) -> usize {
        let a = self.neighbors(u);
        let b = self.neighbors(v);
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    if count >= limit {
                        return count;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Exact number of common neighbours of `u` and `v`.
    #[inline]
    fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        self.common_neighbors_at_least(u, v, usize::MAX)
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over all vertices (0 for the empty graph).
    fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// A vertex of minimum degree, if the graph is non-empty.
    fn min_degree_vertex(&self) -> Option<VertexId> {
        self.vertices().min_by_key(|&v| self.degree(v))
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Collects the degree of every vertex into a vector.
    fn degrees(&self) -> Vec<usize> {
        self.vertices().map(|v| self.degree(v)).collect()
    }
}

/// A vertex mask over a borrowed parent graph: the induced subgraph on the
/// "alive" vertices, **without copying or relabelling anything**.
///
/// `KVCC-ENUM` recursively peels k-cores and splits off connected components;
/// with the seed representation every one of those steps copied and
/// relabelled a fresh graph. A `SubgraphView` instead flips bits in a
/// reusable word-packed [`BitSet`] mask, and a compact [`crate::CsrGraph`] is
/// only materialised once per surviving component (see
/// [`crate::CsrGraph::extract_induced`]).
///
/// The view intentionally does **not** implement [`GraphView`]: it cannot
/// return filtered neighbour *slices* without allocating. Algorithms that
/// need the mask semantics (peeling, component splitting) are provided as
/// methods.
#[derive(Clone, Debug)]
pub struct SubgraphView<'a, G: GraphView> {
    parent: &'a G,
    alive: BitSet,
    live: usize,
}

impl<'a, G: GraphView> SubgraphView<'a, G> {
    /// A view with every vertex of `parent` alive.
    pub fn new(parent: &'a G) -> Self {
        let n = parent.num_vertices();
        SubgraphView {
            parent,
            alive: BitSet::filled(n),
            live: n,
        }
    }

    /// A view with exactly the listed vertices alive (duplicates are
    /// harmless). Used by the localized seed query to restrict the mask to
    /// one connected component before any peeling happens.
    pub fn from_vertices(parent: &'a G, vertices: &[VertexId]) -> Self {
        let mut alive = BitSet::new(parent.num_vertices());
        let mut live = 0usize;
        for &v in vertices {
            if alive.insert(v as usize) {
                live += 1;
            }
        }
        SubgraphView {
            parent,
            alive,
            live,
        }
    }

    /// The parent graph the mask refers to.
    #[inline]
    pub fn parent(&self) -> &'a G {
        self.parent
    }

    /// Number of alive vertices.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether vertex `v` is alive.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive.contains(v as usize)
    }

    /// The alive mask (universe size `parent.num_vertices()`).
    #[inline]
    pub fn mask(&self) -> &BitSet {
        &self.alive
    }

    /// Removes vertex `v` from the view (no-op if already removed).
    pub fn remove(&mut self, v: VertexId) {
        if self.alive.remove(v as usize) {
            self.live -= 1;
        }
    }

    /// Degree of `v` counting only alive neighbours (`O(deg v)`).
    pub fn alive_degree(&self, v: VertexId) -> usize {
        self.parent
            .neighbors(v)
            .iter()
            .filter(|&&w| self.alive.contains(w as usize))
            .count()
    }

    /// Iteratively removes every alive vertex whose alive-degree is `< k`
    /// (k-core peeling, Algorithm 1 line 2). Returns the number of vertices
    /// removed. Runs in `O(n + m)` over the parent.
    pub fn k_core_reduce(&mut self, k: usize) -> usize {
        let n = self.parent.num_vertices();
        let mut degree: Vec<usize> = vec![0; n];
        let mut queue: Vec<VertexId> = Vec::new();
        for v in self.alive.iter_ones() {
            let d = self.alive_degree(v as VertexId);
            degree[v] = d;
            if d < k {
                queue.push(v as VertexId);
            }
        }
        let mut removed = 0usize;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            if !self.alive.contains(u as usize) {
                continue;
            }
            self.remove(u);
            removed += 1;
            for &w in self.parent.neighbors(u) {
                let w = w as usize;
                if self.alive.contains(w) {
                    degree[w] -= 1;
                    if degree[w] + 1 == k {
                        queue.push(w as VertexId);
                    }
                }
            }
        }
        removed
    }

    /// Connected components of the alive subgraph, each a sorted vertex list
    /// in **parent** ids.
    pub fn components(&self) -> Vec<Vec<VertexId>> {
        crate::traversal::connected_components_filtered(self.parent, &self.alive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraph;

    fn two_triangles() -> UndirectedGraph {
        UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
            .unwrap()
    }

    #[test]
    fn trait_methods_match_inherent_methods() {
        fn edge_count<G: GraphView>(view: &G) -> usize {
            view.num_edges()
        }
        let g = two_triangles();
        assert_eq!(edge_count(&g), 6);
        assert_eq!(GraphView::degree(&g, 2), 4);
        assert!(GraphView::has_edge(&g, 0, 1));
        assert!(!GraphView::has_edge(&g, 0, 4));
        assert_eq!(GraphView::edges(&g).count(), 6);
        assert_eq!(GraphView::min_degree_vertex(&g), Some(0));
        assert_eq!(GraphView::common_neighbor_count(&g, 0, 1), 1);
    }

    #[test]
    fn view_starts_fully_alive() {
        let g = two_triangles();
        let view = SubgraphView::new(&g);
        assert_eq!(view.live(), 5);
        assert!(view.is_alive(3));
        assert_eq!(view.alive_degree(2), 4);
        assert_eq!(view.components(), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn removing_the_cut_vertex_splits_the_view() {
        let g = two_triangles();
        let mut view = SubgraphView::new(&g);
        view.remove(2);
        view.remove(2); // idempotent
        assert_eq!(view.live(), 4);
        assert_eq!(view.components(), vec![vec![0, 1], vec![3, 4]]);
        assert_eq!(view.alive_degree(0), 1);
    }

    #[test]
    fn k_core_reduce_matches_whole_graph_peeling() {
        // Clique of 4 with a pendant path.
        let g = UndirectedGraph::from_edges(
            6,
            vec![
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        )
        .unwrap();
        let mut view = SubgraphView::new(&g);
        let removed = view.k_core_reduce(3);
        assert_eq!(removed, 2);
        let alive: Vec<VertexId> = (0..6).filter(|&v| view.is_alive(v)).collect();
        assert_eq!(alive, crate::kcore::k_core_vertices(&g, 3));
        // Peeling an already-peeled view is a no-op.
        assert_eq!(view.k_core_reduce(3), 0);
        // Peeling harder empties the view.
        assert_eq!(view.k_core_reduce(4), 4);
        assert_eq!(view.live(), 0);
        assert!(view.components().is_empty());
    }

    #[test]
    fn k_core_reduce_respects_prior_removals() {
        let g = two_triangles();
        let mut view = SubgraphView::new(&g);
        view.remove(2);
        // Without vertex 2 nothing has degree >= 2 left.
        assert_eq!(view.k_core_reduce(2), 4);
        assert_eq!(view.live(), 0);
    }
}
