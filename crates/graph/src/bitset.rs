//! Word-packed bit sets for the enumeration's hot masks.
//!
//! Almost every hot loop in the workspace walks a dense boolean mask:
//! BFS/DFS visited sets, `SubgraphView` alive masks, sweep pruned flags,
//! residual-reachability marks. A `Vec<bool>` spends one byte — and one
//! dependent load — per vertex; [`BitSet`] packs the same mask 64 vertices
//! per `u64` word, so clearing is a `memset` over `n / 64` words, membership
//! tests touch one cache line per 64 vertices, and iterating the set bits
//! skips empty words entirely with a trailing-zeros scan.
//!
//! Two variants share the word layout:
//!
//! * [`BitSet`] — a fixed-universe set over `0..len`, the drop-in
//!   replacement for the `vec![false; n]` idiom.
//! * [`EpochBitSet`] — an epoch-stamped variant mirroring the
//!   `DinicScratch` level-validity trick: `clear_all` is a single counter
//!   increment, and a word is lazily zeroed the first time the new epoch
//!   writes to it. Right for per-phase frontiers that are cleared far more
//!   often than they are filled (the Dinic BFS visits a small residual
//!   neighbourhood, then clears; an eager clear would cost `O(n / 64)` per
//!   phase regardless).
//!
//! Both uphold the invariant that bits at positions `>= len` (the unused
//! tail of the last word) stay zero, so `count_ones` and equality work on
//! whole words.

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-size set of `usize` indices packed 64 per `u64` word.
///
/// The universe is `0..len`; indexing out of range panics, exactly like the
/// `Vec<bool>` masks this type replaces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// A full set over the universe `0..len` (every index present).
    pub fn filled(len: usize) -> Self {
        let mut set = BitSet {
            words: vec![u64::MAX; len.div_ceil(WORD_BITS)],
            len,
        };
        set.mask_tail();
        set
    }

    /// Zeroes the bits of the last word beyond `len`, restoring the tail
    /// invariant after a whole-word fill.
    #[inline]
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Size of the universe (not the number of set bits).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty (`len == 0`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range for BitSet of length {}",
            self.len
        );
    }

    /// Whether `index` is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.check(index);
        self.words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
    }

    /// Adds `index`; returns `true` when it was newly inserted.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        self.check(index);
        let word = &mut self.words[index / WORD_BITS];
        let bit = 1u64 << (index % WORD_BITS);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes `index`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        self.check(index);
        let word = &mut self.words[index / WORD_BITS];
        let bit = 1u64 << (index % WORD_BITS);
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }

    /// Sets every bit in `start..end` (word-at-a-time for interior words).
    pub fn set_range(&mut self, start: usize, end: usize) {
        self.update_range(start, end, true);
    }

    /// Clears every bit in `start..end` (word-at-a-time for interior words).
    pub fn clear_range(&mut self, start: usize, end: usize) {
        self.update_range(start, end, false);
    }

    fn update_range(&mut self, start: usize, end: usize, value: bool) {
        assert!(start <= end && end <= self.len, "range out of bounds");
        if start == end {
            return;
        }
        let (first_word, first_bit) = (start / WORD_BITS, start % WORD_BITS);
        let (last_word, last_bit) = ((end - 1) / WORD_BITS, (end - 1) % WORD_BITS);
        // Mask of the affected bits within one word.
        let head = u64::MAX << first_bit;
        let tail = u64::MAX >> (WORD_BITS - 1 - last_bit);
        if first_word == last_word {
            let mask = head & tail;
            if value {
                self.words[first_word] |= mask;
            } else {
                self.words[first_word] &= !mask;
            }
            return;
        }
        if value {
            self.words[first_word] |= head;
            self.words[first_word + 1..last_word].fill(u64::MAX);
            self.words[last_word] |= tail;
        } else {
            self.words[first_word] &= !head;
            self.words[first_word + 1..last_word].fill(0);
            self.words[last_word] &= !tail;
        }
    }

    /// Removes every element (`O(len / 64)` word stores).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements in the set.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the set indices in ascending order, skipping empty words
    /// with a trailing-zeros scan (cost proportional to set bits plus
    /// `len / 64` word loads).
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set bits of a [`BitSet`] (see [`BitSet::iter_ones`]).
#[derive(Clone, Debug)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_index: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        // Strip the lowest set bit.
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

/// An epoch-stamped bit set: `clear_all` is a counter increment, and each
/// word carries the epoch in which it was last written (see the
/// [module docs](self)).
///
/// The universe grows on demand via [`EpochBitSet::ensure`] and never
/// shrinks, matching the scratch-arena discipline of `DinicScratch`.
#[derive(Clone, Debug, Default)]
pub struct EpochBitSet {
    words: Vec<u64>,
    /// Epoch in which `words[i]` was last written; a stale stamp means the
    /// word reads as all-zero and is lazily reset on the next insert.
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochBitSet {
    /// An empty set covering `0..len`.
    pub fn new(len: usize) -> Self {
        let mut set = EpochBitSet::default();
        set.ensure(len);
        set
    }

    /// Grows the universe to cover `0..len`. Never shrinks.
    pub fn ensure(&mut self, len: usize) {
        let words = len.div_ceil(WORD_BITS);
        if self.words.len() < words {
            self.words.resize(words, 0);
            // Fresh words are stamped stale relative to any live epoch.
            self.stamp.resize(words, 0);
        }
    }

    /// Empties the set by starting a new epoch; no word is touched until
    /// the new epoch writes to it.
    pub fn clear_all(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap (once per 2^32 clears): reset the stamps for real.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Brings `words[word]` into the current epoch, zeroing it if it was
    /// written in an earlier one.
    #[inline]
    fn refresh(&mut self, word: usize) -> &mut u64 {
        if self.stamp[word] != self.epoch {
            self.stamp[word] = self.epoch;
            self.words[word] = 0;
        }
        &mut self.words[word]
    }

    /// Whether `index` is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        let word = index / WORD_BITS;
        self.stamp[word] == self.epoch && self.words[word] & (1u64 << (index % WORD_BITS)) != 0
    }

    /// Adds `index`; returns `true` when it was newly inserted.
    #[inline]
    pub fn insert(&mut self, index: usize) -> bool {
        let bit = 1u64 << (index % WORD_BITS);
        let word = self.refresh(index / WORD_BITS);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes `index`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, index: usize) -> bool {
        let bit = 1u64 << (index % WORD_BITS);
        let word = self.refresh(index / WORD_BITS);
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "second insert reports already-present");
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(129));
        assert_eq!(s.count_ones(), 4);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 63, 129]);
    }

    #[test]
    fn filled_and_ranges_respect_word_boundaries() {
        let mut s = BitSet::filled(100);
        assert_eq!(s.count_ones(), 100);
        s.clear_range(10, 90);
        assert_eq!(s.count_ones(), 20);
        assert!(s.contains(9) && !s.contains(10));
        assert!(!s.contains(89) && s.contains(90));
        s.set_range(50, 52);
        assert!(s.contains(50) && s.contains(51) && !s.contains(52));
        s.set_range(0, 100);
        assert_eq!(s.count_ones(), 100);
        s.clear_range(0, 0); // empty range is a no-op
        assert_eq!(s.count_ones(), 100);
        s.clear_all();
        assert_eq!(s.count_ones(), 0);
        // Single-word sub-ranges.
        s.set_range(65, 70);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![65, 66, 67, 68, 69]);
    }

    #[test]
    fn equality_ignores_the_masked_tail() {
        let mut a = BitSet::filled(70);
        let mut b = BitSet::new(70);
        b.set_range(0, 70);
        assert_eq!(a, b);
        a.remove(69);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(64);
        let _ = s.contains(64);
    }

    #[test]
    fn empty_universe() {
        let mut s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
        assert_eq!(s.iter_ones().next(), None);
        s.clear_all();
        let f = BitSet::filled(0);
        assert_eq!(s, f);
    }

    #[test]
    fn epoch_clear_is_lazy_but_correct() {
        let mut s = EpochBitSet::new(200);
        assert!(s.insert(7));
        assert!(s.insert(199));
        assert!(s.contains(7));
        s.clear_all();
        assert!(!s.contains(7), "cleared by epoch bump");
        assert!(!s.contains(199));
        assert!(s.insert(7), "fresh after clear");
        assert!(!s.insert(7));
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(!s.remove(64), "stale word reads as empty");
    }

    #[test]
    fn epoch_ensure_grows_without_resurrecting_bits() {
        let mut s = EpochBitSet::new(10);
        s.insert(3);
        s.ensure(500);
        assert!(s.contains(3));
        assert!(!s.contains(450));
        s.insert(450);
        s.clear_all();
        assert!(!s.contains(3) && !s.contains(450));
    }

    #[test]
    fn epoch_wrap_resets_stamps() {
        let mut s = EpochBitSet::new(70);
        s.epoch = u32::MAX - 1;
        s.stamp.fill(u32::MAX - 1);
        s.insert(5);
        s.clear_all(); // epoch becomes u32::MAX
        s.insert(6);
        s.clear_all(); // wraps: stamps rewritten
        assert!(!s.contains(5));
        assert!(!s.contains(6));
        s.insert(5);
        assert!(s.contains(5));
    }
}
