//! The core undirected graph representation.

use crate::error::GraphError;
use crate::types::{Edge, VertexId};

/// A simple, undirected, unweighted graph.
///
/// Vertices are identified by consecutive integers `0..n`. The neighbour list
/// of every vertex is kept **sorted and duplicate-free**, which makes
/// [`has_edge`](UndirectedGraph::has_edge) a binary search and common-neighbour
/// counting (needed by the strong side-vertex test of §5.1.1 and by the
/// clustering coefficient of §6.1) a linear merge.
///
/// The representation intentionally stores each edge twice (once per
/// endpoint); this doubles memory but keeps neighbourhood iteration cache
/// friendly and branch free, which dominates the running time of the k-VCC
/// enumeration (BFS, flow-graph construction, sweeps).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UndirectedGraph {
    adj: Vec<Vec<VertexId>>,
    num_edges: usize,
}

/// An induced subgraph together with the mapping back to the parent graph.
///
/// `graph` uses local ids `0..vertices.len()`; `to_parent[local]` is the id of
/// that vertex in the graph the subgraph was extracted from. Compositions of
/// mappings (needed because `KVCC-ENUM` partitions recursively) are the
/// caller's responsibility.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph, with vertices relabelled to `0..k`.
    pub graph: UndirectedGraph,
    /// `to_parent[local_id]` is the corresponding vertex id in the parent.
    pub to_parent: Vec<VertexId>,
}

impl UndirectedGraph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        UndirectedGraph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Duplicate edges and self-loops are ignored. Returns an error if an
    /// endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        Self::from_edges_diagnostic(n, edges).map(|(g, _)| g)
    }

    /// [`UndirectedGraph::from_edges`] variant that also reports how many
    /// self-loops and duplicate edges were dropped.
    ///
    /// The entire edge list is **validated before any adjacency is built**:
    /// out-of-range endpoints are detected up front, so a failed build can
    /// never observe (or leak, through a future incremental API) a
    /// half-populated adjacency structure.
    pub fn from_edges_diagnostic<I>(
        n: usize,
        edges: I,
    ) -> Result<(Self, crate::csr::EdgeIngestStats), GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        if n > VertexId::MAX as usize {
            return Err(GraphError::TooManyVertices(n));
        }
        // Validation pass, before any mutation.
        let edges: Vec<(VertexId, VertexId)> = edges.into_iter().collect();
        for &(u, v) in &edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u as u64,
                    num_vertices: n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v as u64,
                    num_vertices: n,
                });
            }
        }
        let mut stats = crate::csr::EdgeIngestStats::default();
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut pushed = 0usize;
        for &(u, v) in &edges {
            if u == v {
                stats.self_loops += 1;
                continue;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            pushed += 1;
        }
        let mut g = UndirectedGraph { adj, num_edges: 0 };
        g.normalize();
        stats.duplicates = pushed - g.num_edges;
        Ok((g, stats))
    }

    /// Sorts and deduplicates every adjacency list and recomputes the edge
    /// count. Called by constructors; kept private because the public API only
    /// ever exposes normalised graphs.
    fn normalize(&mut self) {
        let mut total = 0usize;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            total += list.len();
        }
        self.num_edges = total / 2;
    }

    /// Internal constructor used by [`crate::GraphBuilder`]: takes adjacency
    /// lists that are already sorted and deduplicated.
    pub(crate) fn from_normalized_adjacency(adj: Vec<Vec<VertexId>>) -> Self {
        let total: usize = adj.iter().map(Vec::len).sum();
        UndirectedGraph {
            adj,
            num_edges: total / 2,
        }
    }

    /// Number of vertices, `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges, `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v as usize].len()
    }

    /// The sorted neighbour list of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v as usize]
    }

    /// Tests whether the edge `(u, v)` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterator over all edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u = u as VertexId;
            list.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Number of common neighbours of `u` and `v`, stopping early once `limit`
    /// is reached (the strong side-vertex test only needs to know whether the
    /// count reaches `k`). A `limit` of `usize::MAX` counts exactly.
    pub fn common_neighbors_at_least(&self, u: VertexId, v: VertexId, limit: usize) -> usize {
        let a = self.neighbors(u);
        let b = self.neighbors(v);
        let mut i = 0;
        let mut j = 0;
        let mut count = 0;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    if count >= limit {
                        return count;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Exact number of common neighbours of `u` and `v`.
    #[inline]
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        self.common_neighbors_at_least(u, v, usize::MAX)
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree over all vertices (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// A vertex of minimum degree, if the graph is non-empty.
    pub fn min_degree_vertex(&self) -> Option<VertexId> {
        self.adj
            .iter()
            .enumerate()
            .min_by_key(|(_, list)| list.len())
            .map(|(v, _)| v as VertexId)
    }

    /// Average degree `2m / n` (0.0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// Extracts the subgraph induced by `vertices`, relabelling the vertices to
    /// `0..vertices.len()` in the order given.
    ///
    /// Duplicate ids in `vertices` are ignored (the first occurrence wins).
    /// The returned [`InducedSubgraph`] carries the local→parent id mapping.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> InducedSubgraph {
        let mut to_parent: Vec<VertexId> = Vec::with_capacity(vertices.len());
        let mut to_local: Vec<VertexId> = vec![crate::INVALID_VERTEX; self.num_vertices()];
        for &v in vertices {
            if to_local[v as usize] == crate::INVALID_VERTEX {
                to_local[v as usize] = to_parent.len() as VertexId;
                to_parent.push(v);
            }
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); to_parent.len()];
        for (local, &orig) in to_parent.iter().enumerate() {
            let list = &mut adj[local];
            for &w in self.neighbors(orig) {
                let lw = to_local[w as usize];
                if lw != crate::INVALID_VERTEX {
                    list.push(lw);
                }
            }
            list.sort_unstable();
            // `self` is already duplicate free, so no dedup is needed.
        }
        InducedSubgraph {
            graph: UndirectedGraph::from_normalized_adjacency(adj),
            to_parent,
        }
    }

    /// Returns a copy of the graph with the given vertices (and their incident
    /// edges) removed, keeping the original vertex numbering.
    ///
    /// Removed vertices become isolated; this is the "remove the cut `S`" step
    /// of `OVERLAP-PARTITION` where the caller wants to keep working in the
    /// same id space.
    pub fn without_vertices(&self, remove: &[VertexId]) -> UndirectedGraph {
        let mut removed = crate::bitset::BitSet::new(self.num_vertices());
        for &v in remove {
            removed.insert(v as usize);
        }
        let mut adj: Vec<Vec<VertexId>> = Vec::with_capacity(self.num_vertices());
        for (u, list) in self.adj.iter().enumerate() {
            if removed.contains(u) {
                adj.push(Vec::new());
            } else {
                adj.push(
                    list.iter()
                        .copied()
                        .filter(|&w| !removed.contains(w as usize))
                        .collect(),
                );
            }
        }
        UndirectedGraph::from_normalized_adjacency(adj)
    }

    /// Approximate number of heap bytes used by the adjacency structure.
    ///
    /// Used by the enumerator's memory tracker to reproduce the trends of
    /// Fig. 12 without depending on allocator instrumentation.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.adj.capacity() * std::mem::size_of::<Vec<VertexId>>();
        for list in &self.adj {
            bytes += list.capacity() * std::mem::size_of::<VertexId>();
        }
        bytes + std::mem::size_of::<Self>()
    }

    /// Collects the degree of every vertex into a vector (handy for tests and
    /// for the dataset statistics of Table 1).
    pub fn degrees(&self) -> Vec<usize> {
        self.adj.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> UndirectedGraph {
        UndirectedGraph::from_edges(n, (0..n as VertexId - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn from_edges_dedups_and_drops_self_loops() {
        let g =
            UndirectedGraph::from_edges(4, vec![(0, 1), (1, 0), (1, 1), (2, 3), (2, 3)]).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0]);
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(1, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = UndirectedGraph::from_edges(2, vec![(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 2
            }
        ));
        // The bad endpoint is detected even when it comes after valid edges
        // (validation happens before any adjacency is built).
        let err = UndirectedGraph::from_edges(2, vec![(0, 1), (0, 1), (1, 9)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 9,
                num_vertices: 2
            }
        ));
    }

    #[test]
    fn from_edges_diagnostic_counts_dropped_input() {
        let (g, stats) = UndirectedGraph::from_edges_diagnostic(
            4,
            vec![(0, 1), (1, 0), (1, 1), (2, 3), (2, 3), (3, 2)],
        )
        .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(stats.self_loops, 1);
        assert_eq!(stats.duplicates, 3);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = UndirectedGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = UndirectedGraph::from_edges(4, vec![(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.degree(0), 3);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        assert_eq!(g.min_degree_vertex(), Some(1));
        assert_eq!(g.degrees(), vec![3, 1, 1, 1]);
    }

    #[test]
    fn common_neighbors() {
        // 0 and 1 share neighbours {2, 3, 4}.
        let g =
            UndirectedGraph::from_edges(5, vec![(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)])
                .unwrap();
        assert_eq!(g.common_neighbor_count(0, 1), 3);
        assert_eq!(g.common_neighbors_at_least(0, 1, 2), 2);
        assert_eq!(g.common_neighbor_count(2, 4), 2);
        assert_eq!(g.common_neighbor_count(0, 4), 0);
    }

    #[test]
    fn induced_subgraph_relabels_and_maps_back() {
        let g =
            UndirectedGraph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .unwrap();
        let sub = g.induced_subgraph(&[1, 2, 3, 1]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 2);
        assert_eq!(sub.to_parent, vec![1, 2, 3]);
        assert!(sub.graph.has_edge(0, 1)); // (1,2) in parent ids
        assert!(sub.graph.has_edge(1, 2)); // (2,3) in parent ids
        assert!(!sub.graph.has_edge(0, 2));
    }

    #[test]
    fn without_vertices_keeps_numbering() {
        let g = path_graph(5);
        let h = g.without_vertices(&[2]);
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.degree(2), 0);
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(3, 4));
        assert!(!h.has_edge(1, 2));
    }

    #[test]
    fn memory_bytes_is_monotone_in_size() {
        let small = path_graph(10);
        let big = path_graph(1000);
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = UndirectedGraph::new(0);
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree_vertex(), None);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }
}
