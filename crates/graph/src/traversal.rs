//! Breadth-first / depth-first traversals, connected components and
//! reachability helpers.

use std::collections::VecDeque;

use crate::bitset::BitSet;
use crate::types::{VertexId, INVALID_VERTEX};
use crate::view::GraphView;

/// Distance value meaning "unreachable from the BFS source".
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances (number of hops) from `src`.
///
/// Unreachable vertices get [`UNREACHABLE`]. Runs in `O(n + m)`.
pub fn bfs_distances<G: GraphView>(g: &G, src: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    if g.num_vertices() == 0 {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS that also records the parent of every reached vertex (the BFS tree).
///
/// Returns `(dist, parent)`; roots and unreachable vertices have parent
/// [`INVALID_VERTEX`].
pub fn bfs_tree<G: GraphView>(g: &G, src: VertexId) -> (Vec<u32>, Vec<VertexId>) {
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut parent = vec![INVALID_VERTEX; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// The eccentricity of `src`: the largest finite BFS distance from it.
pub fn eccentricity<G: GraphView>(g: &G, src: VertexId) -> u32 {
    bfs_distances(g, src)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// The connected component containing `src`, as a sorted vertex list.
///
/// Runs in time proportional to the component (plus the `O(n)` visited mask),
/// so callers restricted to one region never pay for traversing the rest of
/// the graph.
pub fn component_of<G: GraphView>(g: &G, src: VertexId) -> Vec<VertexId> {
    assert!(
        (src as usize) < g.num_vertices(),
        "source vertex out of range"
    );
    let mut seen = BitSet::new(g.num_vertices());
    let mut members = vec![src];
    seen.insert(src as usize);
    let mut head = 0;
    while head < members.len() {
        let u = members[head];
        head += 1;
        for &v in g.neighbors(u) {
            if seen.insert(v as usize) {
                members.push(v);
            }
        }
    }
    members.sort_unstable();
    members
}

/// Assigns every vertex a connected-component id in `0..count` and returns
/// `(component_id, count)`.
pub fn connected_component_ids<G: GraphView>(g: &G) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = count;
        queue.push_back(start as VertexId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// The connected components as explicit vertex lists, each sorted ascending.
pub fn connected_components<G: GraphView>(g: &G) -> Vec<Vec<VertexId>> {
    let (ids, count) = connected_component_ids(g);
    let mut comps: Vec<Vec<VertexId>> = vec![Vec::new(); count];
    for (v, &c) in ids.iter().enumerate() {
        comps[c as usize].push(v as VertexId);
    }
    comps
}

/// Connected components restricted to a subset of "alive" vertices.
///
/// Vertices absent from `alive` are treated as removed (as in the
/// `OVERLAP-PARTITION` step after deleting the cut `S`). The returned lists
/// only contain alive vertices. Iterating the start candidates walks the
/// alive mask word-by-word, so fully dead regions cost one load per 64
/// vertices.
pub fn connected_components_filtered<G: GraphView>(g: &G, alive: &BitSet) -> Vec<Vec<VertexId>> {
    assert_eq!(
        alive.len(),
        g.num_vertices(),
        "alive mask must cover every vertex"
    );
    let n = g.num_vertices();
    let mut seen = BitSet::new(n);
    let mut comps = Vec::new();
    let mut queue = VecDeque::new();
    for start in alive.iter_ones() {
        if seen.contains(start) {
            continue;
        }
        let mut component = Vec::new();
        seen.insert(start);
        queue.push_back(start as VertexId);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for &v in g.neighbors(u) {
                if alive.contains(v as usize) && seen.insert(v as usize) {
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        comps.push(component);
    }
    comps
}

/// Whether the graph is connected. The empty graph and single vertices are
/// considered connected.
pub fn is_connected<G: GraphView>(g: &G) -> bool {
    if g.num_vertices() <= 1 {
        return true;
    }
    let dist = bfs_distances(g, 0);
    dist.iter().all(|&d| d != UNREACHABLE)
}

/// Vertices sorted by **non-ascending** BFS distance from `src`, skipping
/// unreachable vertices and `src` itself.
///
/// This is exactly the processing order of phase 1 of `GLOBAL-CUT*`
/// (Algorithm 3, line 11): vertices far from the source are more likely to be
/// separated from it by a small cut, so testing them first finds cuts sooner.
pub fn vertices_by_descending_distance<G: GraphView>(g: &G, src: VertexId) -> Vec<VertexId> {
    let dist = bfs_distances(g, src);
    let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| v != src && dist[v as usize] != UNREACHABLE)
        .collect();
    // Stable sort keeps ties in ascending id order, which makes runs
    // reproducible across platforms.
    order.sort_by(|&a, &b| dist[b as usize].cmp(&dist[a as usize]).then(a.cmp(&b)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UndirectedGraph;

    fn cycle(n: usize) -> UndirectedGraph {
        UndirectedGraph::from_edges(
            n,
            (0..n as VertexId).map(|i| (i, ((i + 1) % n as VertexId))),
        )
        .unwrap()
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(eccentricity(&g, 0), 3);
    }

    #[test]
    fn bfs_tree_parents_are_consistent() {
        let g = cycle(5);
        let (dist, parent) = bfs_tree(&g, 0);
        assert_eq!(parent[0], INVALID_VERTEX);
        for v in 1..5u32 {
            let p = parent[v as usize];
            assert!(g.has_edge(v, p));
            assert_eq!(dist[v as usize], dist[p as usize] + 1);
        }
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = UndirectedGraph::from_edges(6, vec![(0, 1), (1, 2), (3, 4)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
        assert!(!is_connected(&g));
        let (ids, count) = connected_component_ids(&g);
        assert_eq!(count, 3);
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[3]);
    }

    #[test]
    fn filtered_components_respect_mask() {
        // Path 0-1-2-3-4; removing 2 splits it in two.
        let g = UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mut alive = BitSet::filled(5);
        alive.remove(2);
        let comps = connected_components_filtered(&g, &alive);
        assert_eq!(comps, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn unreachable_vertices_marked() {
        let g = UndirectedGraph::from_edges(4, vec![(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
        assert!(is_connected(&UndirectedGraph::new(1)));
        assert!(is_connected(&UndirectedGraph::new(0)));
    }

    #[test]
    fn descending_distance_order() {
        let g = UndirectedGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let order = vertices_by_descending_distance(&g, 0);
        assert_eq!(order, vec![4, 3, 2, 1]);
    }
}
