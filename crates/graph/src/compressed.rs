//! Delta + varint compressed CSR adjacency.
//!
//! A [`crate::CsrGraph`] stores every neighbour as a fixed 4-byte id. Real
//! adjacency rows are sorted, and — especially after a locality-improving
//! relabelling ([`crate::reorder`]) — consecutive neighbours are numerically
//! close, so the gaps between them are small. [`CompressedCsrGraph`] exploits
//! that: each row stores its first neighbour as an LEB128 varint and every
//! subsequent neighbour as the varint of the *gap minus one* (rows are
//! strictly increasing, so gaps are `>= 1`). On reordered graphs most gaps
//! fit in a single byte, shrinking the neighbour array by up to 4×.
//!
//! Decoding a row is sequential, so the type cannot hand out `&[VertexId]`
//! slices straight from the compressed bytes. Instead every row is decoded
//! **once, lazily, on first access** into a per-row cache
//! ([`std::sync::OnceLock`]), which makes the [`GraphView`] implementation
//! safe, `Sync`, and allocation-free on repeated access. The compressed bytes
//! remain the authoritative storage and wire form; the cache is a decode
//! accelerator whose cost shows up honestly in
//! [`memory_bytes`](GraphView::memory_bytes). Workloads that touch every row
//! repeatedly therefore pay full decoded memory *plus* the compressed bytes —
//! compression wins when graphs are stored, shipped, or only partially
//! traversed (see the README's "memory layout & performance" notes).
//!
//! # Pooled decode buffers
//!
//! A process that hosts *many* compressed graphs — a `kvcc-service` engine
//! hot-swapping datasets, or worker scratches decoding shipped work items —
//! would otherwise allocate a fresh buffer for every row it ever decodes and
//! free them all on unload. Attaching a shared [`RowPool`]
//! ([`CompressedCsrGraph::with_pool`]) recycles the decoded-row buffers
//! instead: rows are decoded into capacity taken from the pool, and dropping
//! the graph returns every cached row to the pool for the next graph. One
//! pool per engine bounds the allocator churn of the whole fleet of slots
//! and workers to the high-water mark of the largest resident set.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::csr::CsrGraph;
use crate::types::VertexId;
use crate::view::GraphView;

// The varint and delta-row primitives started life here; they now live in
// [`crate::codec`] so every wire format shares one implementation. Re-exported
// under their original paths for compatibility.
pub use crate::codec::{decode_row, decode_row_into, encode_row, varint};

/// A shared recycling pool for decoded-row buffers (see the
/// [module docs](self)). Cheap to share via [`Arc`]; all methods take
/// `&self`.
#[derive(Debug)]
pub struct RowPool {
    /// Recycled buffers, sorted by ascending capacity so `acquire` can
    /// best-fit its capacity hint (a tiny row never pins a huge buffer).
    free: Mutex<Vec<Vec<VertexId>>>,
    /// Maximum number of buffers retained; releases beyond it are dropped.
    max_buffers: usize,
    /// Buffers handed out that reused pooled capacity (telemetry).
    recycled: AtomicU64,
}

impl Default for RowPool {
    fn default() -> Self {
        RowPool::new(Self::DEFAULT_MAX_BUFFERS)
    }
}

impl RowPool {
    /// Default retention cap: enough for the decode cache of one mid-sized
    /// graph without letting an unload flood the pool forever.
    pub const DEFAULT_MAX_BUFFERS: usize = 65_536;

    /// Creates a pool retaining at most `max_buffers` recycled buffers.
    pub fn new(max_buffers: usize) -> Self {
        RowPool {
            free: Mutex::new(Vec::new()),
            max_buffers,
            recycled: AtomicU64::new(0),
        }
    }

    /// Takes the **best-fitting** recycled buffer — the smallest one whose
    /// capacity covers `min_capacity` — cleared, with its capacity intact.
    /// When no pooled buffer is large enough a fresh allocation is returned
    /// instead: growing an undersized buffer would reallocate anyway, and
    /// the pooled capacity stays available for rows it actually fits.
    fn acquire(&self, min_capacity: usize) -> Vec<VertexId> {
        if min_capacity == 0 {
            // Zero-degree rows would otherwise pin the smallest pooled
            // buffer forever while holding nothing.
            return Vec::new();
        }
        let recycled = {
            let mut free = self.free.lock().unwrap();
            let at = free.partition_point(|b| b.capacity() < min_capacity);
            (at < free.len()).then(|| free.remove(at))
        };
        match recycled {
            Some(mut buffer) => {
                buffer.clear();
                self.recycled.fetch_add(1, Ordering::Relaxed);
                buffer
            }
            None => Vec::with_capacity(min_capacity),
        }
    }

    /// Returns a buffer to the pool (dropped when the pool is full or the
    /// buffer has no capacity worth keeping).
    fn release(&self, buffer: Vec<VertexId>) {
        if buffer.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().unwrap();
        if free.len() < self.max_buffers {
            // Keep the list sorted by ascending capacity for the best-fit
            // search; insertion cost is fine at recycle granularity.
            let at = free.partition_point(|b| b.capacity() <= buffer.capacity());
            free.insert(at, buffer);
        }
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    /// How many acquisitions were served from recycled capacity since the
    /// pool was created.
    pub fn recycled_count(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }
}

/// An undirected graph whose neighbour lists are stored delta + varint
/// compressed, with a lazy per-row decode cache (see the [module
/// docs](self)).
///
/// Implements [`GraphView`], so every generic algorithm in the workspace —
/// enumeration, hierarchy, queries, verification, the `kecc` baseline, index
/// builds — runs on it unchanged and produces byte-identical output to the
/// uncompressed [`CsrGraph`] (asserted by the substrate-parity suite).
#[derive(Debug, Default)]
pub struct CompressedCsrGraph {
    /// `data[byte_offsets[v] as usize..byte_offsets[v + 1] as usize]` is the
    /// varint stream of row `v`.
    byte_offsets: Vec<u32>,
    /// Concatenated varint row streams.
    data: Vec<u8>,
    /// Per-vertex neighbour count (needed to decode and for O(1) degrees).
    degrees: Vec<u32>,
    /// Number of undirected edges.
    num_edges: usize,
    /// Lazily decoded rows; `OnceLock` keeps `neighbors(&self)` safe.
    rows: Vec<OnceLock<Vec<VertexId>>>,
    /// Optional shared recycling pool for the decoded-row buffers.
    pool: Option<Arc<RowPool>>,
}

impl Clone for CompressedCsrGraph {
    /// Clones the compressed payload only; the decode cache restarts cold
    /// (the pool attachment is shared).
    fn clone(&self) -> Self {
        CompressedCsrGraph {
            byte_offsets: self.byte_offsets.clone(),
            data: self.data.clone(),
            degrees: self.degrees.clone(),
            num_edges: self.num_edges,
            rows: (0..self.degrees.len()).map(|_| OnceLock::new()).collect(),
            pool: self.pool.clone(),
        }
    }
}

impl Drop for CompressedCsrGraph {
    /// Returns every materialised decode-cache row to the attached pool (if
    /// any), so unloading one graph funds the decode cache of the next.
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            for cell in self.rows.drain(..) {
                if let Some(row) = cell.into_inner() {
                    pool.release(row);
                }
            }
        }
    }
}

impl CompressedCsrGraph {
    /// Compresses a [`CsrGraph`].
    pub fn from_csr(g: &CsrGraph) -> Self {
        Self::from_view(g)
    }

    /// Compresses any [`GraphView`].
    pub fn from_view<G: GraphView>(g: &G) -> Self {
        let n = g.num_vertices();
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut degrees = Vec::with_capacity(n);
        // Small gaps dominate, so reserve roughly one byte per entry plus
        // headroom for the per-row absolute first values.
        let mut data = Vec::with_capacity(2 * g.num_edges() + n);
        byte_offsets.push(0u32);
        for v in 0..n as VertexId {
            let row = g.neighbors(v);
            encode_row(row, &mut data);
            degrees.push(row.len() as u32);
            byte_offsets.push(data.len() as u32);
        }
        CompressedCsrGraph {
            byte_offsets,
            data,
            degrees,
            num_edges: g.num_edges(),
            rows: (0..n).map(|_| OnceLock::new()).collect(),
            pool: None,
        }
    }

    /// Attaches a shared [`RowPool`]: decode-cache rows are taken from the
    /// pool's recycled capacity and returned to it when this graph drops
    /// (see the [module docs](self)). Must be called before the first
    /// decode; typically right after construction.
    pub fn with_pool(mut self, pool: Arc<RowPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Decompresses back into plain CSR form (used by round-trip tests and by
    /// callers that decide compression does not pay for their workload).
    ///
    /// Streams every row straight from the varint payload into the output
    /// neighbour array with the batched decoder, bypassing the per-row
    /// `OnceLock` decode cache entirely: a conversion neither pays for rows
    /// it already cached nor populates the cache as a side effect.
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.num_edges);
        offsets.push(0u32);
        for v in 0..n {
            let start = self.byte_offsets[v] as usize;
            let end = crate::codec::decode_row_append(
                &self.data,
                start,
                self.degrees[v] as usize,
                &mut neighbors,
            )
            .expect("internal varint stream is valid by construction");
            debug_assert_eq!(end, self.byte_offsets[v + 1] as usize);
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph::from_parts(offsets, neighbors)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v`, answered from the count array without decoding.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// The neighbour slice of `v`, decoding the row on first access (into
    /// recycled capacity when a [`RowPool`] is attached) with the batched
    /// four-gaps-per-iteration decoder ([`crate::codec::decode_row_into`]).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.rows[v as usize].get_or_init(|| {
            let degree = self.degrees[v as usize] as usize;
            let mut row = match &self.pool {
                Some(pool) => pool.acquire(degree),
                None => Vec::new(),
            };
            let start = self.byte_offsets[v as usize] as usize;
            let end = decode_row_into(&self.data, start, degree, &mut row)
                .expect("internal varint stream is valid by construction");
            debug_assert_eq!(end, self.byte_offsets[v as usize + 1] as usize);
            row
        })
    }

    /// Size of the compressed adjacency payload in bytes (the varint streams
    /// plus offsets and counts, excluding the decode cache).
    pub fn compressed_bytes(&self) -> usize {
        self.data.len()
            + self.byte_offsets.len() * std::mem::size_of::<u32>()
            + self.degrees.len() * std::mem::size_of::<u32>()
    }

    /// Ratio of the uncompressed neighbour-array bytes (`4 · 2m`) to the
    /// varint streams; `> 1` means compression pays for storage. The offset
    /// and count arrays are excluded — both representations carry an
    /// `O(n)`-word index next to the neighbour payload.
    pub fn compression_ratio(&self) -> f64 {
        let raw = (2 * self.num_edges * std::mem::size_of::<VertexId>()) as f64;
        let packed = self.data.len() as f64;
        if packed == 0.0 {
            1.0
        } else {
            raw / packed
        }
    }

    /// Number of rows currently materialised in the decode cache.
    pub fn cached_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.get().is_some()).count()
    }
}

impl GraphView for CompressedCsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CompressedCsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CompressedCsrGraph::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        CompressedCsrGraph::neighbors(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CompressedCsrGraph::degree(self, v)
    }

    /// Compressed payload plus whatever the decode cache currently holds, so
    /// the Fig. 12-style trackers see the true cost of the representation.
    fn memory_bytes(&self) -> usize {
        self.compressed_bytes()
            + self.rows.capacity() * std::mem::size_of::<OnceLock<Vec<VertexId>>>()
            + self
                .rows
                .iter()
                .filter_map(|r| r.get())
                .map(|row| row.capacity() * std::mem::size_of::<VertexId>())
                .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

impl From<&CsrGraph> for CompressedCsrGraph {
    fn from(g: &CsrGraph) -> Self {
        CompressedCsrGraph::from_csr(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> CsrGraph {
        CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap()
    }

    #[test]
    fn varint_roundtrip_edge_values() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX];
        for &v in &values {
            buf.clear();
            varint::encode_u32(v, &mut buf);
            assert_eq!(varint::decode_u32(&buf, 0), Some((v, buf.len())), "{v}");
        }
        // Truncated stream.
        assert_eq!(varint::decode_u32(&[0x80], 0), None);
        // Overlong stream (6 continuation bytes).
        assert_eq!(
            varint::decode_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], 0),
            None
        );
        // Fifth byte overflowing the u32 value space.
        assert_eq!(varint::decode_u32(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F], 0), None);
    }

    #[test]
    fn row_codec_roundtrip() {
        let mut buf = Vec::new();
        let rows: Vec<Vec<VertexId>> = vec![
            vec![],
            vec![7],
            vec![0, 1, 2, 3],
            vec![5, 900, 901, 1_000_000],
        ];
        for row in rows {
            buf.clear();
            encode_row(&row, &mut buf);
            let (back, end) = decode_row(&buf, 0, row.len()).unwrap();
            assert_eq!(back, row);
            assert_eq!(end, buf.len());
        }
        assert_eq!(decode_row(&[0x03], 0, 2), None, "truncation is detected");
    }

    #[test]
    fn compressed_graph_matches_plain_csr() {
        let g = two_triangles();
        let c = CompressedCsrGraph::from_csr(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.cached_rows(), 0, "cache starts cold");
        for v in g.vertices() {
            assert_eq!(c.neighbors(v), g.neighbors(v));
            assert_eq!(GraphView::degree(&c, v), g.degree(v));
        }
        assert_eq!(c.cached_rows(), 5);
        assert_eq!(c.to_csr(), g);
        assert!(GraphView::has_edge(&c, 3, 4));
        assert!(!GraphView::has_edge(&c, 0, 4));
        assert!(c.memory_bytes() > 0);
    }

    #[test]
    fn small_gap_rows_compress_below_raw_size() {
        // A long path: every row is 1–2 neighbours at distance 1, so the
        // varint payload is tiny compared to 4 bytes per entry.
        let n = 2_000u32;
        let g = CsrGraph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1))).unwrap();
        let c = CompressedCsrGraph::from_csr(&g);
        assert!(c.compression_ratio() > 1.0, "{}", c.compression_ratio());
        assert_eq!(c.to_csr(), g);
    }

    #[test]
    fn to_csr_streams_without_touching_the_cache() {
        let g = two_triangles();
        let c = CompressedCsrGraph::from_csr(&g);
        assert_eq!(c.to_csr(), g);
        assert_eq!(c.cached_rows(), 0, "conversion must not populate the cache");
        // Rows already cached are simply not consulted.
        let _ = c.neighbors(2);
        assert_eq!(c.to_csr(), g);
        assert_eq!(c.cached_rows(), 1);
    }

    #[test]
    fn clone_restarts_the_cache_but_keeps_the_payload() {
        let g = two_triangles();
        let c = CompressedCsrGraph::from_csr(&g);
        let _ = c.neighbors(2);
        assert_eq!(c.cached_rows(), 1);
        let cloned = c.clone();
        assert_eq!(cloned.cached_rows(), 0);
        assert_eq!(cloned.to_csr(), g);
    }

    #[test]
    fn pooled_rows_are_recycled_across_graphs() {
        let pool = Arc::new(RowPool::default());
        let g = two_triangles();
        {
            let c = CompressedCsrGraph::from_csr(&g).with_pool(Arc::clone(&pool));
            for v in 0..5 {
                let _ = c.neighbors(v);
            }
            assert_eq!(c.cached_rows(), 5);
            // Nothing recycled yet: the pool started empty.
            assert_eq!(pool.recycled_count(), 0);
            assert_eq!(pool.pooled_buffers(), 0);
        }
        // Dropping the graph parked its five decoded rows.
        assert_eq!(pool.pooled_buffers(), 5);
        let c2 = CompressedCsrGraph::from_csr(&g).with_pool(Arc::clone(&pool));
        for v in 0..5 {
            assert_eq!(c2.neighbors(v), g.neighbors(v));
        }
        // Every row of the second graph decoded into recycled capacity.
        assert_eq!(pool.recycled_count(), 5);
        assert_eq!(pool.pooled_buffers(), 0);
        drop(c2);
        assert_eq!(pool.pooled_buffers(), 5);
    }

    #[test]
    fn pool_retention_cap_drops_excess_buffers() {
        let pool = Arc::new(RowPool::new(2));
        let g = two_triangles();
        let c = CompressedCsrGraph::from_csr(&g).with_pool(Arc::clone(&pool));
        for v in 0..5 {
            let _ = c.neighbors(v);
        }
        drop(c);
        assert_eq!(pool.pooled_buffers(), 2, "cap respected");
        // Best fit: the smallest buffer covering the hint is handed out, so
        // a tiny request never pins the largest pooled allocation.
        let small = pool.acquire(1);
        assert!(small.capacity() >= 1);
        assert_eq!(pool.recycled_count(), 1);
        let remaining = pool.acquire(1);
        assert!(remaining.capacity() >= small.capacity());
        // A hint no pooled buffer covers allocates fresh instead of forcing
        // an undersized buffer to reallocate.
        pool.release(small);
        let fresh = pool.acquire(1_000);
        assert!(fresh.capacity() >= 1_000);
        assert_eq!(pool.pooled_buffers(), 1, "the unfit buffer stays pooled");
    }

    #[test]
    fn empty_graphs_work() {
        let empty = CompressedCsrGraph::from_csr(&CsrGraph::new(0));
        assert!(GraphView::is_empty(&empty));
        assert_eq!(empty.compression_ratio(), 1.0);
        let isolated = CompressedCsrGraph::from_csr(&CsrGraph::new(3));
        assert_eq!(isolated.num_vertices(), 3);
        assert_eq!(isolated.neighbors(1), &[] as &[VertexId]);
    }
}
