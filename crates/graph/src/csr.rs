//! Compressed sparse row (CSR) graph representation.
//!
//! The seed representation (`Vec<Vec<VertexId>>`) pays one heap allocation
//! and one pointer indirection per vertex; the enumeration's hot loops (BFS,
//! flow-graph construction, sweeps) therefore chase pointers on every
//! neighbour access. [`CsrGraph`] packs all adjacency into two flat arrays —
//! `offsets` (length `n + 1`) and `neighbors` (length `2m`) — so neighbour
//! iteration is a contiguous slice read and the whole structure is two
//! allocations regardless of `n`.
//!
//! Both representations implement [`GraphView`], so every algorithm in the
//! workspace accepts either; `KVCC-ENUM` uses CSR for all internal work
//! items.

use crate::error::GraphError;
use crate::types::{Edge, VertexId};
use crate::view::GraphView;
use crate::INVALID_VERTEX;

/// Ingestion diagnostics returned by the validating constructors: how much of
/// the raw input was dropped while normalising.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeIngestStats {
    /// Number of self-loops `(v, v)` dropped.
    pub self_loops: usize,
    /// Number of duplicate edge occurrences dropped (counting each repeat
    /// beyond the first, in either orientation).
    pub duplicates: usize,
}

/// Magic bytes opening every serialised CSR buffer.
pub(crate) const CSR_WIRE_MAGIC: [u8; 4] = *b"KCSR";
/// Version byte of the fixed-width wire format.
const CSR_WIRE_VERSION: u8 = 1;
/// Version byte of the varint/delta compact wire format.
const CSR_WIRE_VERSION_COMPACT: u8 = 2;
/// Version byte of the aligned, zero-copy-capable layout ([`crate::kcsr`]).
pub(crate) const CSR_WIRE_VERSION_ALIGNED: u8 = 3;
/// Header size: magic + version + `n` + neighbour count.
const CSR_WIRE_HEADER: usize = 4 + 1 + 4 + 4;
/// Compact header size: magic + version + `n` (the neighbour count is
/// implied by the per-row degree varints).
const CSR_COMPACT_HEADER: usize = 4 + 1 + 4;

/// An undirected graph in compressed sparse row form.
///
/// Vertices are `0..n`; `neighbors(v)` is the slice
/// `neighbors[offsets[v] .. offsets[v + 1]]`, sorted ascending and
/// duplicate-free. Each undirected edge is stored twice (once per endpoint).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` delimits the neighbour slice of `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-vertex-sorted neighbour lists (length `2m`).
    neighbors: Vec<VertexId>,
}

/// An induced CSR subgraph together with the mapping back to the parent
/// graph (CSR analogue of [`crate::InducedSubgraph`]).
#[derive(Clone, Debug)]
pub struct CsrSubgraph {
    /// The subgraph, with vertices relabelled to `0..k`.
    pub graph: CsrGraph,
    /// `to_parent[local_id]` is the corresponding vertex id in the parent.
    pub to_parent: Vec<VertexId>,
}

impl CsrGraph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Builds a graph with `n` vertices from an edge list.
    ///
    /// Duplicate edges and self-loops are dropped. The entire input is
    /// **validated before any structure is built**, so an error can never
    /// leave a half-populated graph behind. Returns an error if an endpoint
    /// is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        Self::from_edges_diagnostic(n, edges).map(|(g, _)| g)
    }

    /// [`CsrGraph::from_edges`] variant that also reports how many self-loops
    /// and duplicate edges were dropped (io diagnostics).
    pub fn from_edges_diagnostic<I>(
        n: usize,
        edges: I,
    ) -> Result<(Self, EdgeIngestStats), GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        if n > VertexId::MAX as usize {
            return Err(GraphError::TooManyVertices(n));
        }
        // Validation pass: collect and range-check every edge before any
        // adjacency structure is touched.
        let edges: Vec<Edge> = edges.into_iter().collect();
        for &(u, v) in &edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u as u64,
                    num_vertices: n,
                });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v as u64,
                    num_vertices: n,
                });
            }
        }
        let mut stats = EdgeIngestStats::default();

        // Counting pass (self-loops excluded).
        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            if u == v {
                stats.self_loops += 1;
                continue;
            }
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }

        // Fill pass.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as VertexId; acc as usize];
        for &(u, v) in &edges {
            if u == v {
                continue;
            }
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }

        // Sort and dedup each row in place, compacting as we go.
        let mut write = 0usize;
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u32);
        let mut dropped_directed = 0usize;
        for v in 0..n {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            neighbors[start..end].sort_unstable();
            let mut prev = INVALID_VERTEX;
            for i in start..end {
                let w = neighbors[i];
                if w == prev {
                    dropped_directed += 1;
                    continue;
                }
                prev = w;
                neighbors[write] = w;
                write += 1;
            }
            new_offsets.push(write as u32);
        }
        neighbors.truncate(write);
        // Each duplicate undirected edge occurrence was stored in two rows.
        stats.duplicates = dropped_directed / 2;
        Ok((
            CsrGraph {
                offsets: new_offsets,
                neighbors,
            },
            stats,
        ))
    }

    /// Assembles a graph directly from its two flat arrays. Internal
    /// constructor for passes that produce already-valid CSR data (reordering,
    /// varint decompression); the [`GraphView`] invariants are only
    /// debug-asserted, so every crate-internal producer must guarantee them.
    pub(crate) fn from_parts(offsets: Vec<u32>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            neighbors.len()
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        CsrGraph { offsets, neighbors }
    }

    /// Copies any [`GraphView`] into CSR form.
    pub fn from_view<G: GraphView>(g: &G) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0u32);
        for v in 0..n as VertexId {
            neighbors.extend_from_slice(g.neighbors(v));
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph { offsets, neighbors }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Edge test (binary search on the smaller neighbour slice).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        GraphView::has_edge(self, u, v)
    }

    /// Approximate heap bytes of the two flat arrays.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.neighbors.capacity() * std::mem::size_of::<VertexId>()
            + std::mem::size_of::<Self>()
    }

    /// The raw offset array (`n + 1` entries; row `v` is
    /// `offsets[v]..offsets[v + 1]`). Exposed for wire serialisation and
    /// zero-copy interop; the adjacency itself is in
    /// [`CsrGraph::neighbor_data`].
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The concatenated neighbour array (length `2m`).
    #[inline]
    pub fn neighbor_data(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Serialises the graph into a self-describing, endian-stable byte
    /// buffer (no third-party serializer; see the format notes on
    /// [`CsrGraph::from_bytes`]).
    ///
    /// Layout: magic `b"KCSR"`, format version `u8`, then `n` and
    /// `len(neighbors)` as little-endian `u32`, then the `n + 1` offsets and
    /// the neighbour array, all little-endian `u32`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(CSR_WIRE_HEADER + 4 * (self.offsets.len() + self.neighbors.len()));
        out.extend_from_slice(&CSR_WIRE_MAGIC);
        out.push(CSR_WIRE_VERSION);
        out.extend_from_slice(&(self.num_vertices() as u32).to_le_bytes());
        out.extend_from_slice(&(self.neighbors.len() as u32).to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for &w in &self.neighbors {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Serialises the graph into the **compact** wire form: the same header
    /// style as [`CsrGraph::to_bytes`] (magic, version 2, `n` little-endian)
    /// but rows stored as a degree varint followed by the delta + varint
    /// encoding of the sorted neighbour slice ([`crate::codec::encode_row`]).
    /// On typical graphs this is 2–4× smaller than the fixed-width form;
    /// [`CsrGraph::from_bytes`] accepts both versions.
    pub fn to_bytes_compact(&self) -> Vec<u8> {
        let n = self.num_vertices();
        // Small gaps dominate after sorting, so reserve roughly one byte per
        // neighbour entry plus per-row degree headroom.
        let mut out = Vec::with_capacity(CSR_COMPACT_HEADER + self.neighbors.len() + 2 * n);
        out.extend_from_slice(&CSR_WIRE_MAGIC);
        out.push(CSR_WIRE_VERSION_COMPACT);
        out.extend_from_slice(&(n as u32).to_le_bytes());
        for v in 0..n as VertexId {
            let row = CsrGraph::neighbors(self, v);
            crate::codec::varint::encode_u32(row.len() as u32, &mut out);
            crate::codec::encode_row(row, &mut out);
        }
        out
    }

    /// Deserialises a buffer produced by [`CsrGraph::to_bytes`] or
    /// [`CsrGraph::to_bytes_compact`], validating the structural invariants
    /// (monotone offsets, in-range and per-row strictly-sorted neighbours,
    /// symmetric adjacency) so a corrupted or hostile buffer can never
    /// produce a graph that later panics.
    ///
    /// This is the transport format for cross-process work items: a shard
    /// receives `(csr bytes, id map)` and can start enumerating without any
    /// shared memory.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, GraphError> {
        let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
        if bytes.len() < CSR_COMPACT_HEADER {
            return Err(malformed("buffer shorter than the header"));
        }
        if bytes[..4] != CSR_WIRE_MAGIC {
            return Err(malformed("bad magic (not a CSR graph buffer)"));
        }
        let (offsets, neighbors) = match bytes[4] {
            CSR_WIRE_VERSION => Self::parse_fixed(bytes)?,
            CSR_WIRE_VERSION_COMPACT => Self::parse_compact(bytes)?,
            // The aligned layout carries its own header checksum and runs the
            // same row validation internally, so it returns directly.
            CSR_WIRE_VERSION_ALIGNED => return crate::kcsr::decode_kcsr(bytes),
            _ => return Err(malformed("unsupported format version")),
        };
        let graph = CsrGraph { offsets, neighbors };
        graph.validate_rows()?;
        Ok(graph)
    }

    /// Parses the version-1 fixed-width layout into `(offsets, neighbors)`.
    fn parse_fixed(bytes: &[u8]) -> Result<(Vec<u32>, Vec<VertexId>), GraphError> {
        let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
        if bytes.len() < CSR_WIRE_HEADER {
            return Err(malformed("buffer shorter than the header"));
        }
        let read_u32 =
            |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let n = read_u32(5) as usize;
        let num_neighbors = read_u32(9) as usize;
        let expected = (CSR_WIRE_HEADER)
            .checked_add(
                4usize
                    .checked_mul(n + 1)
                    .ok_or_else(|| malformed("vertex count overflows"))?,
            )
            .and_then(|t| t.checked_add(4 * num_neighbors))
            .ok_or_else(|| malformed("header sizes overflow"))?;
        if bytes.len() != expected {
            return Err(malformed("buffer length disagrees with the header"));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        for i in 0..=n {
            offsets.push(read_u32(CSR_WIRE_HEADER + 4 * i));
        }
        if offsets[0] != 0 || offsets[n] as usize != num_neighbors {
            return Err(malformed("offset array does not span the adjacency"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(malformed("offsets must be non-decreasing"));
        }
        let base = CSR_WIRE_HEADER + 4 * (n + 1);
        let mut neighbors = Vec::with_capacity(num_neighbors);
        for i in 0..num_neighbors {
            neighbors.push(read_u32(base + 4 * i));
        }
        Ok((offsets, neighbors))
    }

    /// Parses the version-2 varint/delta layout into `(offsets, neighbors)`.
    fn parse_compact(bytes: &[u8]) -> Result<(Vec<u32>, Vec<VertexId>), GraphError> {
        let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
        let mut r = crate::codec::Reader::new(&bytes[CSR_COMPACT_HEADER - 4..]);
        let n = r
            .u32_le()
            .ok_or_else(|| malformed("buffer shorter than the header"))? as usize;
        // Every row costs at least its one-byte degree varint, so a hostile
        // vertex count can never exceed the buffer that carried it.
        if n > r.remaining() {
            return Err(malformed("vertex count disagrees with the buffer size"));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut neighbors: Vec<VertexId> = Vec::new();
        for _ in 0..n {
            let degree =
                r.varint_u32()
                    .ok_or_else(|| malformed("row degree truncated"))? as usize;
            let row = r
                .row(degree)
                .ok_or_else(|| malformed("row stream truncated"))?;
            neighbors.extend_from_slice(&row);
            if neighbors.len() > u32::MAX as usize {
                return Err(malformed("adjacency exceeds the id space"));
            }
            offsets.push(neighbors.len() as u32);
        }
        r.finish()
            .ok_or_else(|| malformed("trailing bytes after the last row"))?;
        Ok((offsets, neighbors))
    }

    /// Validates the row invariants every wire decoder must enforce:
    /// in-range, strictly sorted, loop-free rows and a symmetric adjacency.
    fn validate_rows(&self) -> Result<(), GraphError> {
        validate_view_rows(self)
    }

    /// Extracts the subgraph induced by `vertices` (which must be sorted
    /// ascending and duplicate-free) from any [`GraphView`], relabelling to
    /// local ids `0..vertices.len()` in the given order.
    ///
    /// `map` is caller-provided scratch: it is grown to the parent's vertex
    /// count on demand and every entry touched here is restored to
    /// [`INVALID_VERTEX`] before returning, so a single buffer can be reused
    /// across arbitrarily many extractions without re-zeroing (the
    /// scratch-arena pattern used by the enumerator's work loop).
    ///
    /// Because `vertices` is sorted and parent neighbour slices are sorted,
    /// the relabelled rows come out sorted with no per-row sort.
    pub fn extract_induced<G: GraphView>(
        g: &G,
        vertices: &[VertexId],
        map: &mut Vec<VertexId>,
    ) -> CsrGraph {
        debug_assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "vertex list must be sorted"
        );
        if map.len() < g.num_vertices() {
            map.resize(g.num_vertices(), INVALID_VERTEX);
        }
        for (local, &v) in vertices.iter().enumerate() {
            map[v as usize] = local as VertexId;
        }
        let mut offsets = Vec::with_capacity(vertices.len() + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for &v in vertices {
            for &w in g.neighbors(v) {
                let lw = map[w as usize];
                if lw != INVALID_VERTEX {
                    neighbors.push(lw);
                }
            }
            offsets.push(neighbors.len() as u32);
        }
        // Restore the scratch map (only the touched entries).
        for &v in vertices {
            map[v as usize] = INVALID_VERTEX;
        }
        CsrGraph { offsets, neighbors }
    }

    /// Extracts the subgraph induced by `vertices` together with the
    /// local→parent mapping. Duplicate ids are ignored (first occurrence
    /// wins); unlike [`CsrGraph::extract_induced`] the list does not have to
    /// be sorted, matching the behaviour of
    /// [`crate::UndirectedGraph::induced_subgraph`].
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> CsrSubgraph {
        let mut to_parent: Vec<VertexId> = Vec::with_capacity(vertices.len());
        let mut to_local: Vec<VertexId> = vec![INVALID_VERTEX; self.num_vertices()];
        for &v in vertices {
            if to_local[v as usize] == INVALID_VERTEX {
                to_local[v as usize] = to_parent.len() as VertexId;
                to_parent.push(v);
            }
        }
        let mut offsets = Vec::with_capacity(to_parent.len() + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for &orig in &to_parent {
            let row_start = neighbors.len();
            for &w in self.neighbors(orig) {
                let lw = to_local[w as usize];
                if lw != INVALID_VERTEX {
                    neighbors.push(lw);
                }
            }
            neighbors[row_start..].sort_unstable();
            offsets.push(neighbors.len() as u32);
        }
        CsrSubgraph {
            graph: CsrGraph { offsets, neighbors },
            to_parent,
        }
    }
}

/// The row invariants every untrusted-input loader must enforce before
/// handing out a graph: in-range, strictly sorted, loop-free rows and a
/// symmetric adjacency. Shared by all three wire-format versions (the
/// aligned loaders in [`crate::kcsr`] run it over the borrowed view, so the
/// zero-copy path gets exactly the same guarantees as the decoders).
pub(crate) fn validate_view_rows<G: GraphView>(g: &G) -> Result<(), GraphError> {
    let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
    let n = g.num_vertices();
    for v in 0..n {
        let row = g.neighbors(v as VertexId);
        if row.iter().any(|&w| w as usize >= n) {
            return Err(malformed("neighbour id out of range"));
        }
        if row.windows(2).any(|w| w[0] >= w[1]) {
            return Err(malformed("rows must be strictly sorted"));
        }
        if row.binary_search(&(v as VertexId)).is_ok() {
            return Err(malformed("self-loops are not allowed"));
        }
    }
    // Symmetry is load-bearing (peeling and flow construction assume
    // every directed entry has its reverse), so it is a real validation,
    // not a debug assertion.
    for v in g.vertices() {
        for &w in g.neighbors(v) {
            if g.neighbors(w).binary_search(&v).is_err() {
                return Err(malformed("adjacency must be symmetric"));
            }
        }
    }
    Ok(())
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        CsrGraph::neighbors(self, v)
    }

    fn memory_bytes(&self) -> usize {
        CsrGraph::memory_bytes(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }
}

impl GraphView for crate::UndirectedGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        crate::UndirectedGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        crate::UndirectedGraph::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        crate::UndirectedGraph::neighbors(self, v)
    }

    fn memory_bytes(&self) -> usize {
        crate::UndirectedGraph::memory_bytes(self)
    }
}

impl From<&crate::UndirectedGraph> for CsrGraph {
    fn from(g: &crate::UndirectedGraph) -> Self {
        CsrGraph::from_view(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraph;

    fn two_triangles_edges() -> Vec<Edge> {
        vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
    }

    #[test]
    fn from_edges_builds_sorted_rows() {
        let g = CsrGraph::from_edges(5, two_triangles_edges()).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(g.degree(2), 4);
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn from_edges_reports_diagnostics() {
        let (g, stats) = CsrGraph::from_edges_diagnostic(
            4,
            vec![(0, 1), (1, 0), (1, 1), (2, 3), (2, 3), (3, 2)],
        )
        .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(stats.self_loops, 1);
        assert_eq!(stats.duplicates, 3);
    }

    #[test]
    fn from_edges_validates_before_building() {
        let err = CsrGraph::from_edges(2, vec![(0, 1), (0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange {
                vertex: 5,
                num_vertices: 2
            }
        ));
    }

    #[test]
    fn csr_matches_vec_adjacency_exactly() {
        let edges = two_triangles_edges();
        let vec_graph = UndirectedGraph::from_edges(5, edges.clone()).unwrap();
        let csr: CsrGraph = (&vec_graph).into();
        assert_eq!(csr.num_vertices(), vec_graph.num_vertices());
        assert_eq!(csr.num_edges(), vec_graph.num_edges());
        for v in 0..5u32 {
            assert_eq!(csr.neighbors(v), vec_graph.neighbors(v));
        }
        let direct = CsrGraph::from_edges(5, edges).unwrap();
        assert_eq!(direct, csr);
    }

    #[test]
    fn extract_induced_restores_scratch_map() {
        let g = CsrGraph::from_edges(5, two_triangles_edges()).unwrap();
        let mut map = Vec::new();
        let sub = CsrGraph::extract_induced(&g, &[2, 3, 4], &mut map);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.neighbors(0), &[1, 2]); // vertex 2 -> {3, 4}
        assert!(
            map.iter().all(|&x| x == INVALID_VERTEX),
            "scratch must be restored"
        );
        // Reuse the same buffer for a second extraction.
        let sub2 = CsrGraph::extract_induced(&g, &[0, 1, 2], &mut map);
        assert_eq!(sub2.num_edges(), 3);
    }

    #[test]
    fn induced_subgraph_matches_vec_version() {
        let vec_graph =
            UndirectedGraph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
                .unwrap();
        let csr = CsrGraph::from_view(&vec_graph);
        let a = vec_graph.induced_subgraph(&[1, 2, 3, 1]);
        let b = csr.induced_subgraph(&[1, 2, 3, 1]);
        assert_eq!(a.to_parent, b.to_parent);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for v in 0..3u32 {
            assert_eq!(a.graph.neighbors(v), b.graph.neighbors(v));
        }
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = CsrGraph::new(0);
        assert!(GraphView::is_empty(&g));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(GraphView::edges(&g).count(), 0);
        let g = CsrGraph::new(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn byte_roundtrip_preserves_the_graph() {
        let g = CsrGraph::from_edges(5, two_triangles_edges()).unwrap();
        let bytes = g.to_bytes();
        let back = CsrGraph::from_bytes(&bytes).unwrap();
        assert_eq!(back, g);
        // Empty graphs roundtrip too.
        let empty = CsrGraph::new(0);
        assert_eq!(CsrGraph::from_bytes(&empty.to_bytes()).unwrap(), empty);
        let isolated = CsrGraph::new(3);
        assert_eq!(
            CsrGraph::from_bytes(&isolated.to_bytes()).unwrap(),
            isolated
        );
    }

    #[test]
    fn from_bytes_rejects_corrupted_buffers() {
        let g = CsrGraph::from_edges(5, two_triangles_edges()).unwrap();
        let good = g.to_bytes();

        let assert_malformed = |bytes: &[u8]| {
            assert!(matches!(
                CsrGraph::from_bytes(bytes),
                Err(GraphError::MalformedBytes { .. })
            ));
        };
        assert_malformed(&good[..3]); // truncated header
        assert_malformed(&good[..good.len() - 4]); // truncated body

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_malformed(&bad_magic);

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert_malformed(&bad_version);

        // Out-of-range neighbour id.
        let mut bad_neighbor = good.clone();
        let len = bad_neighbor.len();
        bad_neighbor[len - 4..].copy_from_slice(&1000u32.to_le_bytes());
        assert_malformed(&bad_neighbor);

        // Structurally well-formed but asymmetric: vertex 0 lists 1, vertex 1
        // lists nothing. Downstream algorithms assume symmetry, so this must
        // be rejected (not just debug-asserted).
        let mut asymmetric = Vec::new();
        asymmetric.extend_from_slice(b"KCSR");
        asymmetric.push(1); // version
        asymmetric.extend_from_slice(&2u32.to_le_bytes()); // n
        asymmetric.extend_from_slice(&1u32.to_le_bytes()); // neighbour count
        for offset in [0u32, 1, 1] {
            asymmetric.extend_from_slice(&offset.to_le_bytes());
        }
        asymmetric.extend_from_slice(&1u32.to_le_bytes()); // 0 -> 1 only
        assert_malformed(&asymmetric);
    }

    #[test]
    fn compact_byte_roundtrip_preserves_the_graph() {
        let g = CsrGraph::from_edges(5, two_triangles_edges()).unwrap();
        let compact = g.to_bytes_compact();
        assert_eq!(CsrGraph::from_bytes(&compact).unwrap(), g);
        assert!(
            compact.len() < g.to_bytes().len(),
            "compact form must be smaller than fixed-width on a real graph"
        );
        // Empty and edgeless graphs roundtrip too.
        for n in [0usize, 3] {
            let g = CsrGraph::new(n);
            assert_eq!(CsrGraph::from_bytes(&g.to_bytes_compact()).unwrap(), g);
        }
    }

    #[test]
    fn compact_from_bytes_rejects_corrupted_buffers() {
        let g = CsrGraph::from_edges(5, two_triangles_edges()).unwrap();
        let good = g.to_bytes_compact();
        let assert_malformed = |bytes: &[u8]| {
            assert!(matches!(
                CsrGraph::from_bytes(bytes),
                Err(GraphError::MalformedBytes { .. })
            ));
        };
        // Every truncation fails cleanly (header, degree, or row stream).
        for cut in 0..good.len() {
            assert_malformed(&good[..cut]);
        }
        // Trailing garbage after the last row.
        let mut trailing = good.clone();
        trailing.push(0);
        assert_malformed(&trailing);
        // A hostile vertex count larger than the buffer is rejected before
        // any allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(b"KCSR");
        hostile.push(2);
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_malformed(&hostile);
        // Asymmetric adjacency fails validation in the compact path too:
        // vertex 0 lists 1, vertex 1 lists nothing.
        let mut asymmetric = Vec::new();
        asymmetric.extend_from_slice(b"KCSR");
        asymmetric.push(2);
        asymmetric.extend_from_slice(&2u32.to_le_bytes());
        asymmetric.push(1); // degree of vertex 0
        asymmetric.push(1); // row [1]
        asymmetric.push(0); // degree of vertex 1
        assert_malformed(&asymmetric);
    }

    #[test]
    fn raw_accessors_expose_the_arrays() {
        let g = CsrGraph::from_edges(3, vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.offsets(), &[0, 1, 3, 4]);
        assert_eq!(g.neighbor_data(), &[1, 0, 2, 1]);
    }

    #[test]
    fn too_many_vertices_is_rejected() {
        if usize::BITS > 32 {
            let err = CsrGraph::from_edges(VertexId::MAX as usize + 1, vec![]).unwrap_err();
            assert!(matches!(err, GraphError::TooManyVertices(_)));
        }
    }
}
