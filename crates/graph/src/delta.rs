//! Mutable overlay over an immutable CSR base: batched edge inserts and
//! deletes without rebuilding the graph.
//!
//! A [`DeltaGraph`] wraps a [`CsrGraph`] and records mutations in two small
//! side structures:
//!
//! * a **tombstone bitset** over the base's directed adjacency slots, marking
//!   base edges that have been deleted, and
//! * a per-vertex **sorted insertion list** holding edges that were added on
//!   top of the base.
//!
//! For every vertex touched by an update the merged neighbour row (base row
//! minus tombstones, plus insertions) is materialised once, so
//! [`GraphView::neighbors`] still returns a real sorted slice and every
//! algorithm in the workspace runs on a `DeltaGraph` unchanged. Untouched
//! vertices serve their base row directly — a delta over a million-vertex
//! graph that mutates a handful of vertices costs a handful of rows.
//!
//! Once the overlay grows past a size ratio (see
//! [`DeltaGraph::needs_compaction`]) the graph should be re-materialised into
//! a clean CSR via [`DeltaGraph::compact`], which folds the overlay into a
//! fresh base and resets the side structures.
//!
//! Updates are tolerant in the same way [`crate::GraphBuilder`] is: inserting
//! an edge that already exists, deleting one that does not, and self-loops
//! are all counted as redundant no-ops rather than errors. Out-of-range
//! vertex ids are rejected with [`GraphError::VertexOutOfRange`].

use crate::bitset::BitSet;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::types::VertexId;
use crate::view::GraphView;

/// The kind of a single edge mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// Add the edge (no-op if already present).
    Insert,
    /// Remove the edge (no-op if absent).
    Delete,
}

impl UpdateOp {
    /// Stable one-byte wire code (`0` = insert, `1` = delete).
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            UpdateOp::Insert => 0,
            UpdateOp::Delete => 1,
        }
    }

    /// Inverse of [`UpdateOp::code`]; `None` for unknown codes.
    #[inline]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(UpdateOp::Insert),
            1 => Some(UpdateOp::Delete),
            _ => None,
        }
    }
}

/// One edge mutation: insert or delete the undirected edge `{u, v}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeUpdate {
    /// Insert or delete.
    pub op: UpdateOp,
    /// First endpoint.
    pub u: VertexId,
    /// Second endpoint.
    pub v: VertexId,
}

impl EdgeUpdate {
    /// An insertion of `{u, v}`.
    #[inline]
    pub fn insert(u: VertexId, v: VertexId) -> Self {
        EdgeUpdate {
            op: UpdateOp::Insert,
            u,
            v,
        }
    }

    /// A deletion of `{u, v}`.
    #[inline]
    pub fn delete(u: VertexId, v: VertexId) -> Self {
        EdgeUpdate {
            op: UpdateOp::Delete,
            u,
            v,
        }
    }
}

/// Outcome counters for a batch of updates (see [`DeltaGraph::apply`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Edges that were actually added.
    pub inserted: usize,
    /// Edges that were actually removed.
    pub deleted: usize,
    /// Updates that changed nothing (duplicate insert, missing delete,
    /// self-loop).
    pub redundant: usize,
}

/// A [`CsrGraph`] plus a mutation overlay; implements [`GraphView`] so every
/// existing algorithm runs on the mutated graph unchanged.
///
/// See the [module docs](self) for the representation.
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    base: CsrGraph,
    /// Tombstoned directed slots of the base adjacency array.
    tombstones: BitSet,
    /// Per-vertex sorted, duplicate-free extra neighbours.
    inserts: Vec<Vec<VertexId>>,
    /// Materialised merged rows for vertices touched by any update.
    rows: Vec<Option<Vec<VertexId>>>,
    /// Current undirected edge count.
    num_edges: usize,
    /// Live inserted (undirected) edges in the overlay.
    overlay_inserted: usize,
    /// Tombstoned base (undirected) edges in the overlay.
    overlay_deleted: usize,
}

impl DeltaGraph {
    /// Wraps `base` with an empty overlay.
    pub fn new(base: CsrGraph) -> Self {
        let n = base.num_vertices();
        let slots = base.neighbor_data().len();
        let num_edges = base.num_edges();
        DeltaGraph {
            base,
            tombstones: BitSet::new(slots),
            inserts: vec![Vec::new(); n],
            rows: vec![None; n],
            num_edges,
            overlay_inserted: 0,
            overlay_deleted: 0,
        }
    }

    /// The immutable base the overlay applies to.
    #[inline]
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Number of overlay entries: live inserted edges plus tombstoned base
    /// edges.
    #[inline]
    pub fn overlay_len(&self) -> usize {
        self.overlay_inserted + self.overlay_deleted
    }

    /// Overlay size relative to the base edge count (`overlay_len / m_base`,
    /// with an empty base counting as one edge).
    pub fn overlay_ratio(&self) -> f64 {
        self.overlay_len() as f64 / self.base.num_edges().max(1) as f64
    }

    /// Whether the overlay has outgrown `max_ratio` and the graph should be
    /// folded into a clean CSR via [`DeltaGraph::compact`].
    pub fn needs_compaction(&self, max_ratio: f64) -> bool {
        self.overlay_ratio() > max_ratio
    }

    /// Applies one update. Returns `true` when the graph changed, `false`
    /// for a redundant update (duplicate insert, missing delete, self-loop).
    pub fn apply_update(&mut self, update: EdgeUpdate) -> Result<bool, GraphError> {
        let n = self.num_vertices();
        for endpoint in [update.u, update.v] {
            if endpoint as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: endpoint as u64,
                    num_vertices: n,
                });
            }
        }
        if update.u == update.v {
            return Ok(false);
        }
        let (u, v) = (update.u, update.v);
        let changed = match update.op {
            UpdateOp::Insert => self.insert_edge(u, v),
            UpdateOp::Delete => self.delete_edge(u, v),
        };
        if changed {
            self.refresh_row(u);
            self.refresh_row(v);
        }
        Ok(changed)
    }

    /// Applies a batch of updates in order; stops at the first out-of-range
    /// endpoint (leaving earlier updates applied).
    pub fn apply(&mut self, updates: &[EdgeUpdate]) -> Result<DeltaStats, GraphError> {
        let mut stats = DeltaStats::default();
        for &update in updates {
            if self.apply_update(update)? {
                match update.op {
                    UpdateOp::Insert => stats.inserted += 1,
                    UpdateOp::Delete => stats.deleted += 1,
                }
            } else {
                stats.redundant += 1;
            }
        }
        Ok(stats)
    }

    /// Folds the overlay into a fresh CSR base and clears the side
    /// structures. Afterwards [`DeltaGraph::overlay_len`] is zero and every
    /// row is served from the new base.
    pub fn compact(&mut self) {
        if self.overlay_len() == 0 && self.rows.iter().all(Option::is_none) {
            return;
        }
        let folded = CsrGraph::from_view(self);
        let n = folded.num_vertices();
        let slots = folded.neighbor_data().len();
        self.base = folded;
        self.tombstones = BitSet::new(slots);
        self.inserts = vec![Vec::new(); n];
        self.rows = vec![None; n];
        self.overlay_inserted = 0;
        self.overlay_deleted = 0;
    }

    /// Compacts only when the overlay exceeds `max_ratio`; returns whether a
    /// compaction happened.
    pub fn maybe_compact(&mut self, max_ratio: f64) -> bool {
        if self.needs_compaction(max_ratio) {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Consumes the overlay and returns a clean [`CsrGraph`] of the current
    /// state (the base itself when no mutation ever happened).
    pub fn into_csr(mut self) -> CsrGraph {
        self.compact();
        self.base
    }

    /// The base-adjacency slot range of vertex `v`.
    #[inline]
    fn base_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let offsets = self.base.offsets();
        offsets[v as usize] as usize..offsets[v as usize + 1] as usize
    }

    /// The directed slot of `v` inside `u`'s base row, if the base edge
    /// exists.
    fn base_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let range = self.base_range(u);
        let row = &self.base.neighbor_data()[range.clone()];
        row.binary_search(&v).ok().map(|i| range.start + i)
    }

    /// Adds `{u, v}`; returns `false` when already present.
    fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.has_edge(u, v) {
            return false;
        }
        match (self.base_slot(u, v), self.base_slot(v, u)) {
            (Some(uv), Some(vu)) => {
                // Resurrect a tombstoned base edge.
                self.tombstones.remove(uv);
                self.tombstones.remove(vu);
                self.overlay_deleted -= 1;
            }
            _ => {
                for (a, b) in [(u, v), (v, u)] {
                    let list = &mut self.inserts[a as usize];
                    let pos = list.binary_search(&b).unwrap_err();
                    list.insert(pos, b);
                }
                self.overlay_inserted += 1;
            }
        }
        self.num_edges += 1;
        true
    }

    /// Removes `{u, v}`; returns `false` when absent.
    fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        if let Ok(pos) = self.inserts[u as usize].binary_search(&v) {
            // The edge lives in the insertion overlay.
            self.inserts[u as usize].remove(pos);
            let pos = self.inserts[v as usize]
                .binary_search(&u)
                .expect("insertion lists are symmetric");
            self.inserts[v as usize].remove(pos);
            self.overlay_inserted -= 1;
        } else {
            let uv = self
                .base_slot(u, v)
                .expect("present edge is in base or overlay");
            let vu = self.base_slot(v, u).expect("base adjacency is symmetric");
            self.tombstones.insert(uv);
            self.tombstones.insert(vu);
            self.overlay_deleted += 1;
        }
        self.num_edges -= 1;
        true
    }

    /// Re-materialises the merged row of `v` after a mutation.
    fn refresh_row(&mut self, v: VertexId) {
        let range = self.base_range(v);
        let extras = &self.inserts[v as usize];
        let mut merged = Vec::with_capacity(range.len() + extras.len());
        let base_row = &self.base.neighbor_data()[range.clone()];
        let mut e = 0usize;
        for (i, &w) in base_row.iter().enumerate() {
            if self.tombstones.contains(range.start + i) {
                continue;
            }
            while e < extras.len() && extras[e] < w {
                merged.push(extras[e]);
                e += 1;
            }
            merged.push(w);
        }
        merged.extend_from_slice(&extras[e..]);
        self.rows[v as usize] = Some(merged);
    }
}

impl GraphView for DeltaGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.num_edges
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match &self.rows[v as usize] {
            Some(row) => row,
            None => {
                let range = self.base_range(v);
                &self.base.neighbor_data()[range]
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        let rows: usize = self
            .rows
            .iter()
            .flatten()
            .map(|r| r.capacity() * std::mem::size_of::<VertexId>())
            .sum();
        let inserts: usize = self
            .inserts
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<VertexId>())
            .sum();
        let tombstones = self.tombstones.len().div_ceil(8);
        self.base.memory_bytes() + rows + inserts + tombstones
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CsrGraph {
        // Two triangles joined at vertex 2, plus an isolated vertex 5.
        CsrGraph::from_edges(6, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap()
    }

    fn assert_view_parity(delta: &DeltaGraph, expected: &CsrGraph) {
        assert_eq!(delta.num_vertices(), expected.num_vertices());
        assert_eq!(delta.num_edges(), expected.num_edges());
        for v in expected.vertices() {
            assert_eq!(delta.neighbors(v), expected.neighbors(v), "row of {v}");
        }
    }

    #[test]
    fn inserts_and_deletes_mutate_rows() {
        let mut delta = DeltaGraph::new(base());
        let stats = delta
            .apply(&[
                EdgeUpdate::insert(4, 5),
                EdgeUpdate::delete(0, 1),
                EdgeUpdate::insert(0, 3),
            ])
            .unwrap();
        assert_eq!(
            stats,
            DeltaStats {
                inserted: 2,
                deleted: 1,
                redundant: 0
            }
        );
        let expected = CsrGraph::from_edges(
            6,
            vec![(1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5), (0, 3)],
        )
        .unwrap();
        assert_view_parity(&delta, &expected);
        assert_eq!(delta.overlay_len(), 3);
    }

    #[test]
    fn redundant_updates_and_self_loops_are_noops() {
        let mut delta = DeltaGraph::new(base());
        let stats = delta
            .apply(&[
                EdgeUpdate::insert(0, 1), // duplicate
                EdgeUpdate::delete(0, 4), // missing
                EdgeUpdate::insert(3, 3), // self-loop
            ])
            .unwrap();
        assert_eq!(stats.redundant, 3);
        assert_eq!(stats.inserted + stats.deleted, 0);
        assert_view_parity(&delta, &base());
        assert_eq!(delta.overlay_len(), 0);
    }

    #[test]
    fn delete_then_reinsert_resurrects_the_base_edge() {
        let mut delta = DeltaGraph::new(base());
        delta.apply_update(EdgeUpdate::delete(2, 3)).unwrap();
        assert_eq!(delta.overlay_len(), 1);
        delta.apply_update(EdgeUpdate::insert(2, 3)).unwrap();
        assert_eq!(delta.overlay_len(), 0);
        assert_view_parity(&delta, &base());
    }

    #[test]
    fn insert_then_delete_cancels_the_overlay_edge() {
        let mut delta = DeltaGraph::new(base());
        delta.apply_update(EdgeUpdate::insert(1, 5)).unwrap();
        assert_eq!(delta.overlay_len(), 1);
        delta.apply_update(EdgeUpdate::delete(1, 5)).unwrap();
        assert_eq!(delta.overlay_len(), 0);
        assert_view_parity(&delta, &base());
    }

    #[test]
    fn out_of_range_endpoints_are_rejected() {
        let mut delta = DeltaGraph::new(base());
        let err = delta.apply_update(EdgeUpdate::insert(0, 6)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 6, .. }
        ));
        assert_view_parity(&delta, &base());
    }

    #[test]
    fn compaction_folds_the_overlay_into_a_clean_base() {
        let mut delta = DeltaGraph::new(base());
        delta
            .apply(&[
                EdgeUpdate::delete(0, 1),
                EdgeUpdate::insert(0, 5),
                EdgeUpdate::insert(1, 5),
            ])
            .unwrap();
        assert!(delta.needs_compaction(0.25));
        assert!(delta.maybe_compact(0.25));
        assert_eq!(delta.overlay_len(), 0);
        assert!(!delta.needs_compaction(0.25));
        let expected = CsrGraph::from_edges(
            6,
            vec![(1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (0, 5), (1, 5)],
        )
        .unwrap();
        assert_view_parity(&delta, &expected);
        // A second compact with a clean overlay is a no-op.
        delta.compact();
        assert_view_parity(&delta, &expected);
    }

    #[test]
    fn into_csr_matches_the_mutated_view() {
        let mut delta = DeltaGraph::new(base());
        delta
            .apply(&[EdgeUpdate::insert(4, 5), EdgeUpdate::delete(2, 4)])
            .unwrap();
        let expected = CsrGraph::from_view(&delta);
        let csr = delta.into_csr();
        assert_eq!(csr.num_edges(), expected.num_edges());
        for v in expected.vertices() {
            assert_eq!(csr.neighbors(v), expected.neighbors(v));
        }
    }

    #[test]
    fn update_op_codes_roundtrip() {
        for op in [UpdateOp::Insert, UpdateOp::Delete] {
            assert_eq!(UpdateOp::from_code(op.code()), Some(op));
        }
        assert_eq!(UpdateOp::from_code(9), None);
    }
}
