//! Vertex reordering (relabelling) for cache locality.
//!
//! The enumeration's hot loops — k-core peeling, BFS sweeps, flow-graph
//! construction — are memory bound: they stream neighbour slices of a
//! [`CsrGraph`] and chase the ids found there back into the offset array.
//! When ids of topologically close vertices are numerically close, those
//! lookups hit cache lines that the previous accesses already pulled in.
//! This module computes id permutations that improve that locality:
//!
//! * [`OrderingStrategy::DegreeDescending`] — hubs first, so the rows touched
//!   most often share the front of the neighbour array;
//! * [`OrderingStrategy::Bfs`] — per-component breadth-first numbering, the
//!   classic bandwidth-reducing layout (neighbours get nearby ids);
//! * [`OrderingStrategy::Hybrid`] — per-component BFS seeded at the
//!   component's maximum-degree vertex, combining both effects.
//!
//! A [`VertexOrdering`] always carries **both** directions of the relabelling
//! so callers can translate query ids into the reordered space and translate
//! results back before they cross any API boundary (the `kvcc-service`
//! engine's `OrderingPolicy` does exactly that).

use crate::csr::CsrGraph;
use crate::types::VertexId;
use crate::view::GraphView;
use crate::INVALID_VERTEX;

/// How to relabel the vertices of a graph (see the [module docs](self)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum OrderingStrategy {
    /// Keep the input ids (the ordering is the identity permutation).
    #[default]
    Identity,
    /// Sort by non-ascending degree, ties broken by ascending original id.
    DegreeDescending,
    /// Per-component BFS from the smallest original id, components in
    /// ascending order of that id; neighbours are visited in sorted order, so
    /// the numbering is deterministic.
    Bfs,
    /// Per-component BFS seeded at the component's maximum-degree vertex
    /// (ties broken by smallest id); components are processed in ascending
    /// order of their smallest original id.
    Hybrid,
}

impl OrderingStrategy {
    /// Short, stable name used by benchmarks and reports.
    pub fn name(self) -> &'static str {
        match self {
            OrderingStrategy::Identity => "identity",
            OrderingStrategy::DegreeDescending => "degree",
            OrderingStrategy::Bfs => "bfs",
            OrderingStrategy::Hybrid => "hybrid",
        }
    }
}

/// A bijective relabelling of the vertices `0..n`, stored in both directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexOrdering {
    /// `old_to_new[old]` is the id of `old` in the reordered graph.
    old_to_new: Vec<VertexId>,
    /// `new_to_old[new]` is the original id of the reordered vertex `new`.
    new_to_old: Vec<VertexId>,
}

impl VertexOrdering {
    /// The identity ordering on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        VertexOrdering {
            old_to_new: ids.clone(),
            new_to_old: ids,
        }
    }

    /// Builds an ordering from the `new → old` direction, checking that it is
    /// a permutation of `0..len`.
    ///
    /// # Panics
    ///
    /// Panics when `new_to_old` is not a permutation (a repeated or
    /// out-of-range id).
    pub fn from_new_to_old(new_to_old: Vec<VertexId>) -> Self {
        let n = new_to_old.len();
        let mut old_to_new = vec![INVALID_VERTEX; n];
        for (new_id, &old_id) in new_to_old.iter().enumerate() {
            assert!(
                (old_id as usize) < n,
                "ordering references vertex {old_id} outside 0..{n}"
            );
            assert!(
                old_to_new[old_id as usize] == INVALID_VERTEX,
                "ordering lists vertex {old_id} twice"
            );
            old_to_new[old_id as usize] = new_id as VertexId;
        }
        VertexOrdering {
            old_to_new,
            new_to_old,
        }
    }

    /// Number of vertices covered by the ordering.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the ordering covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The `old → new` direction (`old_to_new()[old]` is the reordered id).
    #[inline]
    pub fn old_to_new(&self) -> &[VertexId] {
        &self.old_to_new
    }

    /// The `new → old` direction (`new_to_old()[new]` is the original id).
    #[inline]
    pub fn new_to_old(&self) -> &[VertexId] {
        &self.new_to_old
    }

    /// Translates one original id into the reordered space.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// Translates one reordered id back to the original space.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.new_to_old[new as usize]
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_to_old
            .iter()
            .enumerate()
            .all(|(i, &v)| i as VertexId == v)
    }
}

/// Computes the permutation of `strategy` over `g`.
///
/// All strategies are deterministic functions of the graph structure, so the
/// same graph always yields the same ordering (benchmark runs and parity
/// tests rely on this).
pub fn compute_ordering<G: GraphView>(g: &G, strategy: OrderingStrategy) -> VertexOrdering {
    let n = g.num_vertices();
    match strategy {
        OrderingStrategy::Identity => VertexOrdering::identity(n),
        OrderingStrategy::DegreeDescending => {
            let mut order: Vec<VertexId> = (0..n as VertexId).collect();
            order.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)));
            VertexOrdering::from_new_to_old(order)
        }
        OrderingStrategy::Bfs => bfs_ordering(g, false),
        OrderingStrategy::Hybrid => bfs_ordering(g, true),
    }
}

/// Per-component BFS numbering. With `seed_by_degree` the BFS of each
/// component starts at its maximum-degree vertex (hybrid strategy), otherwise
/// at its smallest original id. Components are discovered — and therefore
/// numbered — in ascending order of their smallest original id either way.
fn bfs_ordering<G: GraphView>(g: &G, seed_by_degree: bool) -> VertexOrdering {
    let n = g.num_vertices();
    let mut new_to_old: Vec<VertexId> = Vec::with_capacity(n);
    let mut seen = crate::bitset::BitSet::new(n);
    let mut placed = crate::bitset::BitSet::new(n);
    let mut component: Vec<VertexId> = Vec::new();
    for start in 0..n as VertexId {
        if seen.contains(start as usize) {
            continue;
        }
        // Collect the component once so the hybrid strategy can pick its
        // max-degree seed before the numbering BFS runs.
        component.clear();
        component.push(start);
        seen.insert(start as usize);
        let mut head = 0;
        while head < component.len() {
            let u = component[head];
            head += 1;
            for &v in g.neighbors(u) {
                if seen.insert(v as usize) {
                    component.push(v);
                }
            }
        }
        let seed = if seed_by_degree {
            component
                .iter()
                .copied()
                .min_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then(a.cmp(&b)))
                .expect("component is non-empty")
        } else {
            start
        };
        // Numbering BFS from the chosen seed, with sorted-neighbour
        // tie-breaking; `new_to_old` doubles as the BFS queue.
        let mut placed_head = new_to_old.len();
        new_to_old.push(seed);
        placed.insert(seed as usize);
        while placed_head < new_to_old.len() {
            let u = new_to_old[placed_head];
            placed_head += 1;
            for &v in g.neighbors(u) {
                if placed.insert(v as usize) {
                    new_to_old.push(v);
                }
            }
        }
    }
    VertexOrdering::from_new_to_old(new_to_old)
}

impl CsrGraph {
    /// Returns the graph with vertices relabelled by `ordering` (vertex `v`
    /// of `self` becomes `ordering.to_new(v)`).
    ///
    /// The adjacency structure is preserved exactly — only ids change — so
    /// any algorithm output computed on the reordered graph can be translated
    /// back through [`VertexOrdering::to_old`] and compared byte-for-byte
    /// with the baseline (asserted by the substrate-parity suite).
    ///
    /// # Panics
    ///
    /// Panics when `ordering.len() != self.num_vertices()`.
    pub fn reordered(&self, ordering: &VertexOrdering) -> CsrGraph {
        assert_eq!(
            ordering.len(),
            self.num_vertices(),
            "ordering must cover every vertex"
        );
        let n = self.num_vertices();
        let old_to_new = ordering.old_to_new();
        let mut row: Vec<VertexId> = Vec::new();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.num_edges());
        offsets.push(0u32);
        for new_id in 0..n as VertexId {
            let old_id = ordering.to_old(new_id);
            row.clear();
            row.extend(
                self.neighbors(old_id)
                    .iter()
                    .map(|&w| old_to_new[w as usize]),
            );
            row.sort_unstable();
            neighbors.extend_from_slice(&row);
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph::from_parts(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UndirectedGraph;

    /// Path 0-1-2 plus a separate triangle {3,4,5} with 4 as its hub (degree
    /// boosted by a pendant 6).
    fn two_component_graph() -> CsrGraph {
        CsrGraph::from_edges(7, vec![(0, 1), (1, 2), (3, 4), (4, 5), (3, 5), (4, 6)]).unwrap()
    }

    fn assert_structure_preserved(g: &CsrGraph, ordering: &VertexOrdering) {
        let r = g.reordered(ordering);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        for old in g.vertices() {
            let new = ordering.to_new(old);
            assert_eq!(ordering.to_old(new), old);
            let mut expected: Vec<VertexId> = g
                .neighbors(old)
                .iter()
                .map(|&w| ordering.to_new(w))
                .collect();
            expected.sort_unstable();
            assert_eq!(r.neighbors(new), expected.as_slice());
        }
    }

    #[test]
    fn identity_ordering_is_a_noop() {
        let g = two_component_graph();
        let ordering = compute_ordering(&g, OrderingStrategy::Identity);
        assert!(ordering.is_identity());
        assert_eq!(g.reordered(&ordering), g);
        assert_eq!(ordering.len(), 7);
        assert!(!ordering.is_empty());
    }

    #[test]
    fn degree_descending_puts_hubs_first() {
        let g = two_component_graph();
        let ordering = compute_ordering(&g, OrderingStrategy::DegreeDescending);
        // Vertex 4 has degree 3; the degree-2 vertices follow in id order.
        assert_eq!(ordering.to_old(0), 4);
        assert_eq!(ordering.to_old(1), 1);
        assert!(!ordering.is_identity());
        assert_structure_preserved(&g, &ordering);
    }

    #[test]
    fn bfs_numbers_components_contiguously() {
        let g = two_component_graph();
        let ordering = compute_ordering(&g, OrderingStrategy::Bfs);
        // First component {0,1,2} keeps the front ids; BFS from 0.
        assert_eq!(&ordering.new_to_old()[..3], &[0, 1, 2]);
        // Second component starts at its smallest id, 3.
        assert_eq!(ordering.to_old(3), 3);
        assert_structure_preserved(&g, &ordering);
    }

    #[test]
    fn hybrid_seeds_each_component_at_its_hub() {
        let g = two_component_graph();
        let ordering = compute_ordering(&g, OrderingStrategy::Hybrid);
        // Component {0,1,2}: hub is vertex 1 (degree 2 ties broken by id? 0,1,2
        // have degrees 1,2,1, so the seed is 1).
        assert_eq!(ordering.to_old(0), 1);
        // Component {3,4,5,6}: hub is vertex 4 (degree 3).
        assert_eq!(ordering.to_old(3), 4);
        assert_structure_preserved(&g, &ordering);
    }

    #[test]
    fn orderings_are_deterministic_and_bijective() {
        let g = CsrGraph::from_view(
            &UndirectedGraph::from_edges(
                9,
                vec![
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 3),
                    (6, 7),
                ],
            )
            .unwrap(),
        );
        for strategy in [
            OrderingStrategy::Identity,
            OrderingStrategy::DegreeDescending,
            OrderingStrategy::Bfs,
            OrderingStrategy::Hybrid,
        ] {
            let a = compute_ordering(&g, strategy);
            let b = compute_ordering(&g, strategy);
            assert_eq!(a, b, "{strategy:?} must be deterministic");
            let mut seen = vec![false; g.num_vertices()];
            for v in 0..g.num_vertices() as VertexId {
                let new = a.to_new(v);
                assert!(!std::mem::replace(&mut seen[new as usize], true));
            }
            assert_structure_preserved(&g, &a);
        }
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_ids_are_rejected() {
        let _ = VertexOrdering::from_new_to_old(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_ids_are_rejected() {
        let _ = VertexOrdering::from_new_to_old(vec![0, 5]);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(OrderingStrategy::Identity.name(), "identity");
        assert_eq!(OrderingStrategy::DegreeDescending.name(), "degree");
        assert_eq!(OrderingStrategy::Bfs.name(), "bfs");
        assert_eq!(OrderingStrategy::Hybrid.name(), "hybrid");
        assert_eq!(OrderingStrategy::default(), OrderingStrategy::Identity);
    }
}
