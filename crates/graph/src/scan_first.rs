//! Scan-first search forests (Cheriyan, Kao & Thurimella).
//!
//! A *scan-first search* marks all neighbours of the vertex currently being
//! scanned and then scans any marked-but-unscanned vertex next; breadth-first
//! search is the special case the paper uses (§4.2, Example 5). The edges used
//! to mark vertices form a spanning forest, and the union of `k` successive
//! forests — each computed on the graph minus the previously selected edges —
//! is a sparse certificate for k-vertex connectivity (Theorem 5).
//!
//! This module provides the single-forest primitive; the full certificate
//! (which also extracts the side-groups of §5.2) lives in the `kvcc` core
//! crate because it is part of the paper's contribution.

use std::collections::VecDeque;

use crate::bitset::BitSet;
use crate::types::{Edge, VertexId};
use crate::view::GraphView;

/// A spanning forest produced by one round of scan-first search.
#[derive(Clone, Debug, Default)]
pub struct ScanFirstForest {
    /// The tree edges, one per marked vertex, normalised as `(min, max)`.
    pub edges: Vec<Edge>,
    /// `root[v]` is the root of the tree containing `v`.
    pub root: Vec<VertexId>,
}

impl ScanFirstForest {
    /// Number of tree edges in the forest.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the forest has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Computes a scan-first (BFS) forest of `g`, skipping edges for which
/// `skip(u, v)` returns `true`.
///
/// The `skip` predicate lets the sparse-certificate construction exclude the
/// edges already consumed by previous forests without materialising the
/// reduced graph `G_{i-1}`.
pub fn scan_first_forest<G: GraphView, F>(g: &G, mut skip: F) -> ScanFirstForest
where
    F: FnMut(VertexId, VertexId) -> bool,
{
    let n = g.num_vertices();
    let mut marked = BitSet::new(n);
    let mut root = vec![0 as VertexId; n];
    let mut edges = Vec::new();
    let mut queue = VecDeque::new();

    for start in 0..n as VertexId {
        if marked.contains(start as usize) {
            continue;
        }
        marked.insert(start as usize);
        root[start as usize] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if marked.contains(v as usize) || skip(u, v) {
                    continue;
                }
                marked.insert(v as usize);
                root[v as usize] = start;
                edges.push(crate::types::normalize_edge(u, v));
                queue.push_back(v);
            }
        }
    }
    ScanFirstForest { edges, root }
}

/// Convenience wrapper: a plain BFS spanning forest of the whole graph.
pub fn spanning_forest<G: GraphView>(g: &G) -> ScanFirstForest {
    scan_first_forest(g, |_, _| false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::UndirectedGraph;
    use crate::traversal::connected_components;

    #[test]
    fn spanning_forest_has_n_minus_c_edges() {
        let g =
            UndirectedGraph::from_edges(7, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
                .unwrap();
        let f = spanning_forest(&g);
        let comps = connected_components(&g).len();
        assert_eq!(f.len(), g.num_vertices() - comps);
        assert!(!f.is_empty());
        // Every tree edge must exist in the graph.
        for &(u, v) in &f.edges {
            assert!(g.has_edge(u, v));
        }
        // Roots are consistent with components.
        assert_eq!(f.root[0], f.root[2]);
        assert_eq!(f.root[3], f.root[5]);
        assert_ne!(f.root[0], f.root[3]);
    }

    #[test]
    fn skip_predicate_excludes_edges() {
        // Triangle: skipping edge (0,1) still spans via 0-2-1.
        let g = UndirectedGraph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap();
        let f = scan_first_forest(&g, |u, v| crate::types::normalize_edge(u, v) == (0, 1));
        assert_eq!(f.len(), 2);
        assert!(!f.edges.contains(&(0, 1)));
    }

    #[test]
    fn forest_of_empty_graph() {
        let g = UndirectedGraph::new(0);
        let f = spanning_forest(&g);
        assert!(f.is_empty());
        assert!(f.root.is_empty());
    }
}
