//! Incremental, tolerant graph construction.

use crate::graph::UndirectedGraph;
use crate::types::VertexId;

/// A builder that accumulates edges with arbitrary (possibly sparse) vertex
/// ids and produces a compact [`UndirectedGraph`].
///
/// The builder:
/// * accepts edges in any order,
/// * silently drops self-loops and duplicate edges,
/// * grows the vertex count to cover the largest id seen (or a fixed `n`
///   requested via [`GraphBuilder::with_vertices`]),
/// * optionally relabels arbitrary `u64` ids (as found in SNAP edge lists) to
///   the compact range `0..n` via [`GraphBuilder::add_edge_raw`].
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
    /// Mapping from raw (external) ids to compact internal ids, allocated
    /// lazily — only used by [`add_edge_raw`](GraphBuilder::add_edge_raw).
    raw_ids: std::collections::HashMap<u64, VertexId>,
    raw_order: Vec<u64>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-declares the number of vertices. The final graph has at least this
    /// many vertices even if some of them never appear in an edge.
    pub fn with_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds an undirected edge between compact ids `u` and `v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Adds many edges at once.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }

    /// Adds an edge expressed in an arbitrary external id space (e.g. the 64-bit
    /// ids of SNAP edge lists). Ids are relabelled to a compact range in order
    /// of first appearance; [`GraphBuilder::raw_id_of`] recovers the mapping.
    pub fn add_edge_raw(&mut self, u: u64, v: u64) {
        let a = self.intern_raw(u);
        let b = self.intern_raw(v);
        self.edges.push((a, b));
    }

    fn intern_raw(&mut self, raw: u64) -> VertexId {
        if let Some(&id) = self.raw_ids.get(&raw) {
            return id;
        }
        let id = self.raw_order.len() as VertexId;
        self.raw_ids.insert(raw, id);
        self.raw_order.push(raw);
        id
    }

    /// The external id that was relabelled to compact id `v`, when
    /// [`add_edge_raw`](GraphBuilder::add_edge_raw) was used. Returns `None`
    /// for ids created through [`add_edge`](GraphBuilder::add_edge).
    pub fn raw_id_of(&self, v: VertexId) -> Option<u64> {
        self.raw_order.get(v as usize).copied()
    }

    /// Number of edges accumulated so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the builder into an [`UndirectedGraph`].
    pub fn build(self) -> UndirectedGraph {
        self.build_diagnostic().0
    }

    /// Finalises the builder, also reporting how many self-loops and
    /// duplicate edges were dropped (io diagnostics for messy edge lists).
    pub fn build_diagnostic(self) -> (UndirectedGraph, crate::csr::EdgeIngestStats) {
        let mut n = self.min_vertices.max(self.raw_order.len());
        for &(u, v) in &self.edges {
            n = n.max(u as usize + 1).max(v as usize + 1);
        }
        let mut stats = crate::csr::EdgeIngestStats::default();
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut pushed = 0usize;
        for (u, v) in self.edges {
            if u == v {
                stats.self_loops += 1;
                continue;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            pushed += 1;
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        let g = UndirectedGraph::from_normalized_adjacency(adj);
        stats.duplicates = pushed - g.num_edges();
        (g, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_grows_to_cover_ids() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 7);
        b.add_edge(3, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn builder_respects_declared_vertex_count() {
        let mut b = GraphBuilder::new().with_vertices(10);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn builder_drops_duplicates_and_loops() {
        let mut b = GraphBuilder::new();
        b.extend_edges(vec![(0, 1), (1, 0), (2, 2), (0, 1)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn raw_ids_are_compacted_in_first_seen_order() {
        let mut b = GraphBuilder::new();
        b.add_edge_raw(1_000_000, 42);
        b.add_edge_raw(42, 7);
        let g = b.clone().build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(b_raw(&b, 0), 1_000_000);
        assert_eq!(b_raw(&b, 1), 42);
        assert_eq!(b_raw(&b, 2), 7);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    fn b_raw(b: &GraphBuilder, v: VertexId) -> u64 {
        b.raw_id_of(v).unwrap()
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(GraphBuilder::new().pending_edges(), 0);
    }
}
