//! k-core decomposition and k-core extraction.
//!
//! The k-VCC enumerator (Algorithm 1, line 2) starts every recursive call by
//! peeling vertices of degree `< k`, because by Whitney's theorem
//! (Theorem 3 of the paper) every k-VCC is contained in a k-core.

use crate::graph::InducedSubgraph;
use crate::graph::UndirectedGraph;
use crate::types::VertexId;
use crate::view::GraphView;

/// Vertices bucket-sorted by current degree, with the position-swap update of
/// Batagelj & Zaveršnik.
///
/// Invariants: `vert` holds every vertex ordered by non-descending current
/// degree, `pos[v]` is the position of `v` inside `vert`, and `bin[d]` is the
/// index of the first vertex of degree `d` (among those not yet promoted past
/// their bucket). [`DegreeBuckets::demote`] moves a vertex one degree down in
/// `O(1)` by swapping it with the first vertex of its bucket — no queue, no
/// removed-flag re-scan.
struct DegreeBuckets {
    bin: Vec<usize>,
    pos: Vec<usize>,
    vert: Vec<VertexId>,
}

impl DegreeBuckets {
    /// Bucket sort by the given initial degrees.
    fn new(degree: &[usize]) -> Self {
        let n = degree.len();
        let max_degree = degree.iter().copied().max().unwrap_or(0);
        let mut bin = vec![0usize; max_degree + 2];
        for &d in degree {
            bin[d] += 1;
        }
        let mut start = 0usize;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        let mut pos = vec![0usize; n];
        let mut vert = vec![0 as VertexId; n];
        let mut next = bin.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = next[d];
            vert[next[d]] = v as VertexId;
            next[d] += 1;
        }
        DegreeBuckets { bin, pos, vert }
    }

    /// Decrements the current degree of `u`, swapping it with the first
    /// vertex of its bucket so the degree ordering of `vert` is preserved.
    #[inline]
    fn demote(&mut self, u: usize, degree: &mut [usize]) {
        let du = degree[u];
        let pu = self.pos[u];
        let pw = self.bin[du];
        let w = self.vert[pw];
        if u != w as usize {
            // Swap u and w inside the bucket array.
            self.pos[u] = pw;
            self.pos[w as usize] = pu;
            self.vert[pu] = w;
            self.vert[pw] = u as VertexId;
        }
        self.bin[du] += 1;
        degree[u] -= 1;
    }
}

/// Computes the core number of every vertex using the linear-time
/// bucket-peeling algorithm of Batagelj & Zaveršnik.
///
/// The core number of `v` is the largest `k` such that `v` belongs to the
/// k-core of the graph.
pub fn core_numbers<G: GraphView>(g: &G) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = g.degrees();
    let mut buckets = DegreeBuckets::new(&degree);
    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = buckets.vert[i];
        core[v as usize] = degree[v as usize] as u32;
        for &u in g.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v as usize] {
                buckets.demote(u, &mut degree);
            }
        }
    }
    core
}

/// Returns the vertices of the k-core (possibly empty), i.e. the maximal set
/// of vertices inducing a subgraph of minimum degree `>= k`, sorted
/// ascending.
///
/// Single-k extraction deliberately does **not** go through
/// `DegreeBuckets`: building the bucket structure costs several extra
/// passes over the vertex set, which measures slower than the flag-and-stack
/// cascade at every peel depth (the buckets only pay off when the whole
/// decomposition is needed — see [`core_numbers`]). Two things make this
/// peel cheap in the enumeration's hot path (Algorithm 1 re-peels at every
/// recursive call, where the input is usually already a k-core):
///
/// * a seed scan that finds no under-degree vertex returns immediately,
///   without allocating the removal flags or walking any adjacency row;
/// * the cascade runs off a LIFO `Vec` stack (no `VecDeque` ring buffer) —
///   removal order does not affect the final fixpoint.
pub fn k_core_vertices<G: GraphView>(g: &G, k: usize) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = g.degrees();
    let mut stack: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| degree[v as usize] < k)
        .collect();
    if stack.is_empty() {
        // Already a k-core; the common case inside the enumeration.
        return (0..n as VertexId).collect();
    }
    let mut removed = vec![false; n];
    for &v in &stack {
        removed[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        for &u in g.neighbors(v) {
            let u = u as usize;
            if !removed[u] {
                degree[u] -= 1;
                if degree[u] < k {
                    removed[u] = true;
                    stack.push(u as VertexId);
                }
            }
        }
    }
    (0..n as VertexId)
        .filter(|&v| !removed[v as usize])
        .collect()
}

/// Extracts the k-core as an [`InducedSubgraph`] (relabelled vertices plus the
/// mapping back to the input graph). Returns `None` when the k-core is empty.
pub fn k_core_subgraph(g: &UndirectedGraph, k: usize) -> Option<InducedSubgraph> {
    let vertices = k_core_vertices(g, k);
    if vertices.is_empty() {
        None
    } else {
        Some(g.induced_subgraph(&vertices))
    }
}

/// The degeneracy of the graph: the largest `k` for which a non-empty k-core
/// exists (0 for the empty graph).
pub fn degeneracy<G: GraphView>(g: &G) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clique of size `c` with a pendant path of length `p` attached.
    fn clique_with_tail(c: usize, p: usize) -> UndirectedGraph {
        let mut edges = Vec::new();
        for i in 0..c as VertexId {
            for j in (i + 1)..c as VertexId {
                edges.push((i, j));
            }
        }
        let mut prev = 0 as VertexId;
        for t in 0..p as VertexId {
            let v = c as VertexId + t;
            edges.push((prev, v));
            prev = v;
        }
        UndirectedGraph::from_edges(c + p, edges).unwrap()
    }

    #[test]
    fn core_numbers_of_clique_with_tail() {
        let g = clique_with_tail(5, 3);
        let core = core_numbers(&g);
        for (v, &c) in core.iter().enumerate().take(5) {
            assert_eq!(c, 4, "clique vertex {v}");
        }
        for (v, &c) in core.iter().enumerate().skip(5) {
            assert_eq!(c, 1, "tail vertex {v}");
        }
        assert_eq!(degeneracy(&g), 4);
    }

    #[test]
    fn k_core_vertices_peels_correctly() {
        let g = clique_with_tail(5, 3);
        assert_eq!(k_core_vertices(&g, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(k_core_vertices(&g, 4), vec![0, 1, 2, 3, 4]);
        assert!(k_core_vertices(&g, 5).is_empty());
        assert_eq!(k_core_vertices(&g, 1).len(), 8);
    }

    #[test]
    fn k_core_subgraph_maps_back() {
        let g = clique_with_tail(4, 2);
        let sub = k_core_subgraph(&g, 3).unwrap();
        assert_eq!(sub.graph.num_vertices(), 4);
        assert_eq!(sub.graph.num_edges(), 6);
        assert_eq!(sub.to_parent, vec![0, 1, 2, 3]);
        assert!(k_core_subgraph(&g, 4).is_none());
    }

    #[test]
    fn core_numbers_match_peeling_definition() {
        // For every k, the set {v : core[v] >= k} must equal the k-core.
        let g = clique_with_tail(6, 4);
        let core = core_numbers(&g);
        for k in 0..=6usize {
            let by_core: Vec<VertexId> = (0..g.num_vertices() as VertexId)
                .filter(|&v| core[v as usize] as usize >= k)
                .collect();
            assert_eq!(by_core, k_core_vertices(&g, k), "k = {k}");
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = UndirectedGraph::new(0);
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
        let g = UndirectedGraph::new(3);
        assert_eq!(core_numbers(&g), vec![0, 0, 0]);
        assert_eq!(k_core_vertices(&g, 0).len(), 3);
        assert!(k_core_vertices(&g, 1).is_empty());
    }
}
