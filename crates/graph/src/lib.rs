//! Undirected graph substrate for the k-VCC enumeration library.
//!
//! This crate provides the graph data structures and classic graph algorithms
//! that the paper *"Enumerating k-Vertex Connected Components in Large Graphs"*
//! (Wen et al., ICDE 2019) relies on:
//!
//! * [`GraphView`] — the read-only trait every algorithm in the workspace is
//!   generic over, with [`SubgraphView`] as the copy-free vertex-mask view
//!   used by the recursive partitioning.
//! * [`bitset`] — word-packed [`BitSet`] / [`EpochBitSet`] masks backing
//!   every hot-loop visited/alive/pruned flag in the workspace.
//! * [`CsrGraph`] — the cache-friendly compressed-sparse-row representation
//!   (two flat arrays) used for all enumeration work items.
//! * [`reorder`] — locality-improving vertex relabellings (degree-descending,
//!   BFS, hybrid) with both id maps, applied via [`csr::CsrGraph::reordered`].
//! * [`DeltaGraph`] — a mutable overlay (tombstone bitset + sorted insertion
//!   adjacency) applying batched [`EdgeUpdate`]s on top of an immutable CSR
//!   base, with ratio-triggered compaction back into a clean [`CsrGraph`].
//! * [`CompressedCsrGraph`] — delta + varint compressed adjacency with a lazy
//!   per-row decode cache; a drop-in [`GraphView`] for storage-bound
//!   deployments.
//! * [`UndirectedGraph`] — a compact, sorted adjacency-list representation with
//!   `u32` vertex identifiers, cheap induced-subgraph extraction and id
//!   remapping ([`graph::InducedSubgraph`]).
//! * [`GraphBuilder`] — tolerant construction from arbitrary edge lists
//!   (duplicate edges and self-loops are dropped, isolated vertices kept).
//! * [`traversal`] — BFS distances, connected components, reachability.
//! * [`kcore`] — linear-time core decomposition and k-core extraction
//!   (Algorithm 1, line 2 of the paper).
//! * [`scan_first`] — scan-first-search forests (building block of the sparse
//!   certificate of §4.2).
//! * [`metrics`] — diameter, edge density and clustering coefficient used by
//!   the effectiveness study (Figs. 7–9).
//! * [`io`] — SNAP-style edge-list reading and writing (Table 1 datasets).
//! * [`load`] — SNAP-scale streaming ingestion: the [`GraphLoader`] family
//!   builds CSR directly from a chunked parse → parallel sort → k-way merge
//!   pipeline, never materialising per-vertex `Vec`s.
//! * [`kcsr`] — the aligned `KCSR` v3 binary format whose offset/neighbour
//!   arrays can be **borrowed** from the byte buffer ([`CsrGraphRef`],
//!   [`MappedCsr`]) instead of decoded: file-backed loads are O(header)
//!   plus one validation sweep.
//!
//! The crate has no third-party runtime dependencies.
//!
//! `unsafe` is denied crate-wide with a single audited exception: the
//! alignment-checked byte↔word reinterpreting casts inside [`kcsr`] that
//! make the zero-copy borrow possible.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod codec;
pub mod compressed;
pub mod csr;
pub mod delta;
pub mod error;
pub mod graph;
pub mod io;
pub mod kcore;
pub mod kcsr;
pub mod load;
pub mod metrics;
pub mod reorder;
pub mod scan_first;
pub mod traversal;
pub mod types;
pub mod view;

pub use bitset::{BitSet, EpochBitSet};
pub use builder::GraphBuilder;
pub use compressed::{CompressedCsrGraph, RowPool};
pub use csr::{CsrGraph, CsrSubgraph, EdgeIngestStats};
pub use delta::{DeltaGraph, DeltaStats, EdgeUpdate, UpdateOp};
pub use error::GraphError;
pub use graph::{InducedSubgraph, UndirectedGraph};
pub use kcsr::{borrow_kcsr, decode_kcsr, write_kcsr_file, AlignedBytes, CsrGraphRef, MappedCsr};
pub use load::{
    effective_threads, GraphLoader, IngestedGraph, KcsrLoader, StreamingEdgeListLoader,
    WholeFileEdgeListLoader,
};
pub use reorder::{compute_ordering, OrderingStrategy, VertexOrdering};
pub use types::{VertexId, INVALID_VERTEX};
pub use view::{GraphView, SubgraphView};
