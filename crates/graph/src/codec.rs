//! Shared variable-length byte codec for every wire format in the workspace.
//!
//! The LEB128 varint and delta-row primitives were born inside
//! [`crate::CompressedCsrGraph`]'s adjacency compression; they are exactly
//! what the serialised work items, the persisted connectivity index and the
//! `kvcc-service` protocol need too, so they live here and every format
//! shares one implementation (the compressed graph module re-exports them
//! for compatibility).
//!
//! Three layers:
//!
//! * [`varint`] — raw LEB128 encode/decode for `u32` and `u64` values,
//!   rejecting truncated and overlong inputs;
//! * [`encode_row`] / [`decode_row`] — strictly-increasing id lists stored as
//!   first-value + gap-minus-one varints (sorted component members, adjacency
//!   rows, vertex cuts);
//! * [`Reader`] — a bounds-checked cursor over an untrusted buffer, so
//!   decoders validate as they go and can never index out of range.

use crate::types::VertexId;

/// LEB128 varint codec for `u32` and `u64` values.
pub mod varint {
    /// Appends `value` to `out` as an LEB128 varint (1–5 bytes).
    pub fn encode_u32(mut value: u32, out: &mut Vec<u8>) {
        while value >= 0x80 {
            out.push((value as u8 & 0x7F) | 0x80);
            value >>= 7;
        }
        out.push(value as u8);
    }

    /// Decodes one LEB128 varint starting at `bytes[at]`, returning the value
    /// and the position just past it; `None` on truncated or overlong input.
    pub fn decode_u32(bytes: &[u8], at: usize) -> Option<(u32, usize)> {
        let mut value: u32 = 0;
        let mut shift = 0u32;
        let mut pos = at;
        loop {
            let byte = *bytes.get(pos)?;
            pos += 1;
            let payload = (byte & 0x7F) as u32;
            // The fifth byte may only contribute the top 4 bits of a u32.
            if shift == 28 && payload > 0x0F {
                return None;
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Some((value, pos));
            }
            shift += 7;
            if shift > 28 {
                return None;
            }
        }
    }

    /// Appends `value` to `out` as an LEB128 varint (1–10 bytes).
    pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) {
        while value >= 0x80 {
            out.push((value as u8 & 0x7F) | 0x80);
            value >>= 7;
        }
        out.push(value as u8);
    }

    /// Decodes one 64-bit LEB128 varint starting at `bytes[at]`; `None` on
    /// truncated or overlong input.
    pub fn decode_u64(bytes: &[u8], at: usize) -> Option<(u64, usize)> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        let mut pos = at;
        loop {
            let byte = *bytes.get(pos)?;
            pos += 1;
            let payload = (byte & 0x7F) as u64;
            // The tenth byte may only contribute the top bit of a u64.
            if shift == 63 && payload > 0x01 {
                return None;
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Some((value, pos));
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }
}

/// Encodes one strictly-increasing id row (first value verbatim, then
/// gap-minus-one deltas), appending varints to `out`.
///
/// # Panics
///
/// Debug-asserts that `row` is strictly increasing.
pub fn encode_row(row: &[VertexId], out: &mut Vec<u8>) {
    debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row must be sorted");
    let mut prev: Option<VertexId> = None;
    for &v in row {
        match prev {
            None => varint::encode_u32(v, out),
            Some(p) => varint::encode_u32(v - p - 1, out),
        }
        prev = Some(v);
    }
}

/// Maximum encoded length of one `u32` LEB128 varint, in bytes.
pub const MAX_VARINT_U32_LEN: usize = 5;

/// Decode plan for the next four gap varints of an 8-byte window, indexed by
/// the window's continuation-bit mask (bit `i` = continuation bit of byte
/// `i`): where each varint starts and how many bytes all four consume.
/// `ok` is set only when all four varints are at most two bytes long and
/// complete inside the window — the common case for delta-encoded adjacency
/// rows, whose gaps rarely exceed 14 bits; anything longer is left to the
/// general fallback.
#[derive(Clone, Copy)]
struct QuadRecipe {
    start: [u8; 4],
    total: u8,
    ok: bool,
}

const QUAD_RECIPES: [QuadRecipe; 256] = build_quad_recipes();

const fn build_quad_recipes() -> [QuadRecipe; 256] {
    let mut table = [QuadRecipe {
        start: [0; 4],
        total: 0,
        ok: false,
    }; 256];
    let mut mask = 0usize;
    while mask < 256 {
        let mut start = [0u8; 4];
        let mut at = 0usize;
        let mut i = 0;
        let mut ok = true;
        while i < 4 {
            if at >= 8 {
                ok = false;
                break;
            }
            start[i] = at as u8;
            if (mask >> at) & 1 == 0 {
                // Stop bit on the head byte: a one-byte varint.
                at += 1;
            } else if at + 1 < 8 && (mask >> (at + 1)) & 1 == 0 {
                at += 2;
            } else {
                // Three or more bytes, or cut off by the window edge.
                ok = false;
                break;
            }
            i += 1;
        }
        if ok {
            table[mask] = QuadRecipe {
                start,
                total: at as u8,
                ok: true,
            };
        }
        mask += 1;
    }
    table
}

/// Decodes a one-or-two-byte varint whose head byte is the low byte of `p`,
/// without branching on its length: the head's continuation bit selects —
/// via a mask, not a branch — whether the second byte's payload joins in.
/// The caller (via [`QUAD_RECIPES`]) has already established the varint is
/// at most two bytes.
#[inline(always)]
fn decode_gap2(p: u64) -> u64 {
    let ext = ((p >> 7) & 1).wrapping_neg();
    (p & 0x7F) | ((p >> 1) & 0x3F80 & ext)
}

/// Decodes one `u32` varint whose bytes are known to lie within `bytes`
/// (the caller has checked `pos + MAX_VARINT_U32_LEN <= bytes.len()`), so
/// the per-byte bounds check of [`varint::decode_u32`] unrolls away. The
/// value semantics are identical: overlong encodings (a fifth byte with the
/// continuation bit set, or contributing more than the top 4 bits) return
/// `None`.
#[inline(always)]
fn decode_u32_within(bytes: &[u8], pos: usize) -> Option<(u32, usize)> {
    // One always-in-range slice per varint; the `[u8; 5]` view is then
    // indexed with constants, so no per-byte bounds branch survives in the
    // unrolled chain below.
    let w: &[u8; 5] = bytes[pos..pos + MAX_VARINT_U32_LEN]
        .try_into()
        .expect("window sliced to MAX_VARINT_U32_LEN");
    let b0 = w[0] as u32;
    if b0 & 0x80 == 0 {
        return Some((b0, pos + 1));
    }
    let b1 = w[1] as u32;
    let mut value = (b0 & 0x7F) | ((b1 & 0x7F) << 7);
    if b1 & 0x80 == 0 {
        return Some((value, pos + 2));
    }
    let b2 = w[2] as u32;
    value |= (b2 & 0x7F) << 14;
    if b2 & 0x80 == 0 {
        return Some((value, pos + 3));
    }
    let b3 = w[3] as u32;
    value |= (b3 & 0x7F) << 21;
    if b3 & 0x80 == 0 {
        return Some((value, pos + 4));
    }
    let b4 = w[4] as u32;
    // The fifth byte may only contribute the top 4 bits of a u32 and must
    // terminate the varint.
    if b4 > 0x0F {
        return None;
    }
    value |= b4 << 28;
    Some((value, pos + 5))
}

/// Decodes a row produced by [`encode_row`] (`count` values from
/// `bytes[at..]`), returning the values and the end position; `None` on
/// malformed input (truncation, varint overflow, or id overflow). Decoded
/// rows are strictly increasing by construction.
pub fn decode_row(bytes: &[u8], at: usize, count: usize) -> Option<(Vec<VertexId>, usize)> {
    let mut row = Vec::with_capacity(count);
    let end = decode_row_into(bytes, at, count, &mut row)?;
    Some((row, end))
}

/// [`decode_row`] into a caller-provided buffer (cleared first), returning
/// the end position. Lets callers with a recycled buffer — e.g. a pooled
/// decode cache — reuse its capacity instead of allocating per row.
///
/// Decodes gap varints four at a time through a masked quad decode (see
/// [`decode_row_append`]); accepts and rejects exactly the same inputs as
/// [`decode_row_scalar_into`].
pub fn decode_row_into(
    bytes: &[u8],
    at: usize,
    count: usize,
    row: &mut Vec<VertexId>,
) -> Option<usize> {
    row.clear();
    decode_row_append(bytes, at, count, row)
}

/// Reference one-varint-at-a-time row decoder, kept for differential tests
/// against the batched [`decode_row_into`] path.
pub fn decode_row_scalar_into(
    bytes: &[u8],
    at: usize,
    count: usize,
    row: &mut Vec<VertexId>,
) -> Option<usize> {
    row.clear();
    row.reserve(count);
    let mut pos = at;
    let mut prev: Option<VertexId> = None;
    for _ in 0..count {
        let (raw, next) = varint::decode_u32(bytes, pos)?;
        pos = next;
        let value = match prev {
            None => raw,
            Some(p) => p.checked_add(raw)?.checked_add(1)?,
        };
        row.push(value);
        prev = Some(value);
    }
    Some(pos)
}

/// [`decode_row_into`] that **appends** to `row` instead of clearing it,
/// letting streaming consumers (e.g. `CompressedCsrGraph::to_csr`) decode
/// many rows into one flat output buffer without an intermediate copy.
///
/// The hot path reads an 8-byte window, gathers its continuation bits into a
/// byte with a SWAR movemask, and decodes the next four gap varints through
/// the `QUAD_RECIPES` table with no per-byte branching — however one- and
/// two-byte gaps interleave (windows holding a 3+-byte varint fall back to
/// unrolled per-varint decodes behind the same single bounds check). The
/// scalar tail handles the last `< 4` values and any group too close to the
/// end of the buffer, where the window check cannot be hoisted.
pub fn decode_row_append(
    bytes: &[u8],
    at: usize,
    count: usize,
    row: &mut Vec<VertexId>,
) -> Option<usize> {
    row.reserve(count);
    let mut pos = at;
    let mut remaining = count;
    if remaining == 0 {
        return Some(pos);
    }
    // The first value is stored verbatim.
    let (first, next) = varint::decode_u32(bytes, pos)?;
    pos = next;
    row.push(first);
    let mut prev = first;
    remaining -= 1;
    // Batched quads of gap varints behind one window check per group. The
    // masked decode reads eight bytes (always in range: the loop guard keeps
    // twenty ahead), gathers their continuation bits into a byte with the
    // SWAR movemask multiply, and lets [`QUAD_RECIPES`] place the next four
    // varints — so the per-byte continuation branches of the scalar loop,
    // which the one/two-byte interleave of delta-encoded adjacency rows
    // makes unpredictable, become a table load, and the cursor advances once
    // per quad. The only dispatch branch left (`ok`) stays predicted-taken
    // for any row whose gaps fit 14 bits. Values accumulate in u64 with one
    // overflow check per quad, equivalent to the per-add checks of the
    // general path because the running maximum is the last value.
    while remaining >= 4 && pos + 4 * MAX_VARINT_U32_LEN <= bytes.len() {
        let group: &[u8; 8] = bytes[pos..pos + 8]
            .try_into()
            .expect("window sliced to 8 bytes");
        let word = u64::from_le_bytes(*group);
        // Movemask: bit i = continuation bit of byte i.
        let mask = (((word >> 7) & 0x0101_0101_0101_0101).wrapping_mul(0x0102_0408_1020_4080) >> 56)
            as usize;
        let q = &QUAD_RECIPES[mask];
        if q.ok {
            let g0 = decode_gap2(word >> (8 * q.start[0] as u32));
            let g1 = decode_gap2(word >> (8 * q.start[1] as u32));
            let g2 = decode_gap2(word >> (8 * q.start[2] as u32));
            let g3 = decode_gap2(word >> (8 * q.start[3] as u32));
            let v0 = prev as u64 + g0 + 1;
            let v1 = v0 + g1 + 1;
            let v2 = v1 + g2 + 1;
            let v3 = v2 + g3 + 1;
            if v3 > u32::MAX as u64 {
                return None;
            }
            row.extend_from_slice(&[v0 as u32, v1 as u32, v2 as u32, v3 as u32]);
            prev = v3 as u32;
            pos += q.total as usize;
            remaining -= 4;
            continue;
        }
        // A gap of 15+ bits (or one cut off by the window edge): unrolled
        // per-varint decodes, still behind the group's single window check.
        let (g0, p0) = decode_u32_within(bytes, pos)?;
        let (g1, p1) = decode_u32_within(bytes, p0)?;
        let (g2, p2) = decode_u32_within(bytes, p1)?;
        let (g3, p3) = decode_u32_within(bytes, p2)?;
        let v0 = prev.checked_add(g0)?.checked_add(1)?;
        let v1 = v0.checked_add(g1)?.checked_add(1)?;
        let v2 = v1.checked_add(g2)?.checked_add(1)?;
        let v3 = v2.checked_add(g3)?.checked_add(1)?;
        row.extend_from_slice(&[v0, v1, v2, v3]);
        prev = v3;
        pos = p3;
        remaining -= 4;
    }
    // Scalar tail: the remaining values, bounds-checked per byte.
    for _ in 0..remaining {
        let (raw, next) = varint::decode_u32(bytes, pos)?;
        pos = next;
        let value = prev.checked_add(raw)?.checked_add(1)?;
        row.push(value);
        prev = value;
    }
    Some(pos)
}

/// A bounds-checked cursor over an untrusted byte buffer.
///
/// Every accessor returns `None` instead of reading past the end, so wire
/// decoders built on it can never panic on truncated or hostile input;
/// [`Reader::finish`] asserts the buffer was consumed exactly, catching
/// trailing garbage.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Current position from the start of the buffer.
    pub fn position(&self) -> usize {
        self.at
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    /// Reads a fixed-width little-endian `u32`.
    pub fn u32_le(&mut self) -> Option<u32> {
        let slice = self.bytes.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
    }

    /// Reads one `u32` varint.
    pub fn varint_u32(&mut self) -> Option<u32> {
        let (value, next) = varint::decode_u32(self.bytes, self.at)?;
        self.at = next;
        Some(value)
    }

    /// Reads one `u64` varint.
    pub fn varint_u64(&mut self) -> Option<u64> {
        let (value, next) = varint::decode_u64(self.bytes, self.at)?;
        self.at = next;
        Some(value)
    }

    /// Reads `len` raw bytes.
    pub fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at.checked_add(len)?)?;
        self.at += len;
        Some(slice)
    }

    /// Reads a strictly-increasing delta row of `count` ids ([`decode_row`]).
    pub fn row(&mut self, count: usize) -> Option<Vec<VertexId>> {
        // Each encoded id needs at least one byte, so a hostile count can
        // never trigger an allocation larger than the buffer that carried it.
        if count > self.remaining() {
            return None;
        }
        let (row, next) = decode_row(self.bytes, self.at, count)?;
        self.at = next;
        Some(row)
    }

    /// Succeeds only when the buffer was consumed exactly.
    pub fn finish(self) -> Option<()> {
        if self.at == self.bytes.len() {
            Some(())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_varints_roundtrip_across_the_range() {
        let mut buf = Vec::new();
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            buf.clear();
            varint::encode_u64(value, &mut buf);
            assert_eq!(varint::decode_u64(&buf, 0), Some((value, buf.len())));
            // Truncations fail cleanly.
            for cut in 0..buf.len() {
                assert_eq!(varint::decode_u64(&buf[..cut], 0), None);
            }
        }
        // Overlong encodings are rejected: u64::MAX plus one more payload bit.
        let overlong = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert_eq!(varint::decode_u64(&overlong, 0), None);
        let eleven = [0x80u8; 11];
        assert_eq!(varint::decode_u64(&eleven, 0), None);
    }

    #[test]
    fn batched_and_scalar_row_decoders_agree() {
        let rows: Vec<Vec<VertexId>> = vec![
            vec![],
            vec![7],
            vec![0, 1, 2, 3],
            vec![5, 900, 901, 1_000_000],
            (0..23).map(|i| i * 3).collect(),
            vec![u32::MAX - 9, u32::MAX - 4, u32::MAX - 1],
        ];
        let mut buf = Vec::new();
        for row in rows {
            buf.clear();
            encode_row(&row, &mut buf);
            let mut scalar = Vec::new();
            let mut batched = Vec::new();
            let s = decode_row_scalar_into(&buf, 0, row.len(), &mut scalar);
            let b = decode_row_into(&buf, 0, row.len(), &mut batched);
            assert_eq!(s, b);
            assert_eq!(scalar, batched);
            assert_eq!(batched, row);
            // Truncations fail in both decoders.
            for cut in 0..buf.len() {
                assert!(decode_row_scalar_into(&buf[..cut], 0, row.len(), &mut scalar).is_none());
                assert!(decode_row_into(&buf[..cut], 0, row.len(), &mut batched).is_none());
            }
        }
    }

    #[test]
    fn append_decoder_streams_multiple_rows() {
        let first: Vec<VertexId> = (10..40).collect();
        let second: Vec<VertexId> = vec![1, 5, 1 << 20];
        let mut buf = Vec::new();
        encode_row(&first, &mut buf);
        let boundary = buf.len();
        encode_row(&second, &mut buf);
        let mut out = Vec::new();
        let mid = decode_row_append(&buf, 0, first.len(), &mut out).unwrap();
        assert_eq!(mid, boundary);
        let end = decode_row_append(&buf, mid, second.len(), &mut out).unwrap();
        assert_eq!(end, buf.len());
        let expected: Vec<VertexId> = first.iter().chain(second.iter()).copied().collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn batched_decoder_rejects_overlong_and_overflow() {
        // Row of 6 gaps where the 5th varint (inside the batched window once
        // padded) is overlong: fifth byte contributes more than 4 bits.
        let mut buf = Vec::new();
        varint::encode_u32(1, &mut buf); // first value
        for _ in 0..4 {
            buf.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F]); // invalid
        }
        buf.extend_from_slice(&[0u8; 8]); // padding keeps the window in range
        let mut row = Vec::new();
        assert!(decode_row_into(&buf, 0, 6, &mut row).is_none());
        assert!(decode_row_scalar_into(&buf, 0, 6, &mut row).is_none());
        // Id overflow: gaps that push the running value past u32::MAX.
        let mut buf = Vec::new();
        varint::encode_u32(u32::MAX - 2, &mut buf);
        for _ in 0..5 {
            varint::encode_u32(0, &mut buf);
        }
        buf.extend_from_slice(&[0u8; 20]);
        assert!(decode_row_into(&buf, 0, 6, &mut row).is_none());
        assert!(decode_row_scalar_into(&buf, 0, 6, &mut row).is_none());
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut buf = vec![7u8];
        buf.extend_from_slice(&42u32.to_le_bytes());
        varint::encode_u32(300, &mut buf);
        varint::encode_u64(1 << 40, &mut buf);
        encode_row(&[3, 4, 10], &mut buf);
        buf.extend_from_slice(b"xy");

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32_le(), Some(42));
        assert_eq!(r.varint_u32(), Some(300));
        assert_eq!(r.varint_u64(), Some(1 << 40));
        assert_eq!(r.row(3), Some(vec![3, 4, 10]));
        assert_eq!(r.take(2), Some(&b"xy"[..]));
        assert_eq!(r.remaining(), 0);
        assert!(r.finish().is_some());

        let mut short = Reader::new(&buf[..2]);
        assert_eq!(short.u8(), Some(7));
        assert_eq!(short.u32_le(), None, "past the end");
        assert!(short.finish().is_none(), "one byte left unread");

        // A count larger than the buffer is rejected before allocating.
        let mut hostile = Reader::new(&[1u8, 2]);
        assert_eq!(hostile.row(usize::MAX), None);
    }
}
