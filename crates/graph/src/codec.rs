//! Shared variable-length byte codec for every wire format in the workspace.
//!
//! The LEB128 varint and delta-row primitives were born inside
//! [`crate::CompressedCsrGraph`]'s adjacency compression; they are exactly
//! what the serialised work items, the persisted connectivity index and the
//! `kvcc-service` protocol need too, so they live here and every format
//! shares one implementation (the compressed graph module re-exports them
//! for compatibility).
//!
//! Three layers:
//!
//! * [`varint`] — raw LEB128 encode/decode for `u32` and `u64` values,
//!   rejecting truncated and overlong inputs;
//! * [`encode_row`] / [`decode_row`] — strictly-increasing id lists stored as
//!   first-value + gap-minus-one varints (sorted component members, adjacency
//!   rows, vertex cuts);
//! * [`Reader`] — a bounds-checked cursor over an untrusted buffer, so
//!   decoders validate as they go and can never index out of range.

use crate::types::VertexId;

/// LEB128 varint codec for `u32` and `u64` values.
pub mod varint {
    /// Appends `value` to `out` as an LEB128 varint (1–5 bytes).
    pub fn encode_u32(mut value: u32, out: &mut Vec<u8>) {
        while value >= 0x80 {
            out.push((value as u8 & 0x7F) | 0x80);
            value >>= 7;
        }
        out.push(value as u8);
    }

    /// Decodes one LEB128 varint starting at `bytes[at]`, returning the value
    /// and the position just past it; `None` on truncated or overlong input.
    pub fn decode_u32(bytes: &[u8], at: usize) -> Option<(u32, usize)> {
        let mut value: u32 = 0;
        let mut shift = 0u32;
        let mut pos = at;
        loop {
            let byte = *bytes.get(pos)?;
            pos += 1;
            let payload = (byte & 0x7F) as u32;
            // The fifth byte may only contribute the top 4 bits of a u32.
            if shift == 28 && payload > 0x0F {
                return None;
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Some((value, pos));
            }
            shift += 7;
            if shift > 28 {
                return None;
            }
        }
    }

    /// Appends `value` to `out` as an LEB128 varint (1–10 bytes).
    pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) {
        while value >= 0x80 {
            out.push((value as u8 & 0x7F) | 0x80);
            value >>= 7;
        }
        out.push(value as u8);
    }

    /// Decodes one 64-bit LEB128 varint starting at `bytes[at]`; `None` on
    /// truncated or overlong input.
    pub fn decode_u64(bytes: &[u8], at: usize) -> Option<(u64, usize)> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        let mut pos = at;
        loop {
            let byte = *bytes.get(pos)?;
            pos += 1;
            let payload = (byte & 0x7F) as u64;
            // The tenth byte may only contribute the top bit of a u64.
            if shift == 63 && payload > 0x01 {
                return None;
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Some((value, pos));
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }
}

/// Encodes one strictly-increasing id row (first value verbatim, then
/// gap-minus-one deltas), appending varints to `out`.
///
/// # Panics
///
/// Debug-asserts that `row` is strictly increasing.
pub fn encode_row(row: &[VertexId], out: &mut Vec<u8>) {
    debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row must be sorted");
    let mut prev: Option<VertexId> = None;
    for &v in row {
        match prev {
            None => varint::encode_u32(v, out),
            Some(p) => varint::encode_u32(v - p - 1, out),
        }
        prev = Some(v);
    }
}

/// Decodes a row produced by [`encode_row`] (`count` values from
/// `bytes[at..]`), returning the values and the end position; `None` on
/// malformed input (truncation, varint overflow, or id overflow). Decoded
/// rows are strictly increasing by construction.
pub fn decode_row(bytes: &[u8], at: usize, count: usize) -> Option<(Vec<VertexId>, usize)> {
    let mut row = Vec::with_capacity(count);
    let end = decode_row_into(bytes, at, count, &mut row)?;
    Some((row, end))
}

/// [`decode_row`] into a caller-provided buffer (cleared first), returning
/// the end position. Lets callers with a recycled buffer — e.g. a pooled
/// decode cache — reuse its capacity instead of allocating per row.
pub fn decode_row_into(
    bytes: &[u8],
    at: usize,
    count: usize,
    row: &mut Vec<VertexId>,
) -> Option<usize> {
    row.clear();
    row.reserve(count);
    let mut pos = at;
    let mut prev: Option<VertexId> = None;
    for _ in 0..count {
        let (raw, next) = varint::decode_u32(bytes, pos)?;
        pos = next;
        let value = match prev {
            None => raw,
            Some(p) => p.checked_add(raw)?.checked_add(1)?,
        };
        row.push(value);
        prev = Some(value);
    }
    Some(pos)
}

/// A bounds-checked cursor over an untrusted byte buffer.
///
/// Every accessor returns `None` instead of reading past the end, so wire
/// decoders built on it can never panic on truncated or hostile input;
/// [`Reader::finish`] asserts the buffer was consumed exactly, catching
/// trailing garbage.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Current position from the start of the buffer.
    pub fn position(&self) -> usize {
        self.at
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    /// Reads a fixed-width little-endian `u32`.
    pub fn u32_le(&mut self) -> Option<u32> {
        let slice = self.bytes.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
    }

    /// Reads one `u32` varint.
    pub fn varint_u32(&mut self) -> Option<u32> {
        let (value, next) = varint::decode_u32(self.bytes, self.at)?;
        self.at = next;
        Some(value)
    }

    /// Reads one `u64` varint.
    pub fn varint_u64(&mut self) -> Option<u64> {
        let (value, next) = varint::decode_u64(self.bytes, self.at)?;
        self.at = next;
        Some(value)
    }

    /// Reads `len` raw bytes.
    pub fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at.checked_add(len)?)?;
        self.at += len;
        Some(slice)
    }

    /// Reads a strictly-increasing delta row of `count` ids ([`decode_row`]).
    pub fn row(&mut self, count: usize) -> Option<Vec<VertexId>> {
        // Each encoded id needs at least one byte, so a hostile count can
        // never trigger an allocation larger than the buffer that carried it.
        if count > self.remaining() {
            return None;
        }
        let (row, next) = decode_row(self.bytes, self.at, count)?;
        self.at = next;
        Some(row)
    }

    /// Succeeds only when the buffer was consumed exactly.
    pub fn finish(self) -> Option<()> {
        if self.at == self.bytes.len() {
            Some(())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_varints_roundtrip_across_the_range() {
        let mut buf = Vec::new();
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ] {
            buf.clear();
            varint::encode_u64(value, &mut buf);
            assert_eq!(varint::decode_u64(&buf, 0), Some((value, buf.len())));
            // Truncations fail cleanly.
            for cut in 0..buf.len() {
                assert_eq!(varint::decode_u64(&buf[..cut], 0), None);
            }
        }
        // Overlong encodings are rejected: u64::MAX plus one more payload bit.
        let overlong = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert_eq!(varint::decode_u64(&overlong, 0), None);
        let eleven = [0x80u8; 11];
        assert_eq!(varint::decode_u64(&eleven, 0), None);
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut buf = vec![7u8];
        buf.extend_from_slice(&42u32.to_le_bytes());
        varint::encode_u32(300, &mut buf);
        varint::encode_u64(1 << 40, &mut buf);
        encode_row(&[3, 4, 10], &mut buf);
        buf.extend_from_slice(b"xy");

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32_le(), Some(42));
        assert_eq!(r.varint_u32(), Some(300));
        assert_eq!(r.varint_u64(), Some(1 << 40));
        assert_eq!(r.row(3), Some(vec![3, 4, 10]));
        assert_eq!(r.take(2), Some(&b"xy"[..]));
        assert_eq!(r.remaining(), 0);
        assert!(r.finish().is_some());

        let mut short = Reader::new(&buf[..2]);
        assert_eq!(short.u8(), Some(7));
        assert_eq!(short.u32_le(), None, "past the end");
        assert!(short.finish().is_none(), "one byte left unread");

        // A count larger than the buffer is rejected before allocating.
        let mut hostile = Reader::new(&[1u8, 2]);
        assert_eq!(hostile.row(usize::MAX), None);
    }
}
