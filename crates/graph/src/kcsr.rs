//! The aligned, zero-copy `KCSR` v3 on-disk CSR format.
//!
//! Versions 1 (fixed-width) and 2 (delta + varint) of the `KCSR` wire format
//! must be *decoded*: every load allocates two fresh arrays and walks the
//! whole payload byte by byte, which makes opening a million-edge graph an
//! O(m) decode before the first query. Version 3 instead lays the two CSR
//! arrays out **8-byte-aligned and little-endian** behind a validated header,
//! so a loader that holds the file in aligned memory can *borrow* the buffer:
//! [`CsrGraphRef`] reinterprets the offset and neighbour regions as `&[u32]`
//! in O(1) and implements [`GraphView`] directly over them. The same layout
//! is what an `mmap`-backed substrate would map, hence "mmap-ready".
//!
//! # Layout (all integers little-endian)
//!
//! | offset | size       | field                                        |
//! |--------|------------|----------------------------------------------|
//! | 0      | 4          | magic `b"KCSR"`                              |
//! | 4      | 1          | format version (3)                           |
//! | 5      | 1          | endianness marker (1 = little)               |
//! | 6      | 2          | reserved, must be zero                       |
//! | 8      | 8          | `n` — number of vertices (`u64`)             |
//! | 16     | 8          | `2m` — neighbour count (`u64`)               |
//! | 24     | 8          | word-wise FNV-1a-64 checksum of the payload  |
//! | 32     | 4·(n+1)    | offsets (`u32`)                              |
//! | …      | 0 or 4     | zero padding to the next 8-byte boundary     |
//! | …      | 4·2m       | neighbours (`u32`)                           |
//!
//! Because the header is 32 bytes and the padding realigns after the offset
//! array, **both** array regions start 8-byte-aligned whenever the buffer
//! itself does. [`AlignedBytes`] guarantees exactly that (it stores file
//! bytes in `u64` words), so [`MappedCsr::open`] always takes the borrow
//! path on little-endian hosts. Foreign buffers — an unaligned subslice of a
//! network frame, or any buffer on a big-endian host — fall back to
//! [`decode_kcsr`], the checked copy path accepting arbitrary `&[u8]`.
//!
//! # Integrity
//!
//! The header checksum covers the entire payload, so a truncated or
//! bit-flipped file is rejected before any graph is handed out. On top of
//! that, both load paths run the same structural validation as
//! [`CsrGraph::from_bytes`] (monotone offsets; in-range, strictly sorted,
//! loop-free rows; symmetric adjacency) — a read-only scan with no per-row
//! allocation, which is what keeps the borrow path cheap: an aligned load is
//! one O(n + m) verification sweep instead of a varint decode plus two array
//! builds.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use crate::csr::{validate_view_rows, CsrGraph, CSR_WIRE_MAGIC, CSR_WIRE_VERSION_ALIGNED};
use crate::error::GraphError;
use crate::types::VertexId;
use crate::view::GraphView;

/// Header size of the version-3 layout.
const KCSR_HEADER: usize = 32;
/// Endianness marker byte: the format is always written little-endian.
const KCSR_LITTLE_ENDIAN: u8 = 1;

/// The one place in the crate where `unsafe` is allowed: reinterpreting
/// casts between byte and word slices. Both directions are
/// alignment-checked (or alignment-guaranteed by construction) and involve
/// only integer types, for which every bit pattern is valid.
mod cast {
    #![allow(unsafe_code)]

    /// Reinterprets `bytes` as `&[u32]` without copying. Returns `None`
    /// unless the region is 4-byte-aligned, a whole number of `u32`s long,
    /// and the host is little-endian (the on-disk format is little-endian,
    /// so a big-endian host must take the copy path instead).
    pub(super) fn bytes_as_u32s(bytes: &[u8]) -> Option<&[u32]> {
        if !cfg!(target_endian = "little") || !bytes.len().is_multiple_of(4) {
            return None;
        }
        // SAFETY: `align_to` splits at correct alignment boundaries and
        // never exceeds the input region; `u32` has no invalid bit
        // patterns. Requiring the prefix and suffix to be empty proves the
        // whole region was reinterpreted.
        let (prefix, mid, suffix) = unsafe { bytes.align_to::<u32>() };
        (prefix.is_empty() && suffix.is_empty()).then_some(mid)
    }

    /// The bytes of a `u64` word buffer (always valid: 8-to-1 widening).
    pub(super) fn words_as_bytes(words: &[u64]) -> &[u8] {
        // SAFETY: a `u64` slice is 8 contiguous bytes per element with no
        // padding, and every byte pattern is a valid `u8`.
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
    }

    /// Mutable byte view of a `u64` word buffer (for reading a file
    /// directly into aligned storage).
    pub(super) fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
        // SAFETY: as [`words_as_bytes`]; the returned borrow holds the
        // exclusive borrow of `words`, and any byte write leaves the
        // underlying `u64`s valid.
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8) }
    }
}

/// A byte buffer whose start is guaranteed 8-byte-aligned (it is backed by
/// `u64` words), so a `KCSR` v3 file held in it can always be borrowed
/// zero-copy on little-endian hosts. This is the in-memory stand-in for an
/// `mmap`-ed region, which the OS also hands out page-aligned.
#[derive(Clone, Debug, Default)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// An aligned zeroed buffer of `len` bytes.
    pub fn with_len(len: usize) -> Self {
        AlignedBytes {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Copies an arbitrary byte slice into aligned storage.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut out = Self::with_len(bytes.len());
        out.as_bytes_mut().copy_from_slice(bytes);
        out
    }

    /// Reads a whole file into aligned storage — the load primitive behind
    /// [`MappedCsr::open`]. One read syscall loop into the final buffer; no
    /// intermediate `Vec<u8>`.
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Self, GraphError> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| GraphError::MalformedBytes {
            reason: "file too large for this address space",
        })?;
        let mut out = Self::with_len(len);
        file.read_exact(out.as_bytes_mut())?;
        Ok(out)
    }

    /// The buffer contents.
    pub fn as_bytes(&self) -> &[u8] {
        &cast::words_as_bytes(&self.words)[..self.len]
    }

    /// Mutable view of the buffer contents.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        &mut cast::words_as_bytes_mut(&mut self.words)[..len]
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// FNV-1a 64-bit hash over 8-byte little-endian words (trailing bytes
/// folded individually) — the payload checksum of the v3 header. Word-wise
/// folding matters: the hash is a serial xor→multiply chain, so per-byte
/// FNV costs one multiply latency *per payload byte* and would dominate the
/// whole zero-copy load. One step per word is 8× shorter. Every step is a
/// bijection (xor, then multiply by an odd constant), so any single-bit
/// flip still changes the final hash. Not cryptographic; it exists to
/// catch truncation, bit rot and torn writes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut chunks = bytes.chunks_exact(8);
    let mut h = OFFSET;
    for c in chunks.by_ref() {
        h = (h ^ u64::from_le_bytes(c.try_into().expect("8 bytes"))).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

/// Byte ranges of a validated v3 buffer (header already checked).
#[derive(Clone, Copy, Debug)]
struct Layout {
    n: usize,
    num_neighbors: usize,
    offsets_at: usize,
    neighbors_at: usize,
}

impl Layout {
    fn offsets_end(&self) -> usize {
        self.offsets_at + 4 * (self.n + 1)
    }

    fn neighbors_end(&self) -> usize {
        self.neighbors_at + 4 * self.num_neighbors
    }
}

/// Padding inserted after the offset array so the neighbour array starts
/// 8-byte-aligned: the offsets end on a 4-byte boundary, so this is 0 or 4.
fn pad_after_offsets(n: usize) -> usize {
    (8 - (4 * (n + 1)) % 8) % 8
}

/// Parses and fully validates the v3 header: magic, version, endianness
/// marker, reserved bytes, exact total length, and the payload checksum.
fn parse_header(bytes: &[u8]) -> Result<Layout, GraphError> {
    let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
    if bytes.len() < KCSR_HEADER {
        return Err(malformed("buffer shorter than the aligned header"));
    }
    if bytes[..4] != CSR_WIRE_MAGIC {
        return Err(malformed("bad magic (not a CSR graph buffer)"));
    }
    if bytes[4] != CSR_WIRE_VERSION_ALIGNED {
        return Err(malformed("not an aligned (version 3) CSR buffer"));
    }
    if bytes[5] != KCSR_LITTLE_ENDIAN {
        return Err(malformed("unknown endianness marker"));
    }
    if bytes[6] != 0 || bytes[7] != 0 {
        return Err(malformed("reserved header bytes must be zero"));
    }
    let read_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let n = usize::try_from(read_u64(8)).map_err(|_| malformed("vertex count overflows"))?;
    let num_neighbors =
        usize::try_from(read_u64(16)).map_err(|_| malformed("neighbour count overflows"))?;
    let declared_sum = read_u64(24);
    // Exact-length check with overflow-safe arithmetic: a hostile header
    // cannot request regions beyond (or short of) the buffer it arrived in.
    let expected = 4usize
        .checked_mul(
            n.checked_add(1)
                .ok_or_else(|| malformed("vertex count overflows"))?,
        )
        .and_then(|ob| ob.checked_add(pad_after_offsets(n)))
        .and_then(|t| {
            4usize
                .checked_mul(num_neighbors)
                .and_then(|nb| t.checked_add(nb))
        })
        .and_then(|t| t.checked_add(KCSR_HEADER))
        .ok_or_else(|| malformed("header sizes overflow"))?;
    if bytes.len() != expected {
        return Err(malformed("buffer length disagrees with the header"));
    }
    if fnv1a64(&bytes[KCSR_HEADER..]) != declared_sum {
        return Err(malformed("payload checksum mismatch (corrupted buffer)"));
    }
    let offsets_at = KCSR_HEADER;
    let neighbors_at = offsets_at + 4 * (n + 1) + pad_after_offsets(n);
    Ok(Layout {
        n,
        num_neighbors,
        offsets_at,
        neighbors_at,
    })
}

/// Offset-array invariants shared by both load paths: starts at zero, ends
/// at the neighbour count, never decreases. Checked **before** any
/// [`CsrGraphRef`] is formed, because row slicing assumes them.
fn check_offsets(offsets: &[u32], num_neighbors: usize) -> Result<(), GraphError> {
    let malformed = |reason: &'static str| GraphError::MalformedBytes { reason };
    let last = *offsets.last().expect("offsets have n + 1 >= 1 entries");
    if offsets[0] != 0 || last as usize != num_neighbors {
        return Err(malformed("offset array does not span the adjacency"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(malformed("offsets must be non-decreasing"));
    }
    Ok(())
}

/// A borrowed CSR graph over two reinterpreted `&[u32]` regions — the
/// zero-copy view of a `KCSR` v3 buffer. Implements [`GraphView`], so every
/// algorithm in the workspace runs on it directly; [`CsrGraphRef::to_graph`]
/// materialises an owned [`CsrGraph`] when one is needed.
#[derive(Clone, Copy, Debug)]
pub struct CsrGraphRef<'a> {
    offsets: &'a [u32],
    neighbors: &'a [u32],
}

impl<'a> CsrGraphRef<'a> {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// The sorted neighbour slice of `v`, borrowing the underlying buffer
    /// for the full lifetime `'a` (not just this call).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &'a [VertexId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Copies the borrowed arrays into an owned [`CsrGraph`].
    pub fn to_graph(&self) -> CsrGraph {
        CsrGraph::from_parts(self.offsets.to_vec(), self.neighbors.to_vec())
    }
}

impl GraphView for CsrGraphRef<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraphRef::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraphRef::num_edges(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        CsrGraphRef::neighbors(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraphRef::degree(self, v)
    }

    /// The view itself owns nothing; the borrowed regions are reported so
    /// the memory tracker still sees the resident working set.
    fn memory_bytes(&self) -> usize {
        4 * (self.offsets.len() + self.neighbors.len()) + std::mem::size_of::<Self>()
    }
}

/// Casts the two payload regions of a validated layout. Fails (`None`) only
/// for unaligned buffers or big-endian hosts.
fn borrow_regions<'a>(bytes: &'a [u8], layout: &Layout) -> Option<CsrGraphRef<'a>> {
    let offsets = cast::bytes_as_u32s(&bytes[layout.offsets_at..layout.offsets_end()])?;
    let neighbors = cast::bytes_as_u32s(&bytes[layout.neighbors_at..layout.neighbors_end()])?;
    Some(CsrGraphRef { offsets, neighbors })
}

/// Borrows a `KCSR` v3 buffer zero-copy, validating the header, checksum
/// and the full [`GraphView`] structural contract. Errors (instead of
/// silently copying) when the buffer is not 4-byte-aligned or the host is
/// big-endian — callers that can hold unaligned bytes should use
/// [`decode_kcsr`] as the fallback.
pub fn borrow_kcsr(bytes: &[u8]) -> Result<CsrGraphRef<'_>, GraphError> {
    let layout = parse_header(bytes)?;
    let graph = borrow_regions(bytes, &layout).ok_or(GraphError::MalformedBytes {
        reason: "buffer not aligned for zero-copy borrow (decode_kcsr is the fallback)",
    })?;
    check_offsets(graph.offsets, layout.num_neighbors)?;
    validate_view_rows(&graph)?;
    Ok(graph)
}

/// The checked copy fallback: decodes a `KCSR` v3 buffer into an owned
/// [`CsrGraph`] from **any** `&[u8]`, whatever its alignment or the host
/// endianness. Same validation as [`borrow_kcsr`]; the two paths produce
/// byte-identical graphs.
pub fn decode_kcsr(bytes: &[u8]) -> Result<CsrGraph, GraphError> {
    let layout = parse_header(bytes)?;
    let decode_region = |at: usize, count: usize| -> Vec<u32> {
        bytes[at..at + 4 * count]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    };
    let offsets = decode_region(layout.offsets_at, layout.n + 1);
    let neighbors = decode_region(layout.neighbors_at, layout.num_neighbors);
    check_offsets(&offsets, layout.num_neighbors)?;
    let graph = CsrGraph::from_parts(offsets, neighbors);
    validate_view_rows(&graph)?;
    Ok(graph)
}

impl CsrGraph {
    /// Serialises the graph in the aligned `KCSR` v3 layout (see the
    /// [module docs](self)). The buffer can be loaded zero-copy via
    /// [`borrow_kcsr`] / [`MappedCsr`], decoded from any alignment via
    /// [`decode_kcsr`], or handed to [`CsrGraph::from_bytes`], which
    /// accepts all three format versions.
    pub fn to_bytes_aligned(&self) -> Vec<u8> {
        let n = self.num_vertices();
        let offsets = self.offsets();
        let neighbors = self.neighbor_data();
        let pad = pad_after_offsets(n);
        let total = KCSR_HEADER + 4 * offsets.len() + pad + 4 * neighbors.len();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&CSR_WIRE_MAGIC);
        out.push(CSR_WIRE_VERSION_ALIGNED);
        out.push(KCSR_LITTLE_ENDIAN);
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(neighbors.len() as u64).to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum patched below
        for &o in offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&[0u8; 8][..pad]);
        for &w in neighbors {
            out.extend_from_slice(&w.to_le_bytes());
        }
        debug_assert_eq!(out.len(), total);
        let sum = fnv1a64(&out[KCSR_HEADER..]);
        out[24..32].copy_from_slice(&sum.to_le_bytes());
        out
    }
}

/// Writes a graph to disk in the aligned `KCSR` v3 format.
pub fn write_kcsr_file<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<(), GraphError> {
    std::fs::write(path, graph.to_bytes_aligned())?;
    Ok(())
}

/// An owned, aligned `KCSR` v3 buffer serving queries **in place**: the file
/// bytes are held in [`AlignedBytes`] and every accessor re-derives the O(1)
/// borrowed view, so no decoded copy of the graph ever exists. Construction
/// validates once (header, checksum, structural contract); after that the
/// casts are infallible.
///
/// This is the in-process equivalent of an `mmap`-backed graph — swap
/// [`AlignedBytes`] for a mapped region and nothing else changes.
#[derive(Clone, Debug)]
pub struct MappedCsr {
    bytes: AlignedBytes,
    layout: Layout,
}

impl MappedCsr {
    /// Opens a `KCSR` v3 file zero-copy.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, GraphError> {
        Self::from_aligned(AlignedBytes::read_file(path)?)
    }

    /// Wraps an aligned buffer, validating it fully (header, checksum,
    /// structural row contract) exactly once.
    pub fn from_aligned(bytes: AlignedBytes) -> Result<Self, GraphError> {
        let layout = parse_header(bytes.as_bytes())?;
        let graph =
            borrow_regions(bytes.as_bytes(), &layout).ok_or(GraphError::MalformedBytes {
                reason: "buffer not aligned for zero-copy borrow (decode_kcsr is the fallback)",
            })?;
        check_offsets(graph.offsets, layout.num_neighbors)?;
        validate_view_rows(&graph)?;
        Ok(MappedCsr { bytes, layout })
    }

    /// The borrowed CSR view over the owned buffer.
    #[inline]
    pub fn as_csr_ref(&self) -> CsrGraphRef<'_> {
        borrow_regions(self.bytes.as_bytes(), &self.layout).expect("validated at construction")
    }

    /// Size of the backing buffer in bytes (the file size).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

impl GraphView for MappedCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.layout.n
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.layout.num_neighbors / 2
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.as_csr_ref().neighbors(v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.as_csr_ref().degree(v)
    }

    fn memory_bytes(&self) -> usize {
        self.bytes.words.capacity() * 8 + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> CsrGraph {
        CsrGraph::from_edges(
            6,
            vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)],
        )
        .unwrap()
    }

    #[test]
    fn aligned_roundtrip_borrow_and_decode_agree() {
        for graph in [sample_graph(), CsrGraph::new(0), CsrGraph::new(3)] {
            let bytes = AlignedBytes::copy_from(&graph.to_bytes_aligned());
            let borrowed = borrow_kcsr(bytes.as_bytes()).unwrap();
            assert_eq!(borrowed.to_graph(), graph);
            let decoded = decode_kcsr(bytes.as_bytes()).unwrap();
            assert_eq!(decoded, graph);
            // The generic entry point accepts version 3 too.
            assert_eq!(CsrGraph::from_bytes(bytes.as_bytes()).unwrap(), graph);
        }
    }

    #[test]
    fn both_regions_are_eight_byte_aligned() {
        for n in [0usize, 1, 2, 5, 8] {
            let graph = CsrGraph::new(n);
            let bytes = graph.to_bytes_aligned();
            let pad = pad_after_offsets(n);
            assert_eq!((KCSR_HEADER + 4 * (n + 1) + pad) % 8, 0, "n = {n}");
            assert_eq!(bytes.len(), KCSR_HEADER + 4 * (n + 1) + pad, "n = {n}");
        }
    }

    #[test]
    fn unaligned_buffers_borrow_err_but_decode_fine() {
        let graph = sample_graph();
        let encoded = graph.to_bytes_aligned();
        // Shift the buffer by one byte so it cannot be 4-byte-aligned.
        let mut shifted = vec![0u8; encoded.len() + 1];
        shifted[1..].copy_from_slice(&encoded);
        let view = &shifted[1..];
        if cfg!(target_endian = "little") {
            assert!(matches!(
                borrow_kcsr(view),
                Err(GraphError::MalformedBytes { .. })
            ));
        }
        assert_eq!(decode_kcsr(view).unwrap(), graph);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let graph = sample_graph();
        let good = graph.to_bytes_aligned();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_kcsr(&bad).is_err(),
                    "flip of byte {byte} bit {bit} must be rejected"
                );
            }
        }
    }

    #[test]
    fn truncations_and_trailing_garbage_are_rejected() {
        let good = sample_graph().to_bytes_aligned();
        for cut in 0..good.len() {
            assert!(decode_kcsr(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_kcsr(&trailing).is_err());
    }

    #[test]
    fn mapped_csr_serves_queries_in_place() {
        let graph = sample_graph();
        let mapped =
            MappedCsr::from_aligned(AlignedBytes::copy_from(&graph.to_bytes_aligned())).unwrap();
        assert_eq!(mapped.num_vertices(), graph.num_vertices());
        assert_eq!(mapped.num_edges(), graph.num_edges());
        for v in graph.vertices() {
            assert_eq!(GraphView::neighbors(&mapped, v), graph.neighbors(v));
        }
        assert!(mapped.memory_bytes() >= mapped.byte_len());
        assert_eq!(mapped.as_csr_ref().to_graph(), graph);
    }

    #[test]
    fn mapped_csr_file_roundtrip() {
        let graph = sample_graph();
        let path = std::env::temp_dir().join(format!("kvcc_kcsr_test_{}.kcsr", std::process::id()));
        write_kcsr_file(&graph, &path).unwrap();
        let mapped = MappedCsr::open(&path).unwrap();
        assert_eq!(mapped.as_csr_ref().to_graph(), graph);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_headers_are_rejected_before_allocation() {
        let assert_malformed = |bytes: &[u8]| {
            assert!(matches!(
                decode_kcsr(bytes),
                Err(GraphError::MalformedBytes { .. })
            ));
        };
        // Giant vertex count in a tiny buffer.
        let mut hostile = sample_graph().to_bytes_aligned()[..KCSR_HEADER].to_vec();
        hostile[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_malformed(&hostile);
        // Wrong endianness marker and non-zero reserved bytes.
        let good = sample_graph().to_bytes_aligned();
        let mut bad_endian = good.clone();
        bad_endian[5] = 2;
        assert_malformed(&bad_endian);
        let mut bad_reserved = good.clone();
        bad_reserved[6] = 1;
        assert_malformed(&bad_reserved);
    }

    #[test]
    fn asymmetric_payloads_fail_structural_validation() {
        // Hand-build a v3 buffer whose rows are not symmetric: vertex 0
        // lists 1, vertex 1 lists nothing. Header and checksum are valid,
        // so only the structural sweep can catch it.
        let mut out = Vec::new();
        out.extend_from_slice(&CSR_WIRE_MAGIC);
        out.push(CSR_WIRE_VERSION_ALIGNED);
        out.push(KCSR_LITTLE_ENDIAN);
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&2u64.to_le_bytes()); // n
        out.extend_from_slice(&1u64.to_le_bytes()); // 2m
        out.extend_from_slice(&[0u8; 8]); // checksum placeholder
        for offset in [0u32, 1, 1] {
            out.extend_from_slice(&offset.to_le_bytes());
        }
        out.extend_from_slice(&[0u8; 4]); // pad (n = 2 -> offsets 12 bytes)
        out.extend_from_slice(&1u32.to_le_bytes()); // 0 -> 1 only
        let sum = fnv1a64(&out[KCSR_HEADER..]);
        out[24..32].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_kcsr(&out),
            Err(GraphError::MalformedBytes { reason }) if reason.contains("symmetric")
        ));
    }

    #[test]
    fn aligned_bytes_basics() {
        assert!(AlignedBytes::default().is_empty());
        let b = AlignedBytes::copy_from(&[1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_bytes(), &[1, 2, 3, 4, 5]);
        assert_eq!(
            b.as_bytes().as_ptr() as usize % 8,
            0,
            "8-byte-aligned start"
        );
    }
}
