//! Fundamental identifier types shared by every crate in the workspace.

/// Identifier of a vertex inside a graph.
///
/// Vertices are always numbered `0..n` inside a given [`crate::UndirectedGraph`].
/// A `u32` keeps adjacency lists compact (half the size of `usize` on 64-bit
/// platforms) while still supporting graphs with up to ~4.2 billion vertices,
/// far beyond the datasets evaluated in the paper.
pub type VertexId = u32;

/// Sentinel value used to mark "no vertex" (e.g. unreachable in BFS).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// An undirected edge expressed as an (unordered) pair of endpoints.
///
/// Throughout the workspace edges are normalised so that `0 <= e.0 < e.1`.
pub type Edge = (VertexId, VertexId);

/// Normalises an edge so that the smaller endpoint comes first.
///
/// Self-loops are returned unchanged; callers that must reject them should do
/// so explicitly (the [`crate::GraphBuilder`] silently drops them).
#[inline]
pub fn normalize_edge(u: VertexId, v: VertexId) -> Edge {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_orders_endpoints() {
        assert_eq!(normalize_edge(3, 1), (1, 3));
        assert_eq!(normalize_edge(1, 3), (1, 3));
        assert_eq!(normalize_edge(5, 5), (5, 5));
        assert_eq!(normalize_edge(0, INVALID_VERTEX), (0, INVALID_VERTEX));
    }
}
