//! Frame transports: the [`Transport`] trait, the in-process loopback
//! implementation, and the byte-driven shard worker.
//!
//! A [`Transport`] moves whole protocol frames between two peers. The
//! contract is deliberately narrow — blocking send, blocking receive (with a
//! bounded-wait variant), closed-channel signalling — so a socket, a pipe or
//! a message queue can implement it with a handful of lines; every
//! implementation must put the shared length-prefixed frame format
//! ([`crate::wire::frame`]) on the wire so peers with different transports
//! still interoperate. Real sockets live in [`crate::wire::socket`]; the
//! fault-injection decorator in [`crate::wire::faults`].
//!
//! [`LoopbackTransport::pair`] is the reference implementation: two
//! endpoints connected by in-process byte streams. It is *not* a shortcut
//! that hands `Vec<u8>`s across — sends append [`encode_frame`] bytes to a
//! shared stream and receives reassemble frames through a [`FrameDecoder`],
//! so the loopback exercises the exact same byte path a network transport
//! would, chunk boundaries and all.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use kvcc::KvccOptions;

use crate::protocol::{QueryResponse, Request, RequestBody, Response, ResponseBody, ServiceError};
use crate::wire::frame::{encode_frame, FrameDecoder};
use crate::wire::run_work_item;

/// Why a transport operation failed.
///
/// The split matters to retry logic: [`TransportError::TimedOut`] is
/// *retryable* — the connection is still aligned and a resend is safe —
/// while [`TransportError::Closed`] and [`TransportError::Malformed`] are
/// fatal for the connection (the peer is gone, or the byte stream lost
/// frame alignment), so recovery means moving the work to another peer, not
/// resending here. [`TransportError::is_retryable`] encodes that rule once
/// for every caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint is gone (clean close, reset, refused connection);
    /// no more frames will ever arrive on this transport.
    Closed,
    /// A bounded-wait operation ran out of time with the connection still
    /// healthy; the caller may retry on the same transport.
    TimedOut,
    /// The byte stream violated the frame format (e.g. an oversized length
    /// prefix, see [`crate::wire::frame::FrameError`]); frame boundaries are
    /// unrecoverable and the connection is unusable.
    Malformed(String),
}

impl TransportError {
    /// Whether the *same* transport remains usable and the failed operation
    /// may simply be retried (timeouts), as opposed to connection-fatal
    /// failures where the work must move to a different peer.
    pub const fn is_retryable(&self) -> bool {
        matches!(self, TransportError::TimedOut)
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by the peer"),
            TransportError::TimedOut => write!(f, "transport operation timed out"),
            TransportError::Malformed(reason) => write!(f, "malformed frame stream: {reason}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<TransportError> for ServiceError {
    fn from(value: TransportError) -> Self {
        ServiceError::Transport {
            reason: value.to_string(),
        }
    }
}

/// A bidirectional, frame-oriented connection between two peers.
///
/// Implementations must carry frames in the shared length-prefixed format
/// ([`crate::wire::frame`]) on their underlying byte stream. Methods take
/// `&self` so one endpoint can be shared by reference; implementations are
/// expected to serialise concurrent sends internally.
pub trait Transport: Send + Sync {
    /// Sends one frame payload (a protocol message). Blocks only for
    /// transport-internal locking (and, on socket transports, the
    /// configured write timeout), not for the peer to read.
    fn send(&self, frame: &[u8]) -> Result<(), TransportError>;

    /// Receives the next frame payload, blocking until one arrives. Returns
    /// `Ok(None)` when the peer closed cleanly and every buffered frame has
    /// been drained.
    fn recv(&self) -> Result<Option<Vec<u8>>, TransportError>;

    /// Like [`Transport::recv`], but gives up with
    /// [`TransportError::TimedOut`] once `timeout` has elapsed without a
    /// complete frame. The wait is cooperative, not destructive: bytes of a
    /// partially received frame stay buffered, so a later call resumes the
    /// reassembly exactly where this one stopped.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError>;
}

/// One direction of the loopback: a byte stream plus the receiving side's
/// frame reassembly, guarded by a mutex + condvar for blocking receives.
struct Channel {
    state: Mutex<ChannelState>,
    ready: Condvar,
}

struct ChannelState {
    decoder: FrameDecoder,
    closed: bool,
}

impl Channel {
    fn new() -> Arc<Self> {
        Arc::new(Channel {
            state: Mutex::new(ChannelState {
                decoder: FrameDecoder::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// The in-process loopback transport; see the module docs. Construct pairs
/// with [`LoopbackTransport::pair`].
pub struct LoopbackTransport {
    /// Frames we read (written by the peer).
    incoming: Arc<Channel>,
    /// Frames we write (read by the peer).
    outgoing: Arc<Channel>,
}

impl LoopbackTransport {
    /// Creates a connected pair of endpoints. Frames sent on one come out of
    /// the other, in order, after passing through the real frame byte
    /// format. Dropping either endpoint closes both directions.
    pub fn pair() -> (LoopbackTransport, LoopbackTransport) {
        let a_to_b = Channel::new();
        let b_to_a = Channel::new();
        (
            LoopbackTransport {
                incoming: Arc::clone(&b_to_a),
                outgoing: Arc::clone(&a_to_b),
            },
            LoopbackTransport {
                incoming: a_to_b,
                outgoing: b_to_a,
            },
        )
    }

    fn recv_inner(&self, deadline: Option<Instant>) -> Result<Option<Vec<u8>>, TransportError> {
        let mut state = self.incoming.state.lock().unwrap();
        loop {
            match state.decoder.next_frame() {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Ok(None) => {
                    if state.closed {
                        return Ok(None);
                    }
                    state = match deadline {
                        None => self.incoming.ready.wait(state).unwrap(),
                        Some(deadline) => {
                            let Some(remaining) = deadline
                                .checked_duration_since(Instant::now())
                                .filter(|r| !r.is_zero())
                            else {
                                return Err(TransportError::TimedOut);
                            };
                            self.incoming
                                .ready
                                .wait_timeout(state, remaining)
                                .unwrap()
                                .0
                        }
                    };
                }
                Err(error) => return Err(TransportError::Malformed(error.to_string())),
            }
        }
    }
}

impl Transport for LoopbackTransport {
    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        let mut state = self.outgoing.state.lock().unwrap();
        if state.closed {
            return Err(TransportError::Closed);
        }
        // Ship the real wire bytes: length prefix + payload, reassembled by
        // the peer's FrameDecoder exactly as a socket receiver would.
        let framed = encode_frame(frame).map_err(|e| TransportError::Malformed(e.to_string()))?;
        state.decoder.push(&framed);
        drop(state);
        self.outgoing.ready.notify_all();
        Ok(())
    }

    fn recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        self.recv_inner(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Vec<u8>>, TransportError> {
        self.recv_inner(Some(Instant::now() + timeout))
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        // Wake a peer blocked in recv (it drains buffered frames first) and
        // fail our own half so a later send errors instead of queueing into
        // the void.
        self.outgoing.close();
        self.incoming.close();
    }
}

/// Tuning for [`call_with`]: bounded waits and retry behaviour of the
/// simple request/response client pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallOptions {
    /// Per-attempt deadline for the response. `None` blocks forever (the
    /// pre-timeout behaviour; only sensible against an in-process peer that
    /// is guaranteed to answer).
    pub timeout: Option<Duration>,
    /// Total attempts (first try + retries) on retryable failures: a
    /// response deadline expiring ([`TransportError::TimedOut`]) or the peer
    /// answering a *retryable* [`ServiceError`]
    /// ([`ServiceError::is_retryable`] — e.g. a request corrupted in
    /// flight). Connection-fatal transport errors are never retried here;
    /// the caller must reconnect or fail over.
    pub max_attempts: u32,
    /// Sleep before retry `i` is `backoff_base << (i - 1)`, capped at
    /// [`CallOptions::backoff_cap`].
    pub backoff_base: Duration,
    /// Upper bound of the exponential backoff.
    pub backoff_cap: Duration,
}

impl Default for CallOptions {
    /// 30 s per-attempt timeout, 3 attempts, 10 ms base backoff: a silent
    /// peer surfaces as [`TransportError::TimedOut`] instead of hanging the
    /// caller forever.
    fn default() -> Self {
        CallOptions {
            timeout: Some(Duration::from_secs(30)),
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

impl CallOptions {
    /// The backoff to sleep before retry number `retry` (1-based).
    pub(crate) fn backoff(&self, retry: u32) -> Duration {
        let shift = retry.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << shift)
            .min(self.backoff_cap)
    }
}

/// Sends `request` and blocks for the next response frame — the minimal
/// client call pattern, with the default [`CallOptions`] (bounded wait plus
/// retries on retryable failures). See [`call_with`].
pub fn call(transport: &dyn Transport, request: &Request) -> Result<Response, TransportError> {
    call_with(transport, request, &CallOptions::default())
}

/// Sends `request` and waits (boundedly) for its response, retrying
/// retryable failures per `options`.
///
/// Responses are matched by the echoed [`Request::request_id`]; a stale
/// response with a different id (e.g. the answer to a previous attempt that
/// timed out) is drained and ignored rather than misattributed, which is
/// safe because requests are idempotent. A response that does not decode is
/// treated like a retryable corruption. The retryable-vs-terminal split for
/// peer-reported errors is [`ServiceError::is_retryable`] — the same
/// classification the shard coordinator uses — so e.g. a
/// [`ServiceError::MalformedRequest`] (our bytes were mangled in flight)
/// re-sends, while a [`ServiceError::DeadlineExceeded`] comes straight
/// back to the caller.
pub fn call_with(
    transport: &dyn Transport,
    request: &Request,
    options: &CallOptions,
) -> Result<Response, TransportError> {
    let attempts = options.max_attempts.max(1);
    let mut last_error = TransportError::TimedOut;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(options.backoff(attempt));
        }
        transport.send(&request.to_bytes())?;
        let deadline = options.timeout.map(|t| Instant::now() + t);
        loop {
            let frame = match deadline {
                None => transport.recv(),
                Some(deadline) => {
                    let Some(remaining) = deadline
                        .checked_duration_since(Instant::now())
                        .filter(|r| !r.is_zero())
                    else {
                        last_error = TransportError::TimedOut;
                        break;
                    };
                    transport.recv_timeout(remaining)
                }
            };
            match frame {
                Ok(Some(frame)) => match Response::from_bytes(&frame) {
                    Ok(response) if response.request_id == request.request_id => {
                        match &response.body {
                            ResponseBody::Query(QueryResponse::Error(e))
                                if e.is_retryable() && attempt + 1 < attempts =>
                            {
                                last_error = TransportError::TimedOut;
                                break; // next attempt re-sends the request
                            }
                            _ => return Ok(response),
                        }
                    }
                    // Stale answer to an earlier attempt, or a frame whose
                    // id was corrupted en route: keep waiting for ours.
                    Ok(_) | Err(_) => continue,
                },
                Ok(None) => return Err(TransportError::Closed),
                Err(TransportError::TimedOut) => {
                    last_error = TransportError::TimedOut;
                    break;
                }
                Err(fatal) => return Err(fatal),
            }
        }
    }
    Err(last_error)
}

/// Performs the protocol-v6 auth handshake on a fresh connection: sends
/// [`RequestBody::Handshake`] carrying `token` and waits for the verdict.
///
/// Token-less endpoints (the engine's [`crate::ServiceEngine::serve`] loop,
/// an unarmed shard worker) answer
/// [`QueryResponse::HandshakeOk`] as a
/// no-op, so clients can handshake unconditionally. A `--token`-armed
/// `kvcc-shardd` answers [`ServiceError::Unauthorized`] and closes the
/// connection on a mismatch — a clean, decodable rejection instead of a
/// protocol desync.
pub fn authenticate(transport: &dyn Transport, token: &str) -> Result<(), ServiceError> {
    let request = Request {
        request_id: 0,
        deadline_hint_ms: None,
        body: RequestBody::Handshake {
            token: token.to_string(),
        },
    };
    let options = CallOptions {
        // A rejected handshake closes the connection server-side; there is
        // nothing a resend on this transport could fix.
        max_attempts: 1,
        ..CallOptions::default()
    };
    let response = call_with(transport, &request, &options)?;
    match response.body {
        ResponseBody::Query(QueryResponse::HandshakeOk) => Ok(()),
        ResponseBody::Query(QueryResponse::Error(e)) => Err(e),
        other => Err(ServiceError::Transport {
            reason: format!("unexpected handshake response: {other:?}"),
        }),
    }
}

/// Runs a shard worker: a loop that serves [`RequestBody::WorkItem`]
/// enumeration requests **purely over bytes** until the peer closes the
/// transport. Returns the number of work items served.
///
/// The worker holds no engine and no shared graph memory — everything it
/// enumerates arrived inside a frame, which is what makes the shard side of
/// `KVCC-ENUM` deployable in a separate process or machine. A
/// [`Request::deadline_hint_ms`] on a work-item frame becomes a real
/// [`kvcc::Budget`] threaded into the enumeration, so a shard interrupts mid-item
/// and answers [`ServiceError::DeadlineExceeded`] exactly like the engine
/// does. Engine-level queries ([`RequestBody::Query`] /
/// [`RequestBody::Batch`]) and graph loads ([`RequestBody::LoadGraph`] — a
/// shard has no slots, and honouring host-side paths from the wire would be
/// a hole besides) are answered with [`ServiceError::Unsupported`];
/// undecodable frames — including frames whose envelope checksum shows they
/// were corrupted in flight — with [`ServiceError::MalformedRequest`]
/// (request id 0, since none could be read), never silence: a client always
/// gets one response frame per request frame.
pub fn run_shard_worker(
    transport: &dyn Transport,
    options: &KvccOptions,
) -> Result<usize, TransportError> {
    let mut served = 0usize;
    while let Some(frame) = transport.recv()? {
        let response = match Request::from_bytes(&frame) {
            Ok(request) => {
                let body = match &request.body {
                    RequestBody::WorkItem { k, item } => {
                        served += 1;
                        let options = options.clone().with_budget(request.budget());
                        match run_work_item(item, *k, &options) {
                            Ok(components) => QueryResponse::Components(components),
                            Err(e) => QueryResponse::Error(e.into()),
                        }
                    }
                    // A token-less worker accepts any handshake as a no-op
                    // (clients handshake unconditionally); token *checking*
                    // happens in the accept path of a `--token`-armed
                    // `kvcc-shardd` before this loop ever starts.
                    RequestBody::Handshake { .. } => QueryResponse::HandshakeOk,
                    RequestBody::Query(_)
                    | RequestBody::Batch(_)
                    | RequestBody::LoadGraph { .. }
                    | RequestBody::ApplyUpdates { .. } => {
                        QueryResponse::Error(ServiceError::Unsupported {
                            what: "engine queries (this endpoint only runs work items)".into(),
                        })
                    }
                };
                Response {
                    request_id: request.request_id,
                    body: ResponseBody::Query(body),
                }
            }
            Err(e) => Response {
                request_id: 0,
                body: ResponseBody::Query(QueryResponse::Error(ServiceError::MalformedRequest {
                    reason: e.to_string(),
                })),
            },
        };
        transport.send(&response.to_bytes())?;
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{GraphId, QueryRequest};
    use crate::wire::CsrWorkItem;
    use kvcc_graph::CsrGraph;

    #[test]
    fn loopback_carries_frames_both_ways() {
        let (a, b) = LoopbackTransport::pair();
        a.send(b"ping").unwrap();
        a.send(b"pong").unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"ping");
        b.send(b"reply").unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"pong");
        assert_eq!(a.recv().unwrap().unwrap(), b"reply");
        drop(b);
        assert_eq!(a.recv().unwrap(), None, "peer gone, stream drained");
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
    }

    #[test]
    fn recv_timeout_expires_on_a_silent_peer_without_losing_bytes() {
        let (a, b) = LoopbackTransport::pair();
        let before = Instant::now();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(20)),
            Err(TransportError::TimedOut)
        );
        assert!(before.elapsed() >= Duration::from_millis(20));
        assert!(TransportError::TimedOut.is_retryable());
        assert!(!TransportError::Closed.is_retryable());
        // The timeout is non-destructive: a frame sent afterwards arrives.
        b.send(b"late").unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(100)).unwrap().unwrap(),
            b"late"
        );
    }

    #[test]
    fn call_times_out_instead_of_blocking_forever() {
        let (client, _server) = LoopbackTransport::pair();
        let options = CallOptions {
            timeout: Some(Duration::from_millis(5)),
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
        };
        let request = Request::query(1, QueryRequest::GraphStats { graph: GraphId(0) });
        assert_eq!(
            call_with(&client, &request, &options),
            Err(TransportError::TimedOut)
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let options = CallOptions {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
            ..CallOptions::default()
        };
        assert_eq!(options.backoff(1), Duration::from_millis(10));
        assert_eq!(options.backoff(2), Duration::from_millis(20));
        assert_eq!(options.backoff(3), Duration::from_millis(35));
        assert_eq!(options.backoff(30), Duration::from_millis(35));
    }

    #[test]
    fn shard_worker_runs_items_and_rejects_queries() {
        let graph =
            CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let item = CsrWorkItem::new(graph, vec![10, 11, 12, 13, 14]);
        let (client, server) = LoopbackTransport::pair();
        let worker =
            std::thread::spawn(move || run_shard_worker(&server, &KvccOptions::default()).unwrap());

        let ok = call(
            &client,
            &Request {
                request_id: 5,
                deadline_hint_ms: None,
                body: RequestBody::WorkItem { k: 2, item },
            },
        )
        .unwrap();
        match ok.body {
            ResponseBody::Query(QueryResponse::Components(c)) => {
                assert_eq!(c.len(), 2);
                assert_eq!(c[0].vertices(), &[10, 11, 12]);
            }
            other => panic!("expected components, got {other:?}"),
        }

        let unsupported = call(
            &client,
            &Request::query(6, QueryRequest::GraphStats { graph: GraphId(0) }),
        )
        .unwrap();
        match unsupported.body {
            ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 6),
            other => panic!("expected an unsupported error, got {other:?}"),
        }

        // An undecodable frame gets a malformed-request error, id 0.
        client.send(b"garbage").unwrap();
        let frame = client.recv().unwrap().unwrap();
        let response = Response::from_bytes(&frame).unwrap();
        assert_eq!(response.request_id, 0);
        match response.body {
            ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 7),
            other => panic!("expected a malformed-request error, got {other:?}"),
        }

        drop(client);
        assert_eq!(worker.join().unwrap(), 1, "one work item served");
    }
}
