//! Frame transports: the [`Transport`] trait, the in-process loopback
//! implementation, and the byte-driven shard worker.
//!
//! A [`Transport`] moves whole protocol frames between two peers. The
//! contract is deliberately narrow — blocking send, blocking receive,
//! closed-channel signalling — so a socket, a pipe or a message queue can
//! implement it with a handful of lines; every implementation must put the
//! shared length-prefixed frame format ([`crate::wire::frame`]) on the wire
//! so peers with different transports still interoperate.
//!
//! [`LoopbackTransport::pair`] is the reference implementation: two
//! endpoints connected by in-process byte streams. It is *not* a shortcut
//! that hands `Vec<u8>`s across — sends append [`encode_frame`] bytes to a
//! shared stream and receives reassemble frames through a [`FrameDecoder`],
//! so the loopback exercises the exact same byte path a network transport
//! would, chunk boundaries and all.

use std::sync::{Arc, Condvar, Mutex};

use kvcc::KvccOptions;

use crate::protocol::{QueryResponse, Request, RequestBody, Response, ResponseBody, ServiceError};
use crate::wire::frame::{encode_frame, FrameDecoder};
use crate::wire::run_work_item;

/// Why a transport operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer endpoint is gone; no more frames will ever arrive.
    Closed,
    /// The byte stream violated the frame format (e.g. an oversized length
    /// prefix); the connection is unusable.
    Malformed(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed by the peer"),
            TransportError::Malformed(reason) => write!(f, "malformed frame stream: {reason}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<TransportError> for ServiceError {
    fn from(value: TransportError) -> Self {
        ServiceError::Transport {
            reason: value.to_string(),
        }
    }
}

/// A bidirectional, frame-oriented connection between two peers.
///
/// Implementations must carry frames in the shared length-prefixed format
/// ([`crate::wire::frame`]) on their underlying byte stream. Methods take
/// `&self` so one endpoint can be shared by reference; implementations are
/// expected to serialise concurrent sends internally.
pub trait Transport: Send + Sync {
    /// Sends one frame payload (a protocol message). Blocks only for
    /// transport-internal locking, not for the peer to read.
    fn send(&self, frame: &[u8]) -> Result<(), TransportError>;

    /// Receives the next frame payload, blocking until one arrives. Returns
    /// `Ok(None)` when the peer closed cleanly and every buffered frame has
    /// been drained.
    fn recv(&self) -> Result<Option<Vec<u8>>, TransportError>;
}

/// One direction of the loopback: a byte stream plus the receiving side's
/// frame reassembly, guarded by a mutex + condvar for blocking receives.
struct Channel {
    state: Mutex<ChannelState>,
    ready: Condvar,
}

struct ChannelState {
    decoder: FrameDecoder,
    closed: bool,
}

impl Channel {
    fn new() -> Arc<Self> {
        Arc::new(Channel {
            state: Mutex::new(ChannelState {
                decoder: FrameDecoder::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// The in-process loopback transport; see the module docs. Construct pairs
/// with [`LoopbackTransport::pair`].
pub struct LoopbackTransport {
    /// Frames we read (written by the peer).
    incoming: Arc<Channel>,
    /// Frames we write (read by the peer).
    outgoing: Arc<Channel>,
}

impl LoopbackTransport {
    /// Creates a connected pair of endpoints. Frames sent on one come out of
    /// the other, in order, after passing through the real frame byte
    /// format. Dropping either endpoint closes both directions.
    pub fn pair() -> (LoopbackTransport, LoopbackTransport) {
        let a_to_b = Channel::new();
        let b_to_a = Channel::new();
        (
            LoopbackTransport {
                incoming: Arc::clone(&b_to_a),
                outgoing: Arc::clone(&a_to_b),
            },
            LoopbackTransport {
                incoming: a_to_b,
                outgoing: b_to_a,
            },
        )
    }
}

impl Transport for LoopbackTransport {
    fn send(&self, frame: &[u8]) -> Result<(), TransportError> {
        let mut state = self.outgoing.state.lock().unwrap();
        if state.closed {
            return Err(TransportError::Closed);
        }
        // Ship the real wire bytes: length prefix + payload, reassembled by
        // the peer's FrameDecoder exactly as a socket receiver would.
        let framed = encode_frame(frame).map_err(TransportError::Malformed)?;
        state.decoder.push(&framed);
        drop(state);
        self.outgoing.ready.notify_all();
        Ok(())
    }

    fn recv(&self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut state = self.incoming.state.lock().unwrap();
        loop {
            match state.decoder.next_frame() {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Ok(None) => {
                    if state.closed {
                        return Ok(None);
                    }
                    state = self.incoming.ready.wait(state).unwrap();
                }
                Err(reason) => return Err(TransportError::Malformed(reason)),
            }
        }
    }
}

impl Drop for LoopbackTransport {
    fn drop(&mut self) {
        // Wake a peer blocked in recv (it drains buffered frames first) and
        // fail our own half so a later send errors instead of queueing into
        // the void.
        self.outgoing.close();
        self.incoming.close();
    }
}

/// Sends `request` and blocks for the next response frame — the minimal
/// client call pattern. Responses are matched by the echoed
/// [`Request::request_id`]; a mismatch is reported as
/// [`TransportError::Malformed`] (loopback and socket transports are
/// ordered, so interleaving only happens when the caller pipelines, in
/// which case it should match ids itself instead of using this helper).
pub fn call(transport: &dyn Transport, request: &Request) -> Result<Response, TransportError> {
    transport.send(&request.to_bytes())?;
    let frame = transport.recv()?.ok_or(TransportError::Closed)?;
    let response = Response::from_bytes(&frame)
        .map_err(|_| TransportError::Malformed("peer sent an undecodable response"))?;
    if response.request_id != request.request_id {
        return Err(TransportError::Malformed("response id does not match"));
    }
    Ok(response)
}

/// Runs a shard worker: a loop that serves [`RequestBody::WorkItem`]
/// enumeration requests **purely over bytes** until the peer closes the
/// transport. Returns the number of work items served.
///
/// The worker holds no engine and no shared graph memory — everything it
/// enumerates arrived inside a frame, which is what makes the shard side of
/// `KVCC-ENUM` deployable in a separate process or machine. A
/// [`Request::deadline_hint_ms`] on a work-item frame becomes a real
/// [`kvcc::Budget`] threaded into the enumeration, so a shard interrupts mid-item
/// and answers [`ServiceError::DeadlineExceeded`] exactly like the engine
/// does. Engine-level queries ([`RequestBody::Query`] /
/// [`RequestBody::Batch`]) and graph loads ([`RequestBody::LoadGraph`] — a
/// shard has no slots, and honouring host-side paths from the wire would be
/// a hole besides) are answered with [`ServiceError::Unsupported`];
/// undecodable frames with [`ServiceError::MalformedRequest`] (request id 0,
/// since none could be read).
pub fn run_shard_worker(
    transport: &dyn Transport,
    options: &KvccOptions,
) -> Result<usize, TransportError> {
    let mut served = 0usize;
    while let Some(frame) = transport.recv()? {
        let response = match Request::from_bytes(&frame) {
            Ok(request) => {
                let body = match &request.body {
                    RequestBody::WorkItem { k, item } => {
                        served += 1;
                        let options = options.clone().with_budget(request.budget());
                        match run_work_item(item, *k, &options) {
                            Ok(components) => QueryResponse::Components(components),
                            Err(e) => QueryResponse::Error(e.into()),
                        }
                    }
                    RequestBody::Query(_)
                    | RequestBody::Batch(_)
                    | RequestBody::LoadGraph { .. } => {
                        QueryResponse::Error(ServiceError::Unsupported {
                            what: "engine queries (this endpoint only runs work items)".into(),
                        })
                    }
                };
                Response {
                    request_id: request.request_id,
                    body: ResponseBody::Query(body),
                }
            }
            Err(e) => Response {
                request_id: 0,
                body: ResponseBody::Query(QueryResponse::Error(ServiceError::MalformedRequest {
                    reason: e.to_string(),
                })),
            },
        };
        transport.send(&response.to_bytes())?;
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{GraphId, QueryRequest};
    use crate::wire::CsrWorkItem;
    use kvcc_graph::CsrGraph;

    #[test]
    fn loopback_carries_frames_both_ways() {
        let (a, b) = LoopbackTransport::pair();
        a.send(b"ping").unwrap();
        a.send(b"pong").unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"ping");
        b.send(b"reply").unwrap();
        assert_eq!(b.recv().unwrap().unwrap(), b"pong");
        assert_eq!(a.recv().unwrap().unwrap(), b"reply");
        drop(b);
        assert_eq!(a.recv().unwrap(), None, "peer gone, stream drained");
        assert_eq!(a.send(b"x"), Err(TransportError::Closed));
    }

    #[test]
    fn shard_worker_runs_items_and_rejects_queries() {
        let graph =
            CsrGraph::from_edges(5, vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        let item = CsrWorkItem::new(graph, vec![10, 11, 12, 13, 14]);
        let (client, server) = LoopbackTransport::pair();
        let worker =
            std::thread::spawn(move || run_shard_worker(&server, &KvccOptions::default()).unwrap());

        let ok = call(
            &client,
            &Request {
                request_id: 5,
                deadline_hint_ms: None,
                body: RequestBody::WorkItem { k: 2, item },
            },
        )
        .unwrap();
        match ok.body {
            ResponseBody::Query(QueryResponse::Components(c)) => {
                assert_eq!(c.len(), 2);
                assert_eq!(c[0].vertices(), &[10, 11, 12]);
            }
            other => panic!("expected components, got {other:?}"),
        }

        let unsupported = call(
            &client,
            &Request::query(6, QueryRequest::GraphStats { graph: GraphId(0) }),
        )
        .unwrap();
        match unsupported.body {
            ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 6),
            other => panic!("expected an unsupported error, got {other:?}"),
        }

        // An undecodable frame gets a malformed-request error, id 0.
        client.send(b"garbage").unwrap();
        let frame = client.recv().unwrap().unwrap();
        let response = Response::from_bytes(&frame).unwrap();
        assert_eq!(response.request_id, 0);
        match response.body {
            ResponseBody::Query(QueryResponse::Error(e)) => assert_eq!(e.code(), 7),
            other => panic!("expected a malformed-request error, got {other:?}"),
        }

        drop(client);
        assert_eq!(worker.join().unwrap(), 1, "one work item served");
    }
}
